"""Hermite/Smith normal forms: exact invariants on random matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import det, hermite_normal_form, is_unimodular, smith_normal_form
from repro.space.smith import int_rank


def int_matrices(max_dim=4, lo=-6, hi=6):
    return st.integers(1, max_dim).flatmap(
        lambda m: st.integers(1, max_dim).flatmap(
            lambda n: st.lists(
                st.lists(st.integers(lo, hi), min_size=n, max_size=n),
                min_size=m, max_size=m)))


class TestDet:
    def test_known(self):
        assert det([[1, 2], [3, 4]]) == -2
        assert det([[2, 0, 0], [0, 3, 0], [0, 0, 5]]) == 30

    def test_singular(self):
        assert det([[1, 2], [2, 4]]) == 0

    def test_empty(self):
        assert det(np.zeros((0, 0), dtype=int)) == 1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            det([[1, 2, 3]])

    @settings(max_examples=40, deadline=None)
    @given(int_matrices(max_dim=4))
    def test_matches_numpy(self, rows):
        M = np.array(rows, dtype=object)
        if M.shape[0] != M.shape[1]:
            return
        ours = det(M)
        numpy_det = round(float(np.linalg.det(np.array(rows, dtype=float))))
        assert ours == numpy_det


class TestRank:
    def test_known(self):
        assert int_rank([[1, 2], [2, 4]]) == 1
        assert int_rank([[1, 0, 0], [0, 1, 0]]) == 2
        assert int_rank([[0, 0], [0, 0]]) == 0

    @settings(max_examples=40, deadline=None)
    @given(int_matrices())
    def test_matches_numpy(self, rows):
        ours = int_rank(rows)
        theirs = np.linalg.matrix_rank(np.array(rows, dtype=float))
        assert ours == theirs


class TestHermite:
    @settings(max_examples=50, deadline=None)
    @given(int_matrices())
    def test_av_equals_h_and_v_unimodular(self, rows):
        A = np.array(rows, dtype=object)
        H, V = hermite_normal_form(A)
        assert (A @ V == H).all()
        assert is_unimodular(V)

    def test_identity_fixed_point(self):
        H, V = hermite_normal_form(np.eye(3, dtype=int))
        assert (H == np.eye(3, dtype=object)).all()


class TestSmith:
    @settings(max_examples=50, deadline=None)
    @given(int_matrices())
    def test_uav_diagonal_divisibility(self, rows):
        A = np.array(rows, dtype=object)
        U, D, V = smith_normal_form(A)
        assert (U @ A @ V == D).all()
        assert is_unimodular(U) and is_unimodular(V)
        m, n = D.shape
        diag = [int(D[k, k]) for k in range(min(m, n))]
        # Off-diagonal zero.
        for i in range(m):
            for j in range(n):
                if i != j:
                    assert D[i, j] == 0
        # Non-negative, divisibility chain, zeros trail.
        for k, d in enumerate(diag):
            assert d >= 0
            if k + 1 < len(diag) and d != 0 and diag[k + 1] != 0:
                assert diag[k + 1] % d == 0
            if d == 0 and k + 1 < len(diag):
                assert diag[k + 1] == 0

    def test_known_example(self):
        A = [[2, 4, 4], [-6, 6, 12], [10, 4, 16]]
        U, D, V = smith_normal_form(A)
        assert [int(D[i, i]) for i in range(3)] == [2, 2, 156]


class TestUnimodular:
    def test_cases(self):
        assert is_unimodular([[1, 1], [0, 1]])
        assert not is_unimodular([[2, 0], [0, 1]])
        assert not is_unimodular([[1, 0, 0], [0, 1, 0]])
