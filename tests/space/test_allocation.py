"""Space maps: conflicts, flows, enumeration, preference order."""

import numpy as np
import pytest

from repro.arrays import LINEAR_BIDIR
from repro.deps import DependenceMatrix
from repro.ir.indexset import Polyhedron
from repro.schedule import LinearSchedule
from repro.space import (
    SpaceMap,
    cells_used,
    conflict_free,
    enumerate_space_maps,
    flows_realisable,
    transformation_nonsingular,
)
from repro.space.allocation import entry_preference, transformation_full_rank

CONV_DEPS = DependenceMatrix.from_dict(
    {"y": [(0, 1)], "x": [(1, 1)], "w": [(1, 0)]})
CONV_T = LinearSchedule(("i", "k"), (1, 1))
CONV_DOM = Polyhedron.box({"i": (1, 8), "k": (1, 3)})
CONV_PTS = np.array(list(CONV_DOM.points({})), dtype=np.int64)


class TestSpaceMap:
    def test_cell(self):
        s = SpaceMap(("i", "k"), ((0, 1),))
        assert s.cell((5, 2)) == (2,)

    def test_offset(self):
        s = SpaceMap(("i", "j"), ((1, 0), (1, 0)), (1, 0))
        assert s.cell((3, 9)) == (4, 3)

    def test_of_vector_ignores_offset(self):
        s = SpaceMap(("i",), ((2,),), (5,))
        assert s.of_vector((1,)) == (2,)

    def test_cells_vectorised(self):
        s = SpaceMap(("i", "k"), ((0, 1), (1, 0)))
        pts = np.array([[1, 2], [3, 4]])
        np.testing.assert_array_equal(s.cells(pts), [[2, 1], [4, 3]])

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            SpaceMap(("i", "k"), ((1,),))
        with pytest.raises(ValueError):
            SpaceMap(("i",), ((1,),), (0, 0))


class TestConflictFreedom:
    def test_w2_is_conflict_free(self):
        s = SpaceMap(("i", "k"), ((0, 1),))
        assert conflict_free(CONV_T, s, CONV_PTS)

    def test_projection_to_point_conflicts(self):
        s = SpaceMap(("i", "k"), ((0, 0),))
        assert not conflict_free(CONV_T, s, CONV_PTS)

    def test_nonsingular_pi(self):
        s = SpaceMap(("i", "k"), ((0, 1),))
        assert transformation_nonsingular(CONV_T, s)
        assert transformation_full_rank(CONV_T, s)
        degenerate = SpaceMap(("i", "k"), ((1, 1),))
        # T=(1,1), S=(1,1): Π singular.
        assert not transformation_nonsingular(CONV_T, degenerate)


class TestFlows:
    def test_w2_flows_realisable(self):
        s = SpaceMap(("i", "k"), ((0, 1),))
        assert flows_realisable(CONV_DEPS, CONV_T, s,
                                LINEAR_BIDIR.decomposer())

    def test_too_fast_flow_rejected(self):
        # y displacement 2 per 1 cycle: not coverable.
        s = SpaceMap(("i", "k"), ((0, 2),))
        assert not flows_realisable(CONV_DEPS, CONV_T, s,
                                    LINEAR_BIDIR.decomposer())


class TestEnumeration:
    def test_w2_enumerated_first(self):
        cands = list(enumerate_space_maps(
            ("i", "k"), 1, CONV_DEPS, CONV_T, LINEAR_BIDIR.decomposer(),
            CONV_PTS, bound=1))
        assert cands, "no feasible space maps found"
        assert cands[0].matrix == ((0, 1),)

    def test_all_enumerated_are_feasible(self):
        for s in enumerate_space_maps(
                ("i", "k"), 1, CONV_DEPS, CONV_T,
                LINEAR_BIDIR.decomposer(), CONV_PTS, bound=1):
            assert conflict_free(CONV_T, s, CONV_PTS)
            assert flows_realisable(CONV_DEPS, CONV_T, s,
                                    LINEAR_BIDIR.decomposer())
            assert transformation_full_rank(CONV_T, s)

    def test_cells_used(self):
        s = SpaceMap(("i", "k"), ((0, 1),))
        assert cells_used(s, CONV_PTS) == {(1,), (2,), (3,)}


class TestEntryPreference:
    def test_order(self):
        ranked = sorted([-2, 2, -1, 1, 0], key=entry_preference)
        assert ranked == [0, 1, -1, 2, -2]
