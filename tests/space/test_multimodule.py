"""Joint space allocation — reproduces S', S'', S of Sections V.B and VI."""

import numpy as np
import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED
from repro.core import link_constraints
from repro.deps import system_dependence_matrices
from repro.problems import dp_system
from repro.schedule import ModuleSchedulingProblem, solve_multimodule
from repro.space import (
    ModuleSpaceProblem,
    NoSpaceMapExists,
    adjacency_ok,
    solve_multimodule_space,
)


@pytest.fixture(scope="module")
def dp_setup():
    n = 8
    system = dp_system()
    params = {"n": n}
    deps = system_dependence_matrices(system)
    pts = {name: np.array(list(m.domain.points(params)), dtype=np.int64)
           for name, m in system.modules.items()}
    sched_problems = [
        ModuleSchedulingProblem(name, m.dims, deps[name], pts[name])
        for name, m in system.modules.items()]
    constraints = link_constraints(system, params)
    schedules = solve_multimodule(sched_problems, constraints, bound=3).schedules
    return system, deps, pts, constraints, schedules


def space_problems(system, deps, pts, schedules, comb_offsets):
    return [ModuleSpaceProblem(
        name, m.dims, deps[name], pts[name], schedules[name],
        bound=1, offsets=comb_offsets if name == "comb" else (0,))
        for name, m in system.modules.items()]


class TestFig1:
    def test_paper_maps(self, dp_setup):
        system, deps, pts, constraints, schedules = dp_setup
        sol = solve_multimodule_space(
            space_problems(system, deps, pts, schedules, (0,)),
            constraints, FIG1_UNIDIRECTIONAL.decomposer(), 2)
        assert sol.maps["m1"].matrix == ((0, 1, 0), (1, 0, 0))
        assert sol.maps["m2"].matrix == ((0, 1, 0), (1, 0, 0))
        assert sol.maps["comb"].matrix == ((0, 1), (1, 0))

    def test_cell_count_n_squared_over_two(self, dp_setup):
        system, deps, pts, constraints, schedules = dp_setup
        sol = solve_multimodule_space(
            space_problems(system, deps, pts, schedules, (0,)),
            constraints, FIG1_UNIDIRECTIONAL.decomposer(), 2)
        n = 8
        assert sol.total_cells == n * (n - 1) // 2 - (n - 1)  # pairs j-i>=2


class TestFig2:
    def test_paper_maps(self, dp_setup):
        system, deps, pts, constraints, schedules = dp_setup
        sol = solve_multimodule_space(
            space_problems(system, deps, pts, schedules, (-1, 0, 1)),
            constraints, FIG2_EXTENDED.decomposer(), 2)
        assert sol.maps["m1"].matrix == ((0, 0, 1), (1, 0, 0))
        assert sol.maps["m2"].matrix == ((1, 1, -1), (1, 0, 0))
        assert sol.maps["comb"].matrix == ((1, 0), (1, 0))
        assert sol.maps["comb"].offset == (1, 0)

    def test_fewer_cells_than_fig1(self, dp_setup):
        system, deps, pts, constraints, schedules = dp_setup
        fig1 = solve_multimodule_space(
            space_problems(system, deps, pts, schedules, (0,)),
            constraints, FIG1_UNIDIRECTIONAL.decomposer(), 2)
        fig2 = solve_multimodule_space(
            space_problems(system, deps, pts, schedules, (-1, 0, 1)),
            constraints, FIG2_EXTENDED.decomposer(), 2)
        assert fig2.total_cells < fig1.total_cells


class TestAdjacency:
    def test_adjacency_checks_every_instance(self, dp_setup):
        system, deps, pts, constraints, schedules = dp_setup
        sol = solve_multimodule_space(
            space_problems(system, deps, pts, schedules, (0,)),
            constraints, FIG1_UNIDIRECTIONAL.decomposer(), 2)
        for gc in constraints:
            assert adjacency_ok(
                gc, schedules[gc.dst_module], schedules[gc.src_module],
                sol.maps[gc.dst_module], sol.maps[gc.src_module],
                FIG1_UNIDIRECTIONAL.decomposer())

    def test_infeasible_interconnect(self, dp_setup):
        """Without a leftward or stay link, the DP flows cannot be placed."""
        from repro.arrays import Interconnect

        system, deps, pts, constraints, schedules = dp_setup
        crippled = Interconnect("no-stay-up-only", ((0, 1),))
        with pytest.raises(NoSpaceMapExists):
            solve_multimodule_space(
                space_problems(system, deps, pts, schedules, (0,)),
                constraints, crippled.decomposer(), 2)
