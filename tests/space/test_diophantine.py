"""Integer linear systems and link decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.space import LinkDecomposer, solve_integer_system


class TestIntegerSystems:
    def test_solvable(self):
        A = [[2, 1], [1, 1]]
        b = [5, 3]
        x0, N = solve_integer_system(A, b)
        assert (np.array(A, dtype=object) @ x0 == np.array(b)).all()
        assert N.shape[1] == 0

    def test_underdetermined_nullspace(self):
        A = [[1, 1, 1]]
        b = [3]
        x0, N = solve_integer_system(A, b)
        assert sum(x0) == 3
        assert N.shape == (3, 2)
        # Null vectors really are in the null space.
        assert all((np.array(A, dtype=object) @ N[:, k] == 0).all()
                   for k in range(N.shape[1]))

    def test_no_integer_solution(self):
        assert solve_integer_system([[2]], [3]) is None

    def test_inconsistent(self):
        assert solve_integer_system([[1], [1]], [1, 2]) is None

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(-4, 4), min_size=2, max_size=2),
                    min_size=2, max_size=3),
           st.lists(st.integers(-4, 4), min_size=2, max_size=2))
    def test_solution_always_verifies(self, rows, x_true):
        A = np.array(rows, dtype=object)
        b = A @ np.array(x_true, dtype=object)
        result = solve_integer_system(A, b)
        assert result is not None
        x0, _ = result
        assert (A @ x0 == b).all()


class TestLinkDecomposer:
    def test_linear_distances(self):
        d = LinkDecomposer(LINEAR_BIDIR.matrix())
        assert d.distance((0,)) == 0
        assert d.distance((3,)) == 3
        assert d.distance((-2,)) == 2

    def test_unidirectional_unreachable(self):
        d = LinkDecomposer(FIG1_UNIDIRECTIONAL.matrix())
        assert d.distance((1, 0)) == 1
        assert d.distance((-1, 0), limit=6) is None

    def test_fig2_diagonal(self):
        d = LinkDecomposer(FIG2_EXTENDED.matrix())
        assert d.distance((-1, -1)) == 1
        assert d.distance((-2, -1)) == 2   # diagonal + left
        assert d.distance((1, -1)) == 2    # right + down

    def test_reachable_within(self):
        d = LinkDecomposer(FIG2_EXTENDED.matrix())
        assert d.reachable_within((0, 0), 0)
        assert d.reachable_within((-1, -1), 2)
        assert not d.reachable_within((2, 0), 1)
        assert not d.reachable_within((1, 0), -1)

    def test_decompose_path_valid(self):
        d = LinkDecomposer(FIG2_EXTENDED.matrix())
        hops = d.decompose((-2, -1), 3)
        assert hops is not None and len(hops) <= 3
        total = tuple(sum(h[c] for h in hops) for c in range(2))
        assert total == (-2, -1)
        moves = set(d.moves)
        assert all(h in moves for h in hops)

    def test_decompose_zero(self):
        d = LinkDecomposer(LINEAR_BIDIR.matrix())
        assert d.decompose((0,), 5) == []

    def test_decompose_infeasible(self):
        d = LinkDecomposer(FIG1_UNIDIRECTIONAL.matrix())
        assert d.decompose((-1, 0), 4) is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-4, 4), st.integers(-4, 0))
    def test_decompose_matches_distance(self, dx, dy):
        d = LinkDecomposer(FIG2_EXTENDED.matrix())
        dist = d.distance((dx, dy), limit=12)
        hops = d.decompose((dx, dy), 12)
        if dist is None:
            assert hops is None
        else:
            assert hops is not None and len(hops) == dist
