"""The reference system evaluator: values, traces, failure modes."""

import pytest

from repro.ir import (
    ADD,
    ComputeRule,
    CyclicDependence,
    Equation,
    IDENTITY,
    InputRule,
    Module,
    OutputSpec,
    Polyhedron,
    RecurrenceSystem,
    Ref,
    ValueKey,
    equals,
    run_system,
    trace_execution,
)
from repro.ir.affine import var
from repro.ir.predicates import at_least

I = var("i")


def fib_system():
    """x_i = x_{i-1} + x_{i-2} with two seed inputs."""
    domain = Polyhedron.box({"i": (1, 10)})
    eqn = Equation("x", (
        InputRule("seed", (I,), guard=at_least(2 - I, 0)),
        ComputeRule(ADD, (Ref.of("x", I - 1), Ref.of("x", I - 2)),
                    guard=at_least(I, 3)),
    ))
    m = Module("fib", ("i",), domain, [eqn])
    return RecurrenceSystem(
        "fib", [m], outputs=[OutputSpec("fib", "x", domain, (I,))],
        input_names=("seed",))


class TestEvaluation:
    def test_fibonacci(self):
        res = run_system(fib_system(), {}, {"seed": lambda i: 1})
        assert res[(10,)] == 55

    def test_trace_records_operands(self):
        trace = trace_execution(fib_system(), {}, {"seed": lambda i: 1})
        ev = trace.events[ValueKey("fib", "x", (5,))]
        assert set(ev.operands) == {ValueKey("fib", "x", (4,)),
                                    ValueKey("fib", "x", (3,))}

    def test_consumers_inverts_edges(self):
        trace = trace_execution(fib_system(), {}, {"seed": lambda i: 1})
        consumers = trace.consumers()
        uses_of_3 = consumers[ValueKey("fib", "x", (3,))]
        assert ValueKey("fib", "x", (4,)) in uses_of_3
        assert ValueKey("fib", "x", (5,)) in uses_of_3

    def test_missing_input_binding(self):
        with pytest.raises(KeyError):
            run_system(fib_system(), {}, {})

    def test_cycle_detected(self):
        domain = Polyhedron.box({"i": (1, 3)})
        # x depends on y at the same point, y depends on x: a zero-weight
        # cycle the evaluator must reject.
        x = Equation("x", (ComputeRule(IDENTITY, (Ref.of("y", I),)),))
        y = Equation("y", (ComputeRule(IDENTITY, (Ref.of("x", I),)),))
        m = Module("loop", ("i",), domain, [x, y])
        system = RecurrenceSystem("loop", [m], outputs=[])
        with pytest.raises(CyclicDependence):
            run_system(system, {}, {})

    def test_same_point_acyclic_reference_ok(self):
        """Intra-point (zero-dependence) reads are legal when acyclic."""
        domain = Polyhedron.box({"i": (1, 4)})
        a = Equation("a", (InputRule("inp", (I,)),))
        b = Equation("b", (ComputeRule(ADD, (Ref.of("a", I), Ref.of("a", I))),))
        m = Module("m", ("i",), domain, [a, b])
        system = RecurrenceSystem(
            "m", [m], outputs=[OutputSpec("m", "b", domain, (I,))],
            input_names=("inp",))
        res = run_system(system, {}, {"inp": lambda i: i})
        assert res[(3,)] == 6

    def test_out_of_domain_reference(self):
        domain = Polyhedron.box({"i": (1, 4)})
        bad = Equation("x", (
            ComputeRule(IDENTITY, (Ref.of("x", I - 1),)),))
        m = Module("bad", ("i",), domain, [bad])
        system = RecurrenceSystem("bad", [m], outputs=[])
        with pytest.raises(KeyError):
            run_system(system, {}, {})
