"""Operations and equation/rule mechanics."""

import pytest

from repro.ir import (
    ADD,
    ComputeRule,
    Equation,
    ExternalRef,
    IDENTITY,
    InputRule,
    LinkRule,
    MAC,
    MAX,
    MIN,
    MIN_PLUS,
    MUL,
    Op,
    Ref,
    equals,
    make_op,
)
from repro.ir.affine import var
from repro.ir.predicates import at_least

I = var("i")


class TestOps:
    def test_standard_semantics(self):
        assert IDENTITY(7) == 7
        assert ADD(2, 3) == 5
        assert MUL(2, 3) == 6
        assert MIN(2, 3) == 2
        assert MAX(2, 3) == 3
        assert MAC(10, 2, 3) == 16
        assert MIN_PLUS(2, 3) == 5

    def test_arity_enforced(self):
        with pytest.raises(TypeError):
            ADD(1)

    def test_make_op(self):
        halve = make_op("halve", 1, lambda x: x // 2)
        assert halve(9) == 4
        assert halve.name == "halve"

    def test_equality_ignores_fn(self):
        a = make_op("x", 1, lambda v: v)
        b = make_op("x", 1, lambda v: v + 1)
        assert a == b  # identity is (name, arity); semantics live in tests


class TestRules:
    def test_compute_rule_arity_check(self):
        with pytest.raises(ValueError):
            ComputeRule(ADD, (Ref.of("x", I),))

    def test_link_rule_defaults(self):
        rule = LinkRule(ExternalRef.of("m", "v", I))
        assert rule.min_gap == 1
        assert rule.label == ""

    def test_link_rule_gap_zero(self):
        rule = LinkRule(ExternalRef.of("m", "v", I), min_gap=0)
        assert rule.min_gap == 0


class TestEquationSelect:
    def eqn(self):
        return Equation("x", (
            InputRule("a", (I,), guard=equals(I, 1)),
            InputRule("b", (I,), guard=at_least(I, 1)),   # overlaps at i=1
            InputRule("c", (I,)),
        ))

    def test_first_match_wins(self):
        rule = self.eqn().select({"i": 1})
        assert rule.input_name == "a"

    def test_second_rule(self):
        rule = self.eqn().select({"i": 5})
        assert rule.input_name == "b"

    def test_fallback(self):
        rule = self.eqn().select({"i": 0})
        assert rule.input_name == "c"

    def test_no_match_raises(self):
        eqn = Equation("x", (InputRule("a", (I,), guard=equals(I, 1)),))
        with pytest.raises(ValueError):
            eqn.select({"i": 2})

    def test_where_gates_selection(self):
        eqn = Equation("x", (InputRule("a", (I,)),), where=at_least(I, 3))
        assert eqn.defined_at({"i": 3})
        assert not eqn.defined_at({"i": 2})
        with pytest.raises(ValueError):
            eqn.select({"i": 2})


class TestRefs:
    def test_dependence_vector(self):
        ref = Ref.of("x", I - 1, var("j") + 2)
        assert ref.dependence_vector(("i", "j")) == (1, -2)

    def test_non_translation_returns_none(self):
        assert Ref.of("x", 2 * I).dependence_vector(("i",)) is None

    def test_quasi_affine_returns_none(self):
        ref = Ref.of("x", I.floordiv(2))
        assert ref.dependence_vector(("i",)) is None

    def test_evaluate(self):
        ref = Ref.of("x", I - 1, (I + var("j")).floordiv(2))
        assert ref.evaluate({"i": 3, "j": 4}) == (2, 3)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Ref.of("x", I).dependence_vector(("i", "j"))
