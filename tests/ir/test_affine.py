"""Unit and property tests for affine / quasi-affine expressions."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import AffineExpr, QuasiAffineExpr, const, var, vars_

NAMES = ("i", "j", "k")


def exprs():
    coeff = st.integers(-6, 6).map(Fraction)
    return st.builds(
        AffineExpr,
        st.dictionaries(st.sampled_from(NAMES), coeff, max_size=3),
        st.integers(-10, 10))


def points():
    return st.fixed_dictionaries({n: st.integers(-20, 20) for n in NAMES})


class TestConstruction:
    def test_var(self):
        e = var("i")
        assert e.coeff("i") == 1
        assert e.const_term == 0

    def test_const(self):
        assert const(5).evaluate({}) == 5

    def test_vars_shorthand(self):
        i, j = vars_("i", "j")
        assert (i + j).evaluate({"i": 2, "j": 3}) == 5

    def test_zero_coefficients_dropped(self):
        e = AffineExpr({"i": 0, "j": 1})
        assert e.variables() == frozenset({"j"})

    def test_coerce_string(self):
        assert AffineExpr.coerce("i") == var("i")

    def test_coerce_rejects_quasi(self):
        with pytest.raises(TypeError):
            AffineExpr.coerce(var("i").floordiv(2))

    def test_from_vector(self):
        e = AffineExpr.from_vector(("i", "j"), (2, -1), 3)
        assert e.evaluate({"i": 1, "j": 1}) == 4

    def test_from_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            AffineExpr.from_vector(("i",), (1, 2))


class TestArithmetic:
    def test_add_sub(self):
        i, j = vars_("i", "j")
        e = 2 * i + j - 3
        assert e.evaluate({"i": 4, "j": 1}) == 6

    def test_rsub(self):
        i = var("i")
        assert (5 - i).evaluate({"i": 2}) == 3

    def test_neg(self):
        i = var("i")
        assert (-i).coeff("i") == -1

    def test_scalar_division(self):
        i = var("i")
        assert (i / 2).evaluate({"i": 3}) == Fraction(3, 2)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            var("i") / 0

    @given(exprs(), exprs(), points())
    def test_add_commutative(self, a, b, p):
        assert (a + b).evaluate(p) == (b + a).evaluate(p)

    @given(exprs(), exprs(), exprs(), points())
    def test_add_associative(self, a, b, c, p):
        assert ((a + b) + c).evaluate(p) == (a + (b + c)).evaluate(p)

    @given(exprs(), st.integers(-5, 5), points())
    def test_scalar_distributes(self, a, s, p):
        assert (a * s).evaluate(p) == s * a.evaluate(p)

    @given(exprs(), points())
    def test_sub_self_is_zero(self, a, p):
        assert (a - a).evaluate(p) == 0

    @given(exprs(), exprs(), points())
    def test_evaluation_is_linear(self, a, b, p):
        assert (a + b).evaluate(p) == a.evaluate(p) + b.evaluate(p)


class TestEvaluation:
    def test_unbound_variable(self):
        with pytest.raises(KeyError):
            var("i").evaluate({"j": 1})

    def test_evaluate_int_rejects_fraction(self):
        e = var("i") / 2
        with pytest.raises(ValueError):
            e.evaluate_int({"i": 3})

    def test_evaluate_int(self):
        assert (var("i") / 2).evaluate_int({"i": 4}) == 2

    def test_partial(self):
        e = var("i") + var("j")
        assert e.partial({"i": 3}) == var("j") + 3


class TestSubstitution:
    def test_simultaneous(self):
        i, j = vars_("i", "j")
        e = i + j
        # i -> j, j -> i simultaneously.
        swapped = e.substitute({"i": j, "j": i})
        assert swapped == e

    def test_substitute_expression(self):
        i, j = vars_("i", "j")
        e = 2 * i
        assert e.substitute({"i": j - 1}) == 2 * j - 2

    @given(exprs(), points())
    def test_substitute_constants_equals_evaluate(self, a, p):
        result = a.substitute({k: AffineExpr.const(v) for k, v in p.items()})
        assert result.is_constant()
        assert result.const_term == a.evaluate(p)


class TestCoefficientVector:
    def test_order(self):
        e = 2 * var("i") - var("k")
        assert e.coefficient_vector(("i", "j", "k")) == [2, 0, -1]

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            var("z").coefficient_vector(("i", "j"))


class TestQuasiAffine:
    def test_floordiv(self):
        e = (var("i") + var("j")).floordiv(2)
        assert e.evaluate_int({"i": 1, "j": 2}) == 1
        assert e.evaluate_int({"i": 2, "j": 2}) == 2

    def test_floor_negative(self):
        e = var("i").floordiv(2)
        assert e.evaluate_int({"i": -3}) == -2

    def test_ceildiv(self):
        e = var("i").ceildiv(2)
        assert e.evaluate_int({"i": 3}) == 2
        assert e.evaluate_int({"i": 4}) == 2

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            QuasiAffineExpr(var("i"), 0)

    @given(st.integers(-50, 50), st.integers(1, 7))
    def test_floordiv_matches_python(self, v, d):
        e = var("i").floordiv(d)
        assert e.evaluate_int({"i": v}) == v // d

    @given(st.integers(-50, 50), st.integers(1, 7))
    def test_ceildiv_matches_python(self, v, d):
        e = var("i").ceildiv(d)
        assert e.evaluate_int({"i": v}) == -((-v) // d)

    def test_substitute(self):
        e = (var("i") + var("j")).floordiv(2)
        shifted = e.substitute({"j": var("j") - 1})
        assert shifted.evaluate_int({"i": 2, "j": 5}) == 3


class TestEqualityHash:
    @given(exprs())
    def test_equal_hash(self, a):
        b = AffineExpr(a.coeffs, a.const_term)
        assert a == b
        assert hash(a) == hash(b)

    def test_constant_compare_with_int(self):
        assert const(3) == 3
        assert const(3) != 4

    def test_repr_roundtrip_smoke(self):
        e = -var("i") + 2 * var("j") - 1
        text = repr(e)
        assert "i" in text and "j" in text
