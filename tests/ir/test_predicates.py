"""Predicate atoms and conjunctions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import var
from repro.ir.predicates import (
    TRUE,
    at_least,
    at_most,
    equals,
    even,
    greater,
    less,
    odd,
)

I, J, K = var("i"), var("j"), var("k")


class TestComparisons:
    def test_equals(self):
        p = equals(K, I + 1)
        assert p.holds({"i": 2, "k": 3})
        assert not p.holds({"i": 2, "k": 4})

    def test_greater_strict(self):
        p = greater(K, I)
        assert p.holds({"i": 1, "k": 2})
        assert not p.holds({"i": 2, "k": 2})

    def test_less_at_most(self):
        assert less(I, J).holds({"i": 1, "j": 2})
        assert at_most(I, J).holds({"i": 2, "j": 2})
        assert not less(I, J).holds({"i": 2, "j": 2})

    def test_at_least(self):
        p = at_least(2 * K, I + J)
        assert p.holds({"i": 1, "j": 3, "k": 2})
        assert not p.holds({"i": 1, "j": 4, "k": 2})

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_trichotomy(self, a, b):
        point = {"i": a, "j": b}
        assert (greater(I, J).holds(point) + less(I, J).holds(point)
                + equals(I, J).holds(point)) == 1


class TestParity:
    def test_even_odd(self):
        assert even(I + J).holds({"i": 1, "j": 3})
        assert odd(I + J).holds({"i": 1, "j": 2})

    @given(st.integers(-30, 30))
    def test_exclusive(self, v):
        assert even(I).holds({"i": v}) != odd(I).holds({"i": v})


class TestQuasi:
    def test_equals_floor(self):
        head = equals(K, (I + J).floordiv(2))
        assert head.holds({"i": 2, "j": 6, "k": 4})
        assert head.holds({"i": 2, "j": 7, "k": 4})
        assert not head.holds({"i": 2, "j": 7, "k": 5})

    def test_greater_floor(self):
        p = greater(K, (I + J).floordiv(2))
        assert p.holds({"i": 2, "j": 6, "k": 5})
        assert not p.holds({"i": 2, "j": 6, "k": 4})

    def test_at_most_floor(self):
        p = at_most(K, (I + J).floordiv(2))
        assert p.holds({"i": 1, "j": 4, "k": 2})
        assert not p.holds({"i": 1, "j": 4, "k": 3})

    def test_less_and_at_least(self):
        fl = (I + J).floordiv(2)
        assert less(K, fl).holds({"i": 2, "j": 6, "k": 3})
        assert at_least(K, fl).holds({"i": 2, "j": 6, "k": 4})


class TestConjunction:
    def test_true(self):
        assert TRUE.holds({})
        assert TRUE.is_true()

    def test_and(self):
        p = equals(K, I + 1) & at_least(J, I + 3)
        assert p.holds({"i": 1, "j": 4, "k": 2})
        assert not p.holds({"i": 1, "j": 3, "k": 2})

    def test_repr_smoke(self):
        assert "TRUE" in repr(TRUE)
        assert "&" in repr(equals(I, 0) & equals(J, 0))
