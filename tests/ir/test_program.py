"""Program containers: modules, systems, high-level specs."""

import pytest

from repro.ir import (
    ADD,
    ArgSpec,
    ComputeRule,
    Equation,
    HighLevelSpec,
    InputRule,
    MIN,
    MIN_PLUS,
    Module,
    OutputSpec,
    Polyhedron,
    RecurrenceSystem,
    Ref,
    equals,
    ge,
    le,
)
from repro.ir.affine import var
from repro.ir.indexset import eq, lt
from repro.ir.predicates import at_least
from repro.problems import dp_spec
from repro.reference import min_plus_dp

I, J, K = var("i"), var("j"), var("k")


def tiny_module():
    domain = Polyhedron.box({"i": (1, 5)})
    eqn = Equation("x", (
        InputRule("x0", (I,), guard=equals(I, 1)),
        ComputeRule(ADD, (Ref.of("x", I - 1), Ref.of("x", I - 1)),
                    guard=at_least(I, 2)),
    ))
    return Module("tiny", ("i",), domain, [eqn])


class TestModule:
    def test_dims_must_match_domain(self):
        with pytest.raises(ValueError):
            Module("bad", ("i", "j"), Polyhedron.box({"i": (1, 3)}), [])

    def test_duplicate_equation_rejected(self):
        domain = Polyhedron.box({"i": (1, 3)})
        eqn = Equation("x", (InputRule("x0", (I,)),))
        with pytest.raises(ValueError):
            Module("dup", ("i",), domain, [eqn, eqn])

    def test_local_dependence_vectors(self):
        m = tiny_module()
        deps = m.local_dependence_vectors()
        assert deps == {"x": {(1,)}}

    def test_links_empty(self):
        assert tiny_module().links() == []


class TestRecurrenceSystem:
    def test_unknown_link_module_rejected(self):
        from repro.ir import ExternalRef, LinkRule

        domain = Polyhedron.box({"i": (1, 3)})
        eqn = Equation("x", (LinkRule(ExternalRef.of("ghost", "y", I)),))
        m = Module("m", ("i",), domain, [eqn])
        with pytest.raises(ValueError):
            RecurrenceSystem("s", [m], outputs=[])

    def test_unknown_output_rejected(self):
        m = tiny_module()
        out = OutputSpec("tiny", "ghost", m.domain, (I,))
        with pytest.raises(ValueError):
            RecurrenceSystem("s", [m], outputs=[out])

    def test_duplicate_module_names(self):
        m = tiny_module()
        with pytest.raises(ValueError):
            RecurrenceSystem("s", [m, tiny_module()], outputs=[])


class TestArgSpec:
    def test_operand_point(self):
        # c_{i,k}: replace coord 1 (j) by k.
        arg = ArgSpec(1, (0, 0))
        assert arg.operand_point((2, 7), 4) == (2, 4)

    def test_offsets_applied(self):
        arg = ArgSpec(0, (0, 1))
        assert arg.operand_point((2, 7), 5) == (5, 6)

    def test_bad_coord_rejected(self):
        with pytest.raises(ValueError):
            HighLevelSpec(
                name="bad", dims=("i",),
                domain=Polyhedron.box({"i": (1, 3)}),
                target="c", reduction_index="k",
                k_lower=I, k_upper=I, body=MIN_PLUS, combine=MIN,
                args=(ArgSpec(5, (0,)), ArgSpec(0, (0,))),
                init_domain=Polyhedron.box({"i": (1, 3)}),
                init_input="c0")


class TestHighLevelSpecEvaluate:
    def test_dp_matches_reference(self):
        spec = dp_spec()
        n = 7
        seeds = [3, 1, 4, 1, 5, 9]
        table = spec.evaluate({"n": n}, lambda i, j: seeds[i - 1])
        ref = min_plus_dp(seeds, n)
        for key, value in ref.items():
            assert table[key] == value

    def test_out_of_domain_reference_raises(self):
        spec = dp_spec()
        # A seed function that is fine; but shrink the init domain so a
        # needed boundary value is missing.
        broken = HighLevelSpec(
            name="broken", dims=spec.dims, domain=spec.domain,
            target="c", reduction_index="k",
            k_lower=spec.k_lower, k_upper=spec.k_upper,
            body=spec.body, combine=spec.combine, args=spec.args,
            init_domain=Polyhedron(("i", "j"),
                                   [ge(I, 2), le(J, "n"), *eq(J - I, 1)],
                                   params=("n",)),
            init_input="c0", params=("n",))
        with pytest.raises(KeyError):
            broken.evaluate({"n": 5}, lambda i, j: 1)

    def test_k_range(self):
        spec = dp_spec()
        assert list(spec.k_range({"i": 2, "j": 6})) == [3, 4, 5]
