"""Polyhedron (index set) enumeration, membership and projection."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.affine import var
from repro.ir.indexset import Polyhedron, eq, ge, gt, le, lt


def dp_triangle(param="n"):
    i, j, k = var("i"), var("j"), var("k")
    return Polyhedron(("i", "j", "k"),
                      [ge(i, 1), le(j, param), lt(i, j), lt(i, k), lt(k, j)],
                      params=(param,))


class TestConstructors:
    def test_box(self):
        p = Polyhedron.box({"i": (1, 4), "j": (0, 2)})
        assert p.count() == 4 * 3

    def test_parametric_box(self):
        p = Polyhedron.box({"i": (1, "n")}, params=("n",))
        assert p.count({"n": 7}) == 7

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(("i", "i"))

    def test_dim_param_clash_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(("i",), params=("i",))

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(("i",), [ge(var("z"), 0)])


class TestComparators:
    def test_strict_integer_semantics(self):
        i = var("i")
        p = Polyhedron(("i",), [gt(i, 0), lt(i, 3)])
        assert list(p.points()) == [(1,), (2,)]

    def test_eq_pair(self):
        i = var("i")
        p = Polyhedron(("i",), list(eq(i, 2)))
        assert list(p.points()) == [(2,)]


class TestEnumeration:
    def test_triangle_matches_brute_force(self):
        n = 7
        p = dp_triangle()
        pts = set(p.points({"n": n}))
        brute = {(i, j, k)
                 for i in range(1, n + 1) for j in range(1, n + 1)
                 for k in range(1, n + 1)
                 if i < j and i < k < j}
        assert pts == brute

    def test_lexicographic_order(self):
        p = Polyhedron.box({"i": (1, 2), "j": (1, 2)})
        assert list(p.points()) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_empty_domain(self):
        i = var("i")
        p = Polyhedron(("i",), [ge(i, 5), le(i, 4)])
        assert list(p.points()) == []
        assert p.is_empty()

    def test_unbound_parameter_rejected(self):
        p = dp_triangle()
        with pytest.raises(KeyError):
            list(p.points())

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6))
    def test_box_count(self, a, b):
        p = Polyhedron.box({"i": (1, a), "j": (1, b)})
        assert p.count() == a * b


class TestContains:
    def test_tuple_and_dict(self):
        p = dp_triangle()
        assert p.contains((1, 4, 2), {"n": 5})
        assert p.contains({"i": 1, "j": 4, "k": 2}, {"n": 5})
        assert not p.contains((1, 4, 4), {"n": 5})

    def test_wrong_arity(self):
        p = Polyhedron.box({"i": (1, 3)})
        with pytest.raises(ValueError):
            p.contains((1, 2))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 8))
    def test_contains_agrees_with_points(self, n):
        p = dp_triangle()
        pts = set(p.points({"n": n}))
        for cand in itertools.product(range(0, n + 2), repeat=3):
            assert p.contains(cand, {"n": n}) == (cand in pts)


class TestOperations:
    def test_bind_params(self):
        p = dp_triangle()
        bound = p.bind_params({"n": 5})
        assert bound.params == ()
        assert set(bound.points()) == set(p.points({"n": 5}))

    def test_with_constraints(self):
        p = Polyhedron.box({"i": (1, 6)})
        narrowed = p.with_constraints(ge(var("i"), 4))
        assert list(narrowed.points()) == [(4,), (5,), (6,)]

    def test_project(self):
        p = dp_triangle()
        proj = p.project(("i", "j"))
        # (i, j) appears iff there is a valid k: j - i >= 2.
        pts = set(proj.points({"n": 5}))
        assert (1, 3) in pts
        assert (1, 5) in pts

    def test_count_matches_len_points(self):
        p = dp_triangle()
        assert p.count({"n": 6}) == len(list(p.points({"n": 6})))


class TestPointsArray:
    def test_matches_points_order(self):
        p = dp_triangle()
        arr = p.points_array({"n": 6})
        assert arr.dtype == np.int64
        assert [tuple(row) for row in arr] == list(p.points({"n": 6}))

    def test_cached_and_readonly(self):
        p = dp_triangle()
        a = p.points_array({"n": 6})
        b = p.points_array({"n": 6})
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 99

    def test_cache_shared_across_equal_polyhedra(self):
        a = dp_triangle().points_array({"n": 5})
        b = dp_triangle().points_array({"n": 5})
        assert a is b

    def test_empty_domain_array(self):
        i = var("i")
        p = Polyhedron(("i", "j"), [ge(i, 5), le(i, 4), ge(var("j"), 0),
                                    le(var("j"), 3)])
        arr = p.points_array()
        assert arr.shape == (0, 2)
        assert p.count() == 0

    def test_zero_dimensional_domain(self):
        p = Polyhedron(())
        assert list(p.points()) == [()]
        assert p.points_array().shape == (1, 0)
        assert p.count() == 1

    def test_unbounded_domain_rejected(self):
        p = Polyhedron(("i",), [ge(var("i"), 0)])
        with pytest.raises(ValueError, match="unbounded"):
            list(p.points())
        with pytest.raises(ValueError, match="unbounded"):
            p.points_array()

    def test_unbounded_below_rejected(self):
        p = Polyhedron(("i",), [le(var("i"), 10)])
        with pytest.raises(ValueError, match="unbounded"):
            p.points_array()

    def test_unbound_parameter_still_keyerror(self):
        p = dp_triangle()
        with pytest.raises(KeyError):
            p.points_array()
