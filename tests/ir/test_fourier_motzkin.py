"""Fourier–Motzkin elimination: soundness against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import fourier_motzkin as fm
from repro.ir.affine import AffineExpr, var
from repro.ir.indexset import ge, le


def brute_satisfiable(constraints, names, lo=-8, hi=8):
    for point in itertools.product(range(lo, hi + 1), repeat=len(names)):
        binding = dict(zip(names, point))
        if all(e.evaluate(binding) >= 0 for e in constraints):
            return True
    return False


class TestEliminate:
    def test_simple_projection(self):
        i, j = var("i"), var("j")
        # 0 <= i <= j, j <= 5  --> projection on j: 0 <= j <= 5.
        cons = [ge(i, 0), le(i, j), le(j, 5)]
        projected = fm.eliminate(cons, "i")
        lo, hi = fm.rational_bounds(projected, "j", [])
        assert lo == 0 and hi == 5

    def test_combination(self):
        i = var("i")
        # i >= 2 and i <= 1: infeasible after elimination.
        cons = [ge(i, 2), le(i, 1)]
        with pytest.raises(fm.Infeasible):
            fm.deduplicate(fm.eliminate(cons, "i"))

    def test_free_constraints_pass_through(self):
        i, j = var("i"), var("j")
        cons = [ge(j, 3), ge(i, 0), le(i, 2)]
        projected = fm.eliminate(cons, "i")
        assert any(e == ge(j, 3) for e in projected)


class TestBounds:
    def test_triangle_bounds(self):
        i, j, k = var("i"), var("j"), var("k")
        cons = [ge(i, 1), le(j, 8), le(i + 1, k), le(k, j - 1)]
        lo, hi = fm.integer_bounds(cons, "k", ["i", "j"])
        assert (lo, hi) == (2, 7)

    def test_rational_floor_ceil(self):
        i = var("i")
        cons = [ge(2 * i, 3), le(2 * i, 9)]
        lo, hi = fm.integer_bounds(cons, "i", [])
        assert (lo, hi) == (2, 4)

    def test_unbounded_side(self):
        i = var("i")
        lo, hi = fm.rational_bounds([ge(i, 0)], "i", [])
        assert lo == 0 and hi is None

    def test_empty_range_raises(self):
        i = var("i")
        with pytest.raises(fm.Infeasible):
            fm.rational_bounds([ge(i, 5), le(i, 4)], "i", [])


class TestSatisfiability:
    def test_feasible(self):
        i, j = var("i"), var("j")
        assert fm.is_satisfiable([ge(i, 0), le(i, j), le(j, 3)], ["i", "j"])

    def test_infeasible(self):
        i, j = var("i"), var("j")
        assert not fm.is_satisfiable(
            [ge(i, j + 1), ge(j, i + 1)], ["i", "j"])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-6, 6)),
        min_size=1, max_size=5))
    def test_matches_brute_force_over_box(self, rows):
        """Random small systems inside a bounding box: FM agrees with
        exhaustive search (rational relaxation can only be *more*
        permissive, so only the unsat direction is asserted strictly)."""
        names = ["i", "j"]
        cons = [AffineExpr({"i": a, "j": b}, c) for a, b, c in rows]
        box = [ge(var("i"), -8), le(var("i"), 8),
               ge(var("j"), -8), le(var("j"), 8)]
        fm_result = fm.is_satisfiable(cons + box, names)
        brute = brute_satisfiable(cons, names)
        if brute:
            assert fm_result
