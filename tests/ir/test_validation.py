"""Canonic-form validation: each check fires on a crafted violation."""

import pytest

from repro.ir import (
    ADD,
    ComputeRule,
    Equation,
    IDENTITY,
    InputRule,
    Module,
    Polyhedron,
    Ref,
    ValidationError,
    equals,
)
from repro.ir.affine import var
from repro.ir.predicates import at_least
from repro.ir.validation import (
    check_ca2,
    check_canonic,
    check_compute_refs_defined,
    check_constant_dependencies,
    check_guards_cover,
    check_system,
)
from repro.problems import convolution_backward, dp_system

I, J = var("i"), var("j")


def box_module(equations):
    return Module("t", ("i", "j"),
                  Polyhedron.box({"i": (1, 4), "j": (1, 4)}), equations)


class TestCA2:
    def test_cross_coordinate_rejected(self):
        # x[i, i] — coordinate 1 depends on dimension i.
        eqn = Equation("x", (
            ComputeRule(IDENTITY, (Ref.of("x", I - 1, I),),
                        guard=at_least(I, 2)),
            InputRule("z", (), guard=equals(I, 1))))
        with pytest.raises(ValidationError):
            check_ca2(box_module([eqn]))

    def test_translation_ok(self):
        eqn = Equation("x", (
            ComputeRule(IDENTITY, (Ref.of("x", I - 1, J),),
                        guard=at_least(I, 2)),
            InputRule("z", (), guard=equals(I, 1))))
        check_ca2(box_module([eqn]))

    def test_quasi_affine_coordinate_rejected(self):
        eqn = Equation("x", (
            ComputeRule(IDENTITY, (Ref.of("x", (I + J).floordiv(2), J),)),))
        with pytest.raises(ValidationError):
            check_ca2(box_module([eqn]))


class TestCA3:
    def test_scaled_index_rejected(self):
        eqn = Equation("x", (
            ComputeRule(IDENTITY, (Ref.of("x", 2 * I, J),)),))
        with pytest.raises(ValidationError):
            check_constant_dependencies(box_module([eqn]))


class TestGuards:
    def test_gap_detected(self):
        eqn = Equation("x", (
            InputRule("z", (), guard=equals(I, 1)),))  # i >= 2 uncovered
        with pytest.raises(ValidationError):
            check_guards_cover(box_module([eqn]), {})

    def test_where_restricts(self):
        eqn = Equation("x", (
            InputRule("z", (), guard=equals(I, 1)),), where=equals(I, 1))
        check_guards_cover(box_module([eqn]), {})


class TestComputeRefs:
    def test_out_of_domain_operand(self):
        eqn = Equation("x", (
            ComputeRule(IDENTITY, (Ref.of("x", I - 1, J),)),))
        with pytest.raises(ValidationError):
            check_compute_refs_defined(box_module([eqn]), {})

    def test_undefined_region_operand(self):
        a = Equation("a", (InputRule("z", (),
                                     guard=at_least(I, 1)),),
                     where=at_least(I, 2))
        b = Equation("b", (ComputeRule(IDENTITY, (Ref.of("a", I, J),)),))
        with pytest.raises(ValidationError):
            check_compute_refs_defined(box_module([a, b]), {})


class TestRealSystems:
    def test_convolution_canonic(self):
        system = convolution_backward()
        check_system(system, {"n": 6, "s": 3})

    @pytest.mark.parametrize("n", [3, 4, 7, 10])
    def test_dp_system_valid(self, n):
        check_system(dp_system(), {"n": n})
