"""The level-grouped kernel engine against the interpreter oracle:
plan-level equivalence, the exact int64/object dtype policy, the batch
axis, and the lowering's level/group structure."""

from fractions import Fraction

import numpy as np
import pytest

from repro.ir import (
    ADD,
    ComputeRule,
    Equation,
    InputRule,
    Module,
    OutputSpec,
    Polyhedron,
    RecurrenceSystem,
    Ref,
    ValueKey,
    build_execution_plan,
    execute_plan,
    execute_plan_batch,
    execute_plan_vector,
    lower_plan,
    make_op,
    trace_execution,
)
from repro.codegen import native_available
from repro.ir.affine import var
from repro.ir.predicates import at_least
from repro.ir.vector import (
    IntegerFallback,
    _checked_add,
    _checked_mul,
    build_program,
    execute_program,
    fused_int_kernel,
)

I = var("i")


def fib_system(op=ADD):
    domain = Polyhedron.box({"i": (1, 10)})
    eqn = Equation("x", (
        InputRule("seed", (I,), guard=at_least(2 - I, 0)),
        ComputeRule(op, (Ref.of("x", I - 1), Ref.of("x", I - 2)),
                    guard=at_least(I, 3)),
    ))
    m = Module("fib", ("i",), domain, [eqn])
    return RecurrenceSystem(
        "fib", [m], outputs=[OutputSpec("fib", "x", domain, (I,))],
        input_names=("seed",))


def assert_traces_equal(got, want):
    assert got.results == want.results
    assert {k: e.value for k, e in got.events.items()} == \
        {k: e.value for k, e in want.events.items()}


class TestPlanEquivalence:
    def test_fibonacci(self):
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: 1}
        assert_traces_equal(execute_plan_vector(plan, inputs),
                            execute_plan(plan, inputs))

    def test_dp_system(self, dp_sys, dp_params, dp_host_inputs):
        plan = build_execution_plan(dp_sys, dp_params)
        assert_traces_equal(execute_plan_vector(plan, dp_host_inputs),
                            execute_plan(plan, dp_host_inputs))

    def test_event_rules_and_operands_match(self):
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: 1}
        vec = execute_plan_vector(plan, inputs).events
        ref = execute_plan(plan, inputs).events
        key = ValueKey("fib", "x", (7,))
        assert vec[key].operands == ref[key].operands
        assert vec[key].rule is ref[key].rule

    def test_missing_input_binding(self):
        plan = build_execution_plan(fib_system(), {})
        with pytest.raises(KeyError):
            execute_plan_vector(plan, {})

    def test_reusable_lowered_program(self):
        plan = build_execution_plan(fib_system(), {})
        program = lower_plan(plan)
        for seed in (1, 2, 5):
            got = execute_plan_vector(plan, {"seed": lambda i: seed},
                                      program=program)
            assert got.results[(10,)] == 55 * seed


class TestDtypePolicy:
    def test_integer_path_stays_exact_python_int(self):
        plan = build_execution_plan(fib_system(), {})
        res = execute_plan_vector(plan, {"seed": lambda i: 1}).results
        assert res[(10,)] == 55
        assert type(res[(10,)]) is int

    def test_fraction_inputs_fall_back_to_object(self):
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: Fraction(1, 3)}
        got = execute_plan_vector(plan, inputs)
        want = execute_plan(plan, inputs)
        assert_traces_equal(got, want)
        assert isinstance(got.results[(10,)], Fraction)

    def test_huge_ints_overflow_to_object_path(self):
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: 2**62}
        got = execute_plan_vector(plan, inputs)
        want = execute_plan(plan, inputs)
        assert got.results == want.results
        assert got.results[(10,)] == 55 * 2**62     # exceeds int64

    def test_input_wider_than_int64_falls_back(self):
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: 2**100}
        assert execute_plan_vector(plan, inputs).results == \
            execute_plan(plan, inputs).results

    def test_custom_op_uses_object_kernel(self):
        # Tuple-valued custom op: no stock int64 kernel may apply.
        pair = make_op("pair", 2, lambda a, b: (a, b))
        plan = build_execution_plan(fib_system(op=pair), {})
        program = lower_plan(plan)
        assert not program.int_ok
        inputs = {"seed": lambda i: i}
        assert_traces_equal(execute_plan_vector(plan, inputs, program),
                            execute_plan(plan, inputs))

    def test_same_name_custom_op_misses_fast_path(self):
        # Equality on Op ignores fn; the fast path must not.
        fake_add = make_op("add", 2, lambda a, b: a - b)
        assert fake_add == ADD
        plan = build_execution_plan(fib_system(op=fake_add), {})
        program = lower_plan(plan)
        assert not program.int_ok
        inputs = {"seed": lambda i: 1}
        assert execute_plan_vector(plan, inputs, program).results == \
            execute_plan(plan, inputs).results

    def test_custom_op_with_int_kernel_stays_fast(self):
        # An op may carry its own exact kernel (the fused DP body does).
        plus = make_op("plus3", 2, lambda a, b: a + b,
                       int_kernel=_checked_add)
        plan = build_execution_plan(fib_system(op=plus), {})
        program = lower_plan(plan)
        assert program.int_ok
        inputs = {"seed": lambda i: 1}
        assert execute_plan_vector(plan, inputs, program).results == \
            execute_plan(plan, inputs).results

    def test_fused_dp_body_takes_fast_path(self):
        from repro.problems import dp_system

        plan = build_execution_plan(dp_system(), {"n": 6})
        assert lower_plan(plan).int_ok

    def test_fused_kernel_requires_stock_components(self):
        from repro.ir import MIN, MIN_PLUS

        assert fused_int_kernel(MIN, MIN_PLUS) is not None
        custom = make_op("weird", 2, lambda a, b: a * b - 1)
        assert fused_int_kernel(MIN, custom) is None
        assert fused_int_kernel(custom, MIN_PLUS) is None
        # Same-name impostor: fn identity is checked, not op equality.
        fake_min = make_op("min", 2, lambda a, b: a)
        assert fused_int_kernel(fake_min, MIN_PLUS) is None

    def test_fused_kernel_accepts_any_body_arity(self):
        # Restructured systems fuse combine ∘ body where the body may be
        # unary (IDENTITY) or binary; the fused kernel is variadic.
        from repro.ir import IDENTITY, MIN, MIN_PLUS

        unary = fused_int_kernel(MIN, IDENTITY)
        assert unary is not None
        prev = np.array([5, 1], dtype=np.int64)
        x = np.array([3, 4], dtype=np.int64)
        assert unary(prev, x).tolist() == [3, 1]
        binary = fused_int_kernel(MIN, MIN_PLUS)
        assert binary(prev, x, x).tolist() == [5, 1]

    def test_fused_kernel_overflow_falls_back_exactly(self):
        from repro.problems import dp_inputs, dp_system

        plan = build_execution_plan(dp_system(), {"n": 5})
        inputs = dp_inputs([2**62, 2**62, 2**62, 2**62])
        got = execute_plan_vector(plan, inputs)
        want = execute_plan(plan, inputs)
        assert got.results == want.results
        assert any(v > 2**63 for v in got.results.values())

    def test_bool_inputs_fall_back(self):
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: True}
        got = execute_plan_vector(plan, inputs)
        assert got.results == execute_plan(plan, inputs).results


class TestFallbackObservability:
    def test_counter_counts_and_warning_fires_once(self, monkeypatch):
        import warnings

        import repro.ir.vector as vec
        from repro.util.instrument import STATS

        monkeypatch.setattr(vec, "_fallback_warned", False)
        plan = build_execution_plan(fib_system(), {})
        inputs = {"seed": lambda i: Fraction(1, 3)}
        before = STATS.counters.get("vector.int64_fallbacks", 0)
        with pytest.warns(RuntimeWarning, match="int64 fast path"):
            execute_plan_vector(plan, inputs)
        assert STATS.counters.get("vector.int64_fallbacks", 0) == before + 1
        # Later fallbacks keep counting but never warn again.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            execute_plan_vector(plan, inputs)
        assert STATS.counters.get("vector.int64_fallbacks", 0) == before + 2


class TestCheckedKernels:
    def test_add_overflow_raises(self):
        big = np.array([2**62, 1], dtype=np.int64)
        with pytest.raises(IntegerFallback):
            _checked_add(big, big)

    def test_add_in_range_ok(self):
        a = np.array([2**62, -5], dtype=np.int64)
        b = np.array([-(2**62), 7], dtype=np.int64)
        assert _checked_add(a, b).tolist() == [0, 2]

    def test_mul_overflow_raises(self):
        a = np.array([2**33], dtype=np.int64)
        with pytest.raises(IntegerFallback):
            _checked_mul(a, a)

    def test_mul_with_zero_operand_ok(self):
        a = np.array([0, 3], dtype=np.int64)
        b = np.array([2**62, 4], dtype=np.int64)
        assert _checked_mul(a, b).tolist() == [0, 12]

    def test_mul_neg_one_times_int64_min_falls_back(self):
        # Regression (found by 'repro fuzz'): -1 * INT64_MIN wraps back to
        # INT64_MIN, and the quotient probe c // -1 overflows identically,
        # so the old check declared the wrapped product exact.
        int64_min = np.iinfo(np.int64).min
        for a, b in [(-1, int64_min), (int64_min, -1)]:
            with pytest.raises(IntegerFallback):
                _checked_mul(np.array([a], dtype=np.int64),
                             np.array([b], dtype=np.int64))

    def test_mul_neg_one_in_range_stays_exact(self):
        # The largest products involving -1 that still fit must not be
        # kicked off the fast path.
        int64_min = np.iinfo(np.int64).min
        a = np.array([-1, int64_min + 1, -1], dtype=np.int64)
        b = np.array([int64_min + 1, -1, 9], dtype=np.int64)
        assert _checked_mul(a, b).tolist() == [2**63 - 1, 2**63 - 1, -9]


class TestBatchAxis:
    def test_batch_matches_loop(self):
        plan = build_execution_plan(fib_system(), {})
        input_sets = [{"seed": (lambda i, s=s: s)} for s in range(1, 6)]
        batch = execute_plan_batch(plan, input_sets)
        assert len(batch) == 5
        for bindings, got in zip(input_sets, batch):
            assert_traces_equal(got, execute_plan(plan, bindings))

    def test_empty_batch(self):
        plan = build_execution_plan(fib_system(), {})
        assert execute_plan_batch(plan, []) == []

    def test_one_fraction_seed_demotes_whole_batch_exactly(self):
        # A single non-integer instantiation sends the *pass* to the object
        # path; every seed must still match its own interpreter run.
        plan = build_execution_plan(fib_system(), {})
        input_sets = [{"seed": lambda i: 2},
                      {"seed": lambda i: Fraction(1, 2)}]
        batch = execute_plan_batch(plan, input_sets)
        for bindings, got in zip(input_sets, batch):
            assert got.results == execute_plan(plan, bindings).results


class TestLazyEvents:
    def test_execute_plan_defers_event_build(self):
        plan = build_execution_plan(fib_system(), {})
        trace = execute_plan(plan, {"seed": lambda i: 1})
        assert trace._pending is not None      # no Event objects built yet
        assert trace.results[(10,)] == 55      # results stay eager
        events = trace.events
        assert trace._pending is None
        assert events[ValueKey("fib", "x", (10,))].value == 55

    def test_vector_trace_defers_too(self):
        plan = build_execution_plan(fib_system(), {})
        trace = execute_plan_vector(plan, {"seed": lambda i: 1})
        assert trace._pending is not None
        assert trace.events[ValueKey("fib", "x", (10,))].value == 55

    def test_trace_execution_contract_unchanged(self):
        trace = trace_execution(fib_system(), {}, {"seed": lambda i: 1})
        assert trace.events[ValueKey("fib", "x", (5,))].value == 5

    def test_events_setter_clears_pending(self):
        plan = build_execution_plan(fib_system(), {})
        trace = execute_plan(plan, {"seed": lambda i: 1})
        trace.events = {}
        assert trace.events == {}


@pytest.mark.skipif(not native_available(),
                    reason="no C toolchain on this machine")
class TestNativeKernel:
    """The emitted C kernel against the ndarray fast path, at the level
    of one lowered program — the fourth engine's innermost contract."""

    def run_both(self, program, input_sets, tmp_path):
        from repro.codegen import emit_kernel, load_or_build
        from repro.ir.vector import fill_inputs

        want = execute_program(program, input_sets)
        kernel, reason = load_or_build(lambda: emit_kernel(program),
                                       cache_dir=tmp_path)
        assert kernel is not None, reason
        values = np.zeros((len(input_sets), program.node_count),
                          dtype=np.int64)
        fill_inputs(program, values, input_sets, int_mode=True)
        assert kernel.run(values) == 0
        return values, want

    def test_fibonacci_matches_fast_path(self, tmp_path):
        plan = build_execution_plan(fib_system(), {})
        program = lower_plan(plan)
        input_sets = [{"seed": (lambda i, s=s: s)} for s in (1, 2, 5)]
        values, want = self.run_both(program, input_sets, tmp_path)
        assert values.tolist() == np.asarray(want).tolist()

    def test_dp_fused_body_matches_fast_path(self, tmp_path):
        from repro.problems import dp_inputs, dp_system

        plan = build_execution_plan(dp_system(), {"n": 7})
        program = lower_plan(plan)
        input_sets = [dp_inputs([k + 1 for k in range(6)]),
                      dp_inputs([9 - k for k in range(6)])]
        values, want = self.run_both(program, input_sets, tmp_path)
        assert values.tolist() == np.asarray(want).tolist()

    def test_overflow_reports_nonzero(self, tmp_path):
        from repro.codegen import emit_kernel, load_or_build
        from repro.ir.vector import fill_inputs

        plan = build_execution_plan(fib_system(), {})
        program = lower_plan(plan)
        kernel, reason = load_or_build(lambda: emit_kernel(program),
                                       cache_dir=tmp_path)
        assert kernel is not None, reason
        input_sets = [{"seed": lambda i: 2**62}]   # fib sums overflow
        values = np.zeros((1, program.node_count), dtype=np.int64)
        fill_inputs(program, values, input_sets, int_mode=True)
        assert kernel.run(values) != 0

    def test_custom_op_is_rejected_not_miscompiled(self):
        from repro.codegen import UnsupportedForNative, emit_kernel

        pair = make_op("pair", 2, lambda a, b: (a, b))
        plan = build_execution_plan(fib_system(op=pair), {})
        program = lower_plan(plan)
        with pytest.raises(UnsupportedForNative):
            emit_kernel(program)


class TestLoweredStructure:
    def test_levels_and_groups(self):
        plan = build_execution_plan(fib_system(), {})
        program = lower_plan(plan)
        stats = program.stats()
        assert stats["nodes"] == plan.node_count
        assert stats["input_groups"] == 1
        assert stats["compute_groups"] >= 1
        assert stats["levels"] >= 2
        assert program.int_ok

    def test_level_respects_raw_dependences(self):
        plan = build_execution_plan(fib_system(), {})
        program = lower_plan(plan)
        producer_level = {}
        for group in program.groups:
            for dst in np.atleast_1d(group.dst):
                producer_level[int(dst)] = group.level
        for group in program.groups:
            for col in group.operands:
                for dst, src in zip(group.dst, col):
                    assert producer_level[int(src)] < group.level

    def test_non_ssa_rewrite_sequenced(self):
        # dst 2 is written twice; the copy reading the first value must see
        # the first value, the one after the rewrite the second.
        entries = [
            (2, None, (0,)),          # 2 <- input a
            (3, None, (2,)),          # reads first value
            (2, None, (1,)),          # WAR+WAW rewrite: 2 <- input b
            (4, None, (2,)),          # reads second value
        ]
        program = build_program(5, entries, [(0, "a", ()), (1, "b", ())])
        out = execute_program(program,
                              [{"a": lambda: 10, "b": lambda: 20}])
        assert out[0].tolist()[2:] == [20, 10, 20]
