"""Shared fixtures: systems, designs and inputs used across the suite.

Synthesis results are session-scoped — the solvers are deterministic, so
caching them is safe and keeps the suite fast.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.core import restructure, synthesize
from repro.problems import (
    convolution_backward,
    convolution_forward,
    dp_inputs,
    dp_spec,
    dp_system,
)

DP_N = 8


@pytest.fixture(scope="session", autouse=True)
def _isolated_design_cache(tmp_path_factory):
    """Point the persistent cache (designs + native .so artifacts) at a
    session tmp dir so the suite never pollutes the user's real cache —
    while still exercising warm-cache behaviour within the session."""
    path = tmp_path_factory.mktemp("design-cache")
    old = os.environ.get("REPRO_DESIGN_CACHE")
    os.environ["REPRO_DESIGN_CACHE"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_DESIGN_CACHE", None)
    else:
        os.environ["REPRO_DESIGN_CACHE"] = old


@pytest.fixture(scope="session")
def dp_sys():
    return dp_system()


@pytest.fixture(scope="session")
def dp_params():
    return {"n": DP_N}


@pytest.fixture(scope="session")
def dp_seeds():
    rng = random.Random(42)
    return [rng.randint(1, 9) for _ in range(DP_N - 1)]


@pytest.fixture(scope="session")
def dp_host_inputs(dp_seeds):
    return dp_inputs(dp_seeds)


@pytest.fixture(scope="session")
def dp_restructured():
    return restructure(dp_spec(), params={"n": DP_N})


@pytest.fixture(scope="session")
def dp_design_fig1(dp_sys, dp_params):
    return synthesize(dp_sys, dp_params, FIG1_UNIDIRECTIONAL)


@pytest.fixture(scope="session")
def dp_design_fig2(dp_sys, dp_params):
    return synthesize(dp_sys, dp_params, FIG2_EXTENDED)


@pytest.fixture(scope="session")
def conv_backward_sys():
    return convolution_backward()


@pytest.fixture(scope="session")
def conv_forward_sys():
    return convolution_forward()


@pytest.fixture(scope="session")
def conv_params():
    return {"n": 10, "s": 4}


@pytest.fixture(scope="session")
def conv_design_backward(conv_backward_sys, conv_params):
    return synthesize(conv_backward_sys, conv_params, LINEAR_BIDIR)


@pytest.fixture(scope="session")
def conv_design_forward(conv_forward_sys, conv_params):
    return synthesize(conv_forward_sys, conv_params, LINEAR_BIDIR)
