"""Interconnects, regions and data-flow classification."""

from fractions import Fraction

import pytest

from repro.arrays import (
    ArrayRegion,
    FIG1_UNIDIRECTIONAL,
    FIG2_EXTENDED,
    Interconnect,
    LINEAR_BIDIR,
    VLSIArray,
    classify_pair,
    variable_flows,
)
from repro.arrays.dataflow import Flow
from repro.deps import DependenceMatrix
from repro.schedule import LinearSchedule
from repro.space import SpaceMap


class TestInterconnect:
    def test_fig1_matches_paper(self):
        """Δ = [(0,0), (1,0), (0,-1)] — stay, +x, -y."""
        assert FIG1_UNIDIRECTIONAL.columns == ((0, 0), (1, 0), (0, -1))
        assert FIG1_UNIDIRECTIONAL.has_stay
        assert FIG1_UNIDIRECTIONAL.moves() == ((1, 0), (0, -1))

    def test_fig2_matches_paper(self):
        """Δ = [(0,0), (1,0), (0,-1), (-1,0), (-1,-1)]."""
        assert FIG2_EXTENDED.columns == (
            (0, 0), (1, 0), (0, -1), (-1, 0), (-1, -1))

    def test_matrix_shape(self):
        assert FIG2_EXTENDED.matrix().shape == (2, 5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interconnect("bad", ())

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            Interconnect("bad", ((0,), (1, 0)))


class TestRegion:
    def test_count_and_bbox(self):
        r = ArrayRegion.of([(0, 0), (1, 0), (1, 2)])
        assert r.count == 3
        assert r.bounding_box() == ((0, 1), (0, 2))

    def test_union_contains(self):
        a = ArrayRegion.of([(0,)])
        b = ArrayRegion.of([(1,)])
        u = a.union(b)
        assert (0,) in u and (1,) in u

    def test_empty_bbox_raises(self):
        with pytest.raises(ValueError):
            ArrayRegion(frozenset()).bounding_box()


class TestVLSIArray:
    def test_neighbours_respect_region(self):
        region = ArrayRegion.of([(0, 0), (1, 0)])
        arr = VLSIArray(FIG1_UNIDIRECTIONAL, region)
        assert arr.neighbours((0, 0)) == [(1, 0)]
        assert arr.neighbours((1, 0)) == []

    def test_link_exists(self):
        region = ArrayRegion.of([(0, 0), (1, 0)])
        arr = VLSIArray(FIG1_UNIDIRECTIONAL, region)
        assert arr.link_exists((0, 0), (1, 0))
        assert arr.link_exists((0, 0), (0, 0))    # stay
        assert not arr.link_exists((1, 0), (0, 0))


class TestFlows:
    def flows_w2(self):
        deps = DependenceMatrix.from_dict(
            {"y": [(0, 1)], "x": [(1, 1)], "w": [(1, 0)]})
        T = LinearSchedule(("i", "k"), (1, 1))
        S = SpaceMap(("i", "k"), ((0, 1),))
        return variable_flows(deps, T, S)

    def test_w2_flows(self):
        flows = self.flows_w2()
        assert flows["w"].stays
        assert flows["y"].direction == (1,) and flows["y"].speed == 1
        assert flows["x"].direction == (1,) and flows["x"].speed == Fraction(1, 2)

    def test_describe(self):
        flows = self.flows_w2()
        assert flows["w"].describe() == "stays"
        assert "speed 1/2" in flows["x"].describe()

    def test_classify_pair(self):
        flows = self.flows_w2()
        assert classify_pair(flows["y"], flows["x"]) == \
            "move in the same direction at different speeds"
        opposite = Flow("z", (0, 1), (-1,), 1)
        assert classify_pair(flows["y"], opposite) == \
            "move in opposite directions"
        assert classify_pair(flows["w"], flows["x"]) == "one stays"
        assert classify_pair(flows["w"], flows["w"]) == "both stay"
