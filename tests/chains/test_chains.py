"""Chain machinery: >_T, greedy decomposition, symbolic split, Dilworth."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chains import (
    AvailabilityOrder,
    ChainDecompositionError,
    greedy_chains,
    minimum_chain_decomposition,
    symbolic_chains,
    width,
)
from repro.problems import dp_spec
from repro.schedule import LinearSchedule

COARSE = LinearSchedule(("i", "j"), (-1, 1))


def order_at(i, j):
    return AvailabilityOrder(dp_spec(), COARSE, (i, j))


class TestAvailabilityOrder:
    def test_availability_values(self):
        o = order_at(2, 8)
        # avail(k) = max(k - i, j - k).
        assert o.availability(5) == 3
        assert o.availability(3) == 5
        assert o.availability(7) == 5

    def test_minimal_elements_even(self):
        """(i+j) even: single minimal element k = (i+j)/2."""
        assert order_at(2, 8).minimal_elements() == [5]

    def test_minimal_elements_odd(self):
        """(i+j) odd: two minimal elements (i+j∓1)/2."""
        assert order_at(2, 7).minimal_elements() == [4, 5]

    def test_greater_and_comparable(self):
        o = order_at(2, 8)
        assert o.greater(3, 5)
        assert not o.greater(5, 3)
        assert not o.comparable(4, 6)  # equal availability


class TestGreedyChains:
    def test_even_split(self):
        chains = greedy_chains(order_at(2, 8))
        assert [c.ks for c in chains] == [[5, 4, 3], [6, 7]]

    def test_odd_split(self):
        chains = greedy_chains(order_at(2, 7))
        assert [c.ks for c in chains] == [[4, 3], [5, 6]]

    def test_single_k(self):
        chains = greedy_chains(order_at(2, 4))
        assert [c.ks for c in chains] == [[3]]

    def test_directions(self):
        chains = greedy_chains(order_at(1, 9))
        assert chains[0].direction == "desc"
        assert chains[1].direction == "asc"

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 10), st.integers(2, 12))
    def test_partition_and_monotone(self, i, span):
        """Chains partition the k-range; each chain is k-monotone with
        strictly increasing availability."""
        j = i + span
        o = order_at(i, j)
        chains = greedy_chains(o)
        all_ks = sorted(k for c in chains for k in c.ks)
        assert all_ks == list(range(i + 1, j))
        for c in chains:
            avails = [o.availability(k) for k in c.ks]
            assert avails == sorted(avails)
            assert len(set(avails)) == len(avails)
            diffs = [b - a for a, b in zip(c.ks, c.ks[1:])]
            assert all(d > 0 for d in diffs) or all(d < 0 for d in diffs) \
                or not diffs

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 10), st.integers(2, 12))
    def test_greedy_is_minimal(self, i, span):
        """The paper's greedy construction matches the Dilworth minimum."""
        j = i + span
        o = order_at(i, j)
        chains = greedy_chains(o)
        ks = o.k_values()
        assert len(chains) == width(ks, o.greater)


class TestSymbolicChains:
    def test_dp_split_point(self):
        chains = symbolic_chains(dp_spec(), COARSE)
        assert len(chains) == 2
        assert chains[0].order == "desc"
        assert chains[1].order == "asc"
        # floor((i+j)/2) down to i+1; floor((i+j)/2)+1 up to j-1.
        b = {"i": 3, "j": 9}
        assert chains[0].concrete(b) == [6, 5, 4]
        assert chains[1].concrete(b) == [7, 8]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 9), st.integers(2, 10))
    def test_symbolic_matches_greedy(self, i, span):
        j = i + span
        chains = symbolic_chains(dp_spec(), COARSE)
        greedy = greedy_chains(order_at(i, j))
        b = {"i": i, "j": j}
        symbolic = [c.concrete(b) for c in chains if c.concrete(b)]
        assert symbolic == [c.ks for c in greedy]

    def test_monotone_spec_single_chain(self):
        """A one-argument spec whose availability grows with k: one chain."""
        from repro.ir import ArgSpec, HighLevelSpec, MIN, MIN_PLUS, Polyhedron

        spec = HighLevelSpec(
            name="mono", dims=("i", "j"),
            domain=dp_spec().domain, target="c", reduction_index="k",
            k_lower=dp_spec().k_lower, k_upper=dp_spec().k_upper,
            body=MIN_PLUS, combine=MIN,
            args=(ArgSpec(1, (0, 0)), ArgSpec(1, (0, 1))),
            init_domain=dp_spec().init_domain, init_input="c0",
            params=("n",))
        chains = symbolic_chains(spec, COARSE)
        assert len(chains) == 1
        assert chains[0].order == "asc"


class TestDilworth:
    def test_total_order_is_one_chain(self):
        chains = minimum_chain_decomposition(
            [1, 2, 3, 4], lambda a, b: a < b)
        assert len(chains) == 1
        assert chains[0] == [1, 2, 3, 4]

    def test_antichain(self):
        chains = minimum_chain_decomposition(
            ["a", "b", "c"], lambda a, b: False)
        assert len(chains) == 3

    def test_empty(self):
        assert minimum_chain_decomposition([], lambda a, b: True) == []

    def test_chains_are_chains(self):
        import random

        rng = random.Random(0)
        values = [(rng.randint(0, 5), rng.randint(0, 5)) for _ in range(12)]

        def lt(a, b):
            return a[0] <= b[0] and a[1] <= b[1] and a != b

        chains = minimum_chain_decomposition(values, lt)
        assert sorted(v for c in chains for v in c) == sorted(values)
        for c in chains:
            for a, b in zip(c, c[1:]):
                assert lt(a, b)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                    min_size=1, max_size=14, unique=True))
    def test_width_equals_max_antichain_lower_bound(self, values):
        def lt(a, b):
            return a[0] <= b[0] and a[1] <= b[1] and a != b

        w = width(values, lt)
        # Mirsky-style sanity: a maximum antichain cannot exceed the number
        # of chains — check with a greedy antichain.
        antichain = []
        for v in sorted(values):
            if all(not lt(a, v) and not lt(v, a) for a in antichain):
                antichain.append(v)
        assert w >= len(antichain)


class _StubOrder:
    """greedy_chains only consumes sorted_by_availability()."""

    def __init__(self, pairs):
        self._pairs = sorted(pairs)

    def sorted_by_availability(self):
        return list(self._pairs)


class TestGreedyTieBreaking:
    def test_equal_availability_forces_new_chain(self):
        """Ties in availability are incomparable under >_T, so the second
        element of a tie can never extend the first's chain."""
        chains = greedy_chains(_StubOrder([(5, 1), (5, 2)]))
        assert [c.ks for c in chains] == [[1], [2]]

    def test_ties_processed_smaller_k_first(self):
        # (5,1) opens chain0; (5,2) ties -> chain1; (6,3) and (7,4) extend
        # chain0 (first chain that admits them, ascending in k).
        chains = greedy_chains(_StubOrder([(6, 3), (5, 2), (7, 4), (5, 1)]))
        assert [c.ks for c in chains] == [[1, 3, 4], [2]]

    def test_first_eligible_chain_wins(self):
        # (6,0) has strictly later availability than both tails but k=0 only
        # fits chain1 descending?  chain0 is "single" so it accepts any k.
        chains = greedy_chains(_StubOrder([(5, 1), (5, 2), (6, 0)]))
        assert [c.ks for c in chains] == [[1, 0], [2]]

    def test_direction_consistency_respected(self):
        # chain0 becomes ascending [1, 3]; k=2 arrives later with higher
        # availability but would break monotonicity -> goes to chain1.
        chains = greedy_chains(_StubOrder([(5, 1), (6, 3), (7, 2)]))
        assert [c.ks for c in chains] == [[1, 3], [2]]

    def test_paper_dp_tie_structure(self):
        """DP at (i, j) = (2, 8): avail(k) = max(k - 2, 8 - k) ties at
        k and 10 - k, giving exactly two chains (the paper's split)."""
        o = order_at(2, 8)
        chains = greedy_chains(o)
        assert len(chains) == 2
        avail = [[o.availability(k) for k in c.ks] for c in chains]
        for seq in avail:
            assert seq == sorted(seq)
            assert len(set(seq)) == len(seq)  # strictly increasing
