"""The fuzz case family: descriptors, spec construction, and the oracle."""

from fractions import Fraction

import pytest

from repro.core import restructure
from repro.fuzz import CaseDescriptor, build_inputs, build_spec, seed_value
from repro.fuzz.oracle import OracleReject, evaluate
from repro.ir import run_system

TWO_CHAIN = ((1, (0, 0)), (0, (0, 0)))


def small(**overrides) -> CaseDescriptor:
    base = dict(n=5, lo=1, hi=1, args=TWO_CHAIN, body="min_plus",
                combine="min", pool=(3, -1, 4, 1), interconnect="fig1")
    base.update(overrides)
    return CaseDescriptor(**base)


class TestDescriptor:
    def test_roundtrips_through_json_dict(self):
        desc = small(pool=(Fraction(1, 3), -(2 ** 63), 10 ** 25, 7))
        clone = CaseDescriptor.from_dict(desc.to_dict())
        assert clone == desc
        assert isinstance(clone.pool[0], Fraction)
        assert isinstance(clone.pool[1], int)

    def test_rejects_unknown_ops(self):
        with pytest.raises(ValueError):
            small(body="frobnicate")
        with pytest.raises(ValueError):
            small(combine="frobnicate")

    def test_rejects_arity_mismatch(self):
        # "dbl" is unary; a two-argument shape must not pair with it.
        with pytest.raises(ValueError):
            small(body="dbl")

    def test_rejects_empty_pool_and_tiny_n(self):
        with pytest.raises(ValueError):
            small(pool=())
        with pytest.raises(ValueError):
            small(n=2)

    def test_seed_values_cycle_through_pool(self):
        pool = (10, 20, 30)
        values = {seed_value(pool, i, j)
                  for i in range(1, 6) for j in range(1, 6)}
        assert values == set(pool)


class TestSpecAgainstOracle:
    def run_pipeline(self, desc):
        spec = build_spec(desc)
        system = restructure(spec, params={"n": desc.n})
        return run_system(system, {"n": desc.n}, build_inputs(desc))

    def test_two_chain_case_matches_oracle(self):
        desc = small()
        assert self.run_pipeline(desc) == evaluate(desc)

    def test_single_chain_case_matches_oracle(self):
        desc = small(args=((1, (0, 0)), (1, (0, 0))), body="max",
                     combine="max")
        assert self.run_pipeline(desc) == evaluate(desc)

    def test_unary_case_matches_oracle(self):
        desc = small(args=((0, (0, 0)),), body="neg", combine="add")
        assert self.run_pipeline(desc) == evaluate(desc)

    def test_wider_bounds_match_oracle(self):
        desc = small(n=7, lo=2, hi=2)
        assert self.run_pipeline(desc) == evaluate(desc)

    def test_oracle_rejects_unclosed_offsets(self):
        # The offset-carrying arg shape escapes the computation domain at
        # the boundary; the oracle refuses instead of inventing values.
        desc = small(args=((1, (0, 0)), (1, (1, 0))))
        with pytest.raises(OracleReject):
            evaluate(desc)
