"""End-to-end outcomes of :func:`repro.fuzz.harness.run_case`."""

from repro.fuzz import ENGINE_ORDER, CaseDescriptor, run_case

TWO_CHAIN = ((1, (0, 0)), (0, (0, 0)))


def test_engine_order_covers_all_engines():
    # The native engine is opt-in for fuzzing (``run_case(..., native=True)``
    # / ``repro fuzz --native``): it needs a C toolchain to add coverage
    # beyond the vector paths it otherwise falls back to.
    from repro.core.verify import ENGINES

    assert set(ENGINE_ORDER) | {"native"} == set(ENGINES)
    assert "native" not in ENGINE_ORDER


def test_dp_like_case_is_ok():
    # The paper's own recurrence shape (two chains, min-plus/min) must pass
    # the full round trip: oracle, reference, synthesis, three engines and
    # byte-identical event streams.
    outcome = run_case(CaseDescriptor(
        n=6, lo=1, hi=1, args=TWO_CHAIN, body="min_plus", combine="min",
        pool=(3, -1, 4, 1, 0), interconnect="fig1"))
    assert outcome.status == "ok", outcome.detail
    assert not outcome.is_bug


def test_unclosed_offsets_reject_not_crash():
    outcome = run_case(CaseDescriptor(
        n=5, lo=1, hi=1, args=((1, (0, 0)), (1, (1, 0))), body="min",
        combine="min", pool=(2,), interconnect="fig1"))
    assert outcome.status == "reject"
    assert outcome.stage == "oracle"


def test_unlowerable_design_is_infeasible_not_bug():
    # Regression for the link-bandwidth gap: the schedule/space solvers do
    # not model channel capacity, so pre-fix synthesize returned a mesh
    # design whose compilation died with CapacityError ("channel ... of
    # stream ('m1', 'bp') is saturated").  synthesize now compile-checks
    # candidates on a value-free structural trace and reports infeasible.
    outcome = run_case(CaseDescriptor(
        n=6, lo=1, hi=1, args=TWO_CHAIN, body="min_plus", combine="min",
        pool=(0,), interconnect="mesh"))
    assert outcome.status == "infeasible", outcome.detail
    assert outcome.stage == "synthesize"


def test_outcome_is_bug_only_for_bug_status():
    from repro.fuzz.harness import CaseOutcome

    assert CaseOutcome("bug", "verify", "boom").is_bug
    for status in ("ok", "reject", "infeasible"):
        assert not CaseOutcome(status, "any", "").is_bug
