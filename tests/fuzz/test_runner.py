"""The fuzz loop, the corpus store, and a short live hypothesis run."""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.fuzz import (
    CaseDescriptor,
    artifact_name,
    fuzz,
    load_artifact,
    load_corpus,
    replay_corpus,
    run_case,
    save_artifact,
)
from repro.fuzz.runner import descriptors

TWO_CHAIN = ((1, (0, 0)), (0, (0, 0)))
DESC = CaseDescriptor(n=5, lo=1, hi=1, args=TWO_CHAIN, body="min_plus",
                      combine="min", pool=(3, -1), interconnect="fig1")


class TestCorpusStore:
    def test_save_load_round_trip(self, tmp_path):
        path = save_artifact(tmp_path, DESC, expect="ok", note="why",
                             found={"stage": "verify", "detail": "boom"})
        artifact = load_artifact(path)
        assert artifact["descriptor"] == DESC
        assert artifact["expect"] == "ok"
        assert artifact["note"] == "why"
        assert artifact["found"]["stage"] == "verify"

    def test_name_is_content_addressed(self, tmp_path):
        assert artifact_name(DESC) == artifact_name(
            CaseDescriptor.from_dict(DESC.to_dict()))
        other = CaseDescriptor(n=6, lo=1, hi=1, args=TWO_CHAIN,
                               body="min_plus", combine="min", pool=(3, -1))
        assert artifact_name(DESC) != artifact_name(other)
        # Saving the same descriptor twice overwrites, never duplicates.
        save_artifact(tmp_path, DESC)
        save_artifact(tmp_path, DESC, note="again")
        assert len(load_corpus(tmp_path)) == 1

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "fuzz-bad.json"
        path.write_text(json.dumps({"format": 99, "descriptor": {}}))
        with pytest.raises(ValueError, match="format"):
            load_artifact(path)

    def test_missing_corpus_dir_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_replay_honours_expect_contract(self, tmp_path):
        save_artifact(tmp_path, DESC, expect="ok")
        [(artifact, outcome, ok)] = replay_corpus(tmp_path)
        assert ok and outcome.status == "ok"
        # A wrong pin must fail the replay even though nothing crashed.
        save_artifact(tmp_path, DESC, expect="infeasible")
        [(artifact, outcome, ok)] = replay_corpus(tmp_path)
        assert not ok


class TestFuzzLoop:
    def test_short_run_is_clean_and_budgeted(self, tmp_path):
        report = fuzz(max_examples=8, budget=120.0, seed=11,
                      corpus_dir=tmp_path)
        assert report.ok, report.summary()
        assert 0 < report.examples_run <= 8
        assert sum(report.counts.values()) == report.examples_run
        assert set(report.counts) <= {"ok", "reject", "infeasible"}
        assert load_corpus(tmp_path) == []   # clean run saves nothing
        assert "seed 11" in report.summary()

    def test_bugs_are_shrunk_deduped_and_saved(self, tmp_path, monkeypatch):
        import repro.fuzz.runner as runner_mod

        from repro.fuzz.harness import CaseOutcome

        def flaky_run_case(desc, pipeline=True, native=False):
            # Everything with n > 3 is "broken": the shrinker should hand
            # the loop a minimal failing example, and repeats of the same
            # signature must not add artifacts.
            if desc.n > 3:
                return CaseOutcome("bug", "verify", "injected failure")
            return CaseOutcome("ok", "verify", "")

        monkeypatch.setattr(runner_mod, "run_case", flaky_run_case)
        report = fuzz(max_examples=30, budget=120.0, seed=0,
                      corpus_dir=tmp_path, max_failures=2)
        assert not report.ok
        assert len(report.failures) == 1    # one signature, deduplicated
        desc, outcome, path = report.failures[0]
        assert desc.n == 4                  # shrunk to the smallest failure
        [artifact] = load_corpus(tmp_path)
        assert artifact["path"] == path
        assert artifact["expect"] is None   # fresh failure: not yet pinned
        assert artifact["found"]["detail"] == "injected failure"
        assert "FAILURE [verify]" in report.summary()


class TestGeneratorLive:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(descriptors())
    def test_random_descriptors_never_expose_bugs(self, desc):
        outcome = run_case(desc)
        assert not outcome.is_bug, (
            f"{desc!r}\nstage={outcome.stage}\n{outcome.detail}")
