"""The typed metrics registry: handles, merge protocol, exposition."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    percentile,
    render_prometheus,
)
from repro.obs.telemetry import DEFAULT_BUCKETS


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 95) == pytest.approx(95.05)


class TestCounterGauge:
    def test_counter_shares_registry_store(self):
        reg = MetricsRegistry()
        c = reg.counter("cache.hits")
        c.inc()
        c.inc(4)
        assert reg.counters["cache.hits"] == 5
        assert c.value == 5

    def test_counter_does_not_preregister_zero(self):
        reg = MetricsRegistry()
        reg.counter("never.bumped")
        assert "never.bumped" not in reg.counters

    def test_typed_and_untyped_observe_each_other(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        reg.inc("x", 2)
        c.inc()
        assert c.value == 3

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("sweep.eta_s")
        g.set(12.5)
        assert g.value == 12.5
        g.inc(0.5)
        assert g.value == 13.0

    def test_count_hook_routes_through_tracer_span(self):
        """A typed increment must gain span attribution, exactly like a
        historical STATS.count call."""
        tracer = Tracer()
        tracer.enable()
        handle = tracer.metrics.counter("hits")
        with tracer.span("stage") as span:
            handle.inc(2)
        assert tracer.counters["hits"] == 2
        assert span.counters["hits"] == 2

    def test_registry_survives_tracer_reset(self):
        tracer = Tracer()
        handle = tracer.metrics.counter("hits")
        handle.inc()
        tracer.reset()
        assert handle.value == 0
        handle.inc()
        # the tracer's flat view and the registry are still the same dict
        assert tracer.counters is tracer.metrics.counters
        assert tracer.counters["hits"] == 1


class TestHistogram:
    def test_observe_updates_stats(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.004, 0.1):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(0.107)
        assert h.min == 0.001
        assert h.max == 0.1
        assert h.mean == pytest.approx(0.107 / 4)

    def test_bucket_counts_are_noncumulative(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.7, 5.0):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 1]   # <=1, <=2, overflow

    def test_percentiles_exact_when_under_capacity(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(float(i))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(100) == 100.0

    def test_reservoir_bounded(self):
        h = Histogram("lat", capacity=32)
        for i in range(1000):
            h.observe(float(i))
        assert h.count == 1000
        assert len(h.sample_values()) == 32

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(0.25)
        summary = h.summary()
        assert summary["count"] == 1
        for key in ("mean", "min", "max", "p50", "p90", "p95", "p99"):
            assert key in summary
        assert Histogram("x").summary() == {"count": 0}

    def test_wire_roundtrip_is_json_safe(self):
        h = Histogram("lat")
        for v in (0.001, 0.5, 3.0):
            h.observe(v)
        wire = json.loads(json.dumps(h.to_wire()))
        back = Histogram.from_wire("lat", wire)
        assert back.count == h.count
        assert back.sample_values() == h.sample_values()
        assert back.bucket_counts == h.bucket_counts

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("lat", buckets=(1.0,))
        b = Histogram("lat", buckets=(2.0,))
        b.observe(0.5)
        with pytest.raises(ValueError, match="bucket boundaries"):
            a.merge_wire(b.to_wire())


def _worker_histograms(observations_per_worker):
    """Simulated per-worker histograms over disjoint observation slices."""
    workers = []
    for values in observations_per_worker:
        h = Histogram("stage", capacity=64)
        for v in values:
            h.observe(v)
        workers.append(h)
    return workers


def _merge_order(workers, order):
    merged = Histogram("stage", capacity=64)
    for idx in order:
        merged.merge_wire(workers[idx].to_wire())
    return merged


class TestHistogramMergeAssociativity:
    """The batch protocol folds worker registries in completion order,
    which is nondeterministic — aggregates must not depend on it."""

    SLICES = (
        [0.001 * i for i in range(1, 80)],
        [0.01 * i for i in range(1, 120)],
        [0.5, 1.0, 2.0, 4.0, 8.0] * 10,
        [3e-4] * 25,
    )

    def test_any_merge_order_identical(self):
        import itertools

        workers = _worker_histograms(self.SLICES)
        reference = _merge_order(workers, range(len(workers)))
        for order in itertools.permutations(range(len(workers))):
            merged = _merge_order(workers, order)
            assert merged.count == reference.count
            assert merged.total == pytest.approx(reference.total)
            assert merged.bucket_counts == reference.bucket_counts
            assert merged.sample_values() == reference.sample_values()

    def test_nested_merge_equals_flat_merge(self):
        """((a+b) + (c+d)) == (((a+b)+c)+d) — true associativity, not just
        commutativity."""
        workers = _worker_histograms(self.SLICES)
        left = Histogram("stage", capacity=64)
        left.merge_wire(workers[0].to_wire())
        left.merge_wire(workers[1].to_wire())
        right = Histogram("stage", capacity=64)
        right.merge_wire(workers[2].to_wire())
        right.merge_wire(workers[3].to_wire())
        nested = Histogram("stage", capacity=64)
        nested.merge_wire(left.to_wire())
        nested.merge_wire(right.to_wire())
        flat = _merge_order(workers, range(len(workers)))
        assert nested.sample_values() == flat.sample_values()
        assert nested.bucket_counts == flat.bucket_counts

    def test_merge_matches_single_process(self):
        """Workers over disjoint slices must aggregate exactly like one
        process observing everything (bucket counts are exact)."""
        workers = _worker_histograms(self.SLICES)
        merged = _merge_order(workers, range(len(workers)))
        single = Histogram("stage", capacity=64)
        for values in self.SLICES:
            for v in values:
                single.observe(v)
        assert merged.count == single.count
        assert merged.bucket_counts == single.bucket_counts
        assert merged.min == single.min
        assert merged.max == single.max


class TestRegistry:
    def test_snapshot_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("b", 2)
        reg.inc("a")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.1)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)   # must not raise

    def test_empty_histograms_kept_off_wire_and_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("pre.registered")
        assert reg.to_wire()["histograms"] == {}
        assert reg.snapshot()["histograms"] == {}

    def test_wire_counters_optional(self):
        reg = MetricsRegistry()
        reg.inc("c")
        assert "counters" in reg.to_wire()
        assert "counters" not in reg.to_wire(counters=False)

    def test_merge_wire_full_registry(self):
        a = MetricsRegistry()
        a.inc("hits", 2)
        a.observe("lat", 0.1)
        b = MetricsRegistry()
        b.inc("hits", 3)
        b.set_gauge("eta", 9.0)
        b.observe("lat", 0.2)
        a.merge_wire(b.to_wire())
        assert a.counters["hits"] == 5
        assert a.gauges["eta"] == 9.0
        assert a.histograms["lat"].count == 2

    def test_reset_clears_in_place(self):
        reg = MetricsRegistry()
        counters = reg.counters
        reg.inc("x")
        reg.reset()
        assert reg.counters is counters
        assert not counters

    def test_typed_handle_classes_exported(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("c"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)
        # get-or-create: same underlying histogram every time
        assert reg.histogram("h") is reg.histogram("h")


class TestPrometheus:
    def test_counter_rendering(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 7)
        text = render_prometheus(reg)
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 7" in text

    def test_gauge_rendering(self):
        reg = MetricsRegistry()
        reg.set_gauge("sweep.throughput", 12.5)
        text = render_prometheus(reg)
        assert "# TYPE repro_sweep_throughput gauge" in text
        assert "repro_sweep_throughput 12.5" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            hist.observe(v)
        text = render_prometheus(reg)
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="2.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 7.0" in text
        assert "repro_lat_count 3" in text

    def test_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.inc("native.cc-errors@k")
        assert "repro_native_cc_errors_k_total" in render_prometheus(reg)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_custom_prefix(self):
        reg = MetricsRegistry()
        reg.inc("x")
        assert "acme_x_total 1" in render_prometheus(reg, prefix="acme")

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
