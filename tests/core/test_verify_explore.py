"""Verification catches broken designs; exploration reproduces Tables 1/2."""

import pytest

from repro.arrays import LINEAR_BIDIR
from repro.core import (
    Design,
    explore_uniform,
    pareto_front,
    verify_design,
)
from repro.problems import (
    classify_design,
    convolution_backward,
    convolution_forward,
    convolution_inputs,
)
from repro.schedule import LinearSchedule
from repro.space import SpaceMap

PARAMS = {"n": 10, "s": 4}
X = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3]
W = [2, 7, -1, 8]
INPUTS = convolution_inputs(X, W)


def w2_design(schedule_coeffs=(1, 1), matrix=((0, 1),)):
    system = convolution_backward()
    return Design(
        system=system, params=dict(PARAMS), interconnect=LINEAR_BIDIR,
        schedules={"conv": LinearSchedule(("i", "k"), schedule_coeffs)},
        space_maps={"conv": SpaceMap(("i", "k"), matrix)})


class TestVerifyDesign:
    def test_good_design_passes(self):
        report = verify_design(w2_design(), INPUTS)
        assert report.ok
        assert report.machine_stats is not None

    def test_invalid_schedule_caught(self):
        report = verify_design(w2_design(schedule_coeffs=(1, -1)), INPUTS)
        assert not report.ok
        assert not report.schedule_valid

    def test_conflicting_space_map_caught(self):
        report = verify_design(w2_design(matrix=((0, 0),)), INPUTS)
        assert not report.ok
        assert not report.conflict_free

    def test_unrealisable_flow_caught(self):
        report = verify_design(w2_design(matrix=((0, 2),)), INPUTS)
        assert not report.ok
        assert not report.flows_ok

    def test_engines_agree(self):
        """The compiled verification path (cached plan + lowered machine)
        must reproduce the interpreted oracle's report exactly — twice, so
        the warm cached path is exercised too."""
        design = w2_design()
        oracle = verify_design(design, INPUTS, engine="interpreted")
        for _ in range(2):
            fast = verify_design(design, INPUTS, engine="compiled")
            assert fast.ok == oracle.ok
            assert fast.failures == oracle.failures
            assert fast.machine_stats == oracle.machine_stats

    def test_engines_agree_on_broken_design(self):
        broken = w2_design(schedule_coeffs=(1, -1))
        oracle = verify_design(broken, INPUTS, engine="interpreted")
        fast = verify_design(broken, INPUTS, engine="compiled")
        assert not fast.ok and not oracle.ok
        assert fast.failures == oracle.failures

    def test_vector_engine_agrees(self):
        design = w2_design()
        oracle = verify_design(design, INPUTS, engine="interpreted")
        for _ in range(2):   # second pass hits the cached vplan/vmachine
            fast = verify_design(design, INPUTS, engine="vector")
            assert fast.ok == oracle.ok
            assert fast.failures == oracle.failures
            assert fast.machine_stats == oracle.machine_stats

    def test_vector_engine_agrees_on_broken_design(self):
        broken = w2_design(schedule_coeffs=(1, -1))
        oracle = verify_design(broken, INPUTS, engine="interpreted")
        fast = verify_design(broken, INPUTS, engine="vector")
        assert not fast.ok and not oracle.ok
        assert fast.failures == oracle.failures

    def test_multi_seed_batched_verification(self):
        design = w2_design()
        x_pool = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 8, -2]

        def factory(seed):
            return convolution_inputs(
                [x_pool[(seed + k) % len(x_pool)] for k in range(10)], W)

        batched = verify_design(design, factory, engine="vector",
                                seeds=range(5))
        looped = verify_design(design, factory, engine="compiled",
                               seeds=range(5))
        assert batched.ok and looped.ok
        assert batched.seeds_checked == looped.seeds_checked == 5
        assert batched.machine_stats == looped.machine_stats

    def test_empty_seed_sequence_rejected(self):
        # Regression: seeds=[] used to check zero inputs and report OK — a
        # vacuous pass indistinguishable from a real one.
        with pytest.raises(ValueError, match="seeds"):
            verify_design(w2_design(), lambda seed: INPUTS, seeds=[])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            verify_design(w2_design(), INPUTS, engine="quantum")

    def test_global_gap_violation_caught(self, dp_design_fig1,
                                         dp_host_inputs):
        broken = Design(
            system=dp_design_fig1.system,
            params=dp_design_fig1.params,
            interconnect=dp_design_fig1.interconnect,
            schedules={**dp_design_fig1.schedules,
                       "comb": dp_design_fig1.schedules["comb"].shifted(-3)},
            space_maps=dp_design_fig1.space_maps,
            constraints=dp_design_fig1.constraints)
        report = verify_design(broken, dp_host_inputs)
        assert not report.ok
        assert not report.global_gaps_ok


class TestExploration:
    def test_table1_backward_labels(self):
        designs = explore_uniform(convolution_backward(), PARAMS,
                                  LINEAR_BIDIR, time_bound=2)
        labels = {classify_design(d.flows) for d in designs} - {None}
        assert "W2" in labels
        assert "W1" not in labels and "R2" not in labels

    def test_table2_forward_labels(self):
        designs = explore_uniform(convolution_forward(), PARAMS,
                                  LINEAR_BIDIR, time_bound=2)
        labels = {classify_design(d.flows) for d in designs} - {None}
        assert {"W1", "R2"} <= labels
        assert "W2" not in labels

    def test_every_explored_design_verifies(self):
        designs = explore_uniform(convolution_backward(), PARAMS,
                                  LINEAR_BIDIR, time_bound=1)
        assert designs
        for d in designs[:6]:
            report = verify_design(d.design, INPUTS)
            assert report.ok, report.failures

    def test_sorted_by_quality(self):
        designs = explore_uniform(convolution_backward(), PARAMS,
                                  LINEAR_BIDIR, time_bound=2)
        keys = [(d.makespan, d.cells) for d in designs]
        assert keys == sorted(keys, key=lambda t: t[0])

    def test_explore_interconnects(self):
        from repro.arrays import (
            FIG1_UNIDIRECTIONAL,
            FIG2_EXTENDED,
            Interconnect,
        )
        from repro.core import explore_interconnects
        from repro.problems import dp_system

        bad = Interconnect("horizontal-only", ((0, 0), (1, 0), (-1, 0)))
        results = explore_interconnects(
            dp_system(), {"n": 6},
            [bad, FIG1_UNIDIRECTIONAL, FIG2_EXTENDED])
        names = [ic.name for ic, _ in results]
        # Feasible patterns first, cheapest first; infeasible last.
        assert names == ["fig2-extended", "fig1-unidirectional",
                         "horizontal-only"]
        assert results[-1][1] is None
        assert results[0][1].cell_count < results[1][1].cell_count

    def test_pareto_front(self):
        designs = explore_uniform(convolution_backward(), PARAMS,
                                  LINEAR_BIDIR, time_bound=2)
        front = pareto_front(designs)
        assert front
        for a in front:
            assert not any(
                b.makespan <= a.makespan and b.cells <= a.cells
                and (b.makespan, b.cells) != (a.makespan, a.cells)
                for b in designs)
