"""Algorithm transformations: broadcast elimination derives the paper's
recurrences (4)/(5) from the natural convolution statement."""

import random

import numpy as np
import pytest

from repro.arrays import LINEAR_BIDIR
from repro.core import synthesize_uniform, verify_design
from repro.deps import module_dependence_matrix
from repro.ir import check_system, run_system
from repro.ir.affine import var
from repro.problems import classify_design, convolution_inputs
from repro.reference import convolve
from repro.transform import (
    StreamSpec,
    build_recurrence,
    convolution_reduction,
    convolution_transform_inputs,
    matvec_reduction,
    matvec_transform_inputs,
    propagation_direction,
)

RNG = random.Random(99)
I, K = var("i"), var("k")


class TestPropagationDirection:
    def test_weights_constant_along_i(self):
        assert propagation_direction(StreamSpec("w", (K,)),
                                     ("i", "k")) == (1, 0)

    def test_inputs_constant_along_diagonal(self):
        assert propagation_direction(StreamSpec("x", (I - K + 1,)),
                                     ("i", "k")) == (1, 1)

    def test_full_rank_stream_has_none(self):
        assert propagation_direction(StreamSpec("A", (I, K)),
                                     ("i", "k")) is None

    def test_direction_is_primitive(self):
        d = propagation_direction(StreamSpec("v", (2 * I - 2 * K,)),
                                  ("i", "k"))
        assert d == (1, 1)

    def test_sign_canonical(self):
        d = propagation_direction(StreamSpec("v", (I + K,)), ("i", "k"))
        assert d is not None and d[0] >= 0


class TestDerivedConvolution:
    @pytest.mark.parametrize("direction", ["backward", "forward"])
    def test_matches_reference(self, direction):
        n, s = 10, 4
        system = build_recurrence(convolution_reduction(), direction)
        check_system(system, {"n": n, "s": s})
        x = [RNG.randint(-9, 9) for _ in range(n)]
        w = [RNG.randint(-4, 4) for _ in range(s)]
        res = run_system(system, {"n": n, "s": s},
                         convolution_transform_inputs(x, w))
        assert [res[(i,)] for i in range(1, n + 1)] == convolve(x, w)

    def test_backward_dependence_matrix_matches_paper(self):
        """The derived recurrence has exactly (4)'s dependence columns."""
        system = build_recurrence(convolution_reduction(), "backward")
        D = module_dependence_matrix(system.modules["conv"])
        by_var = {v: {d.vector for d in D.columns_for(v)}
                  for v in D.variables}
        assert by_var == {"w": {(1, 0)}, "x": {(1, 1)}, "y": {(0, 1)}}

    def test_forward_dependence_matrix_matches_paper(self):
        system = build_recurrence(convolution_reduction(), "forward")
        D = module_dependence_matrix(system.modules["conv"])
        assert {d.vector for d in D.columns_for("y")} == {(0, -1)}

    def test_derived_system_synthesizes_to_w2(self):
        """The automatically derived recurrence reaches the same design the
        paper's hand-written (4) does."""
        params = {"n": 10, "s": 3}
        system = build_recurrence(convolution_reduction(), "backward")
        design = synthesize_uniform(system, params, LINEAR_BIDIR)
        assert design.schedules["conv"].coeffs == (1, 1)
        assert design.space_maps["conv"].matrix == ((0, 1),)
        flows = design.flows()["conv"]
        assert classify_design(flows) == "W2"

    def test_derived_design_verifies_on_machine(self):
        params = {"n": 9, "s": 3}
        system = build_recurrence(convolution_reduction(), "backward")
        design = synthesize_uniform(system, params, LINEAR_BIDIR)
        x = [RNG.randint(-5, 5) for _ in range(params["n"])]
        w = [RNG.randint(-3, 3) for _ in range(params["s"])]
        report = verify_design(design, convolution_transform_inputs(x, w))
        assert report.ok, report.failures

    def test_agrees_with_hand_written_recurrence(self):
        """Derived and hand-written systems compute identical outputs."""
        from repro.problems import convolution_backward

        n, s = 8, 3
        x = [RNG.randint(-9, 9) for _ in range(n)]
        w = [RNG.randint(-4, 4) for _ in range(s)]
        derived = run_system(build_recurrence(convolution_reduction(),
                                              "backward"),
                             {"n": n, "s": s},
                             convolution_transform_inputs(x, w))
        hand = run_system(convolution_backward(), {"n": n, "s": s},
                          convolution_inputs(x, w))
        assert derived == hand


class TestDerivedMatvec:
    def test_matches_numpy(self):
        n = 6
        system = build_recurrence(matvec_reduction(), "backward")
        check_system(system, {"n": n})
        A = [[RNG.randint(-5, 5) for _ in range(n)] for _ in range(n)]
        x = [RNG.randint(-5, 5) for _ in range(n)]
        res = run_system(system, {"n": n}, matvec_transform_inputs(A, x))
        expected = np.array(A) @ np.array(x)
        for i in range(1, n + 1):
            assert res[(i,)] == expected[i - 1]

    def test_A_enters_directly_x_pipelines(self):
        system = build_recurrence(matvec_reduction(), "backward")
        D = module_dependence_matrix(system.modules["matvec"])
        assert "A" not in D.variables          # consumed in place
        assert {d.vector for d in D.columns_for("x")} == {(1, 0)}

    def test_matvec_synthesizes_and_runs(self):
        n = 5
        params = {"n": n}
        system = build_recurrence(matvec_reduction(), "backward")
        design = synthesize_uniform(system, params, LINEAR_BIDIR)
        A = [[RNG.randint(-4, 4) for _ in range(n)] for _ in range(n)]
        x = [RNG.randint(-4, 4) for _ in range(n)]
        report = verify_design(design, matvec_transform_inputs(A, x))
        assert report.ok, report.failures
