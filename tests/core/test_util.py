"""Integer-math utilities (and their agreement with the SNF-based solver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import solve_integer_system
from repro.util import (
    extended_gcd,
    gcd_vector,
    integer_solve,
    is_integer_matrix,
    lcm,
)


class TestExtendedGcd:
    @given(st.integers(-200, 200), st.integers(-200, 200))
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0

    def test_zero_zero(self):
        g, x, y = extended_gcd(0, 0)
        assert g == 0 and 0 * x + 0 * y == g


class TestLcmGcd:
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_lcm_divisible(self, a, b):
        m = lcm(a, b)
        if a and b:
            assert m % a == 0 and m % b == 0
        else:
            assert m == 0

    def test_gcd_vector(self):
        assert gcd_vector([4, 6, 10]) == 2
        assert gcd_vector([]) == 0
        assert gcd_vector([0, 0]) == 0


class TestIsIntegerMatrix:
    def test_cases(self):
        assert is_integer_matrix([[1, 2], [3, 4]])
        assert is_integer_matrix(np.array([[1.0, 2.0]]))
        assert not is_integer_matrix(np.array([[1.5]]))
        assert is_integer_matrix(np.zeros((0, 0)))


class TestIntegerSolve:
    def test_simple(self):
        x = integer_solve([[2, 1], [1, 1]], [5, 3])
        assert list(x) == [2, 1]

    def test_no_integer_solution(self):
        assert integer_solve([[2]], [3]) is None

    def test_inconsistent(self):
        assert integer_solve([[1], [1]], [1, 2]) is None

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(-4, 4), min_size=2, max_size=2),
                    min_size=2, max_size=3),
           st.lists(st.integers(-4, 4), min_size=2, max_size=2))
    def test_agrees_with_snf_solver(self, rows, x_true):
        """Two independent implementations must agree on solvability, and
        any solution either returns must verify."""
        A = np.array(rows, dtype=object)
        b = A @ np.array(x_true, dtype=object)
        via_elimination = integer_solve(A, b)
        via_snf = solve_integer_system(A, b)
        assert via_snf is not None  # constructed solvable
        x0, _ = via_snf
        assert (A @ x0 == b).all()
        if via_elimination is not None:
            assert (A @ np.array(list(via_elimination), dtype=object)
                    == b).all()
