"""`repro.api.__all__` is complete, importable and snapshot-stable."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import api

REPO = Path(__file__).resolve().parent.parent.parent

sys.path.insert(0, str(REPO / "tools"))
import dump_api_surface  # noqa: E402


class TestAllList:
    def test_every_name_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_no_private_names(self):
        assert not [n for n in api.__all__ if n.startswith("_")]

    def test_sorted_and_unique(self):
        assert list(api.__all__) == sorted(set(api.__all__))

    def test_complete(self):
        # Everything importable from the module that isn't a submodule
        # reference must be declared in __all__ — no accidental exports,
        # no undeclared ones.
        import types

        public = {name for name, obj in vars(api).items()
                  if not name.startswith("_")
                  and not isinstance(obj, types.ModuleType)}
        assert public == set(api.__all__)

    def test_pipeline_surface_exported(self):
        for name in ("Pass", "PassPipeline", "PipelineState",
                     "RewritePattern", "default_pipeline", "make_pass",
                     "available_passes", "run_pipeline", "system_to_ir",
                     "ir_to_system", "print_ir", "apply_patterns"):
            assert name in api.__all__, name

    def test_engine_surface_exported(self):
        assert api.ENGINES == ("compiled", "interpreted", "vector",
                               "native")
        assert [e.value for e in api.Engine] == list(api.ENGINES)
        assert api.coerce_engine(api.Engine.VECTOR) == "vector"

    def test_star_import_honours_all(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        exported = {n for n in namespace if not n.startswith("_")}
        assert exported == set(api.__all__)


class TestSnapshot:
    def test_snapshot_exists(self):
        assert dump_api_surface.SNAPSHOT.exists(), (
            "run `python tools/dump_api_surface.py` and commit the result")

    def test_surface_matches_snapshot(self):
        committed = dump_api_surface.SNAPSHOT.read_text()
        current = dump_api_surface.render()
        assert committed == current, (
            "repro.api drifted from tests/data/api_surface.txt; regenerate "
            "with `python tools/dump_api_surface.py` and commit the diff")

    def test_check_mode_exit_codes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "dump_api_surface.py"),
             "--check"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr

    def test_sentinel_defaults_normalised(self):
        # The _UNSET sentinel must not leak its memory address into the
        # snapshot, or every regeneration would differ.
        text = dump_api_surface.render()
        assert "<UNSET>" in text
        assert "object at 0x" not in text


@pytest.mark.parametrize("name", sorted(api.__all__))
def test_documented_or_self_describing(name):
    obj = getattr(api, name)
    if callable(obj):
        assert (obj.__doc__ or "").strip(), f"{name} has no docstring"
