"""The two-step refinement procedure: coarse timing and restructuring."""

import pytest

from repro.core import coarse_timing, restructure
from repro.core.restructure import RestructureError
from repro.deps import system_dependence_matrices
from repro.ir import check_system, run_system
from repro.problems import dp_inputs, dp_spec, dp_system
from repro.reference import min_plus_dp


class TestCoarseTiming:
    def test_dp_coarse_schedule(self):
        ct = coarse_timing(dp_spec(), {"n": 8})
        assert ct.schedule.coeffs == (-1, 1)

    def test_constant_deps_recorded(self):
        ct = coarse_timing(dp_spec(), {"n": 8})
        assert ct.constant_deps.vector_set() == {(0, 1), (-1, 0)}

    def test_coarse_is_lower_bound_of_actual(self):
        """τ(i^s) >= T(i^s) must hold for the final schedules: the combine
        time σ of every (i,j) is at least the coarse availability."""
        from repro.core import link_constraints, synthesize
        from repro.arrays import FIG1_UNIDIRECTIONAL

        system = dp_system()
        n = 7
        design = synthesize(system, {"n": n}, FIG1_UNIDIRECTIONAL)
        ct = coarse_timing(dp_spec(), {"n": n})
        comb = design.schedules["comb"]
        lo, _ = design.time_range()
        for p in system.modules["comb"].domain.points({"n": n}):
            assert comb.time(p) - lo >= ct.schedule.time(p) - 1


class TestRestructure:
    @pytest.fixture(scope="class")
    def derived(self):
        return restructure(dp_spec(), params={"n": 8})

    def test_module_structure(self, derived):
        assert list(derived.modules) == ["m1", "m2", "comb"]
        assert derived.modules["m1"].dims == ("i", "j", "k")
        assert derived.modules["comb"].dims == ("i", "j")

    def test_dependence_matrices_match_hand_written(self, derived):
        auto = system_dependence_matrices(derived)
        hand = system_dependence_matrices(dp_system())
        # Compare vector sets per module (variable names differ only by
        # systematic renaming ap/bp/cp).
        assert auto["m1"].vector_set() == hand["m1"].vector_set()
        assert auto["m2"].vector_set() == hand["m2"].vector_set()

    def test_canonic_for_many_sizes(self, derived):
        for n in (3, 4, 5, 8, 11):
            check_system(derived, {"n": n})

    def test_semantics_match_reference(self, derived):
        for n in (3, 5, 8, 11):
            seeds = [((7 * i) % 10) + 1 for i in range(1, n)]

            def c0(i, j, _s=seeds):
                return _s[i - 1]

            res = run_system(derived, {"n": n}, {"c0": c0})
            ref = min_plus_dp(seeds, n)
            assert all(res[k] == ref[k] for k in res)

    def test_semantics_match_hand_written_system(self, derived):
        n = 9
        seeds = [5, 2, 8, 1, 9, 3, 7, 4]
        hand = run_system(dp_system(), {"n": n}, dp_inputs(seeds))

        def c0(i, j, _s=seeds):
            return _s[i - 1]

        auto = run_system(derived, {"n": n}, {"c0": c0})
        assert auto == hand

    def test_chain_domains_partition_reduction_range(self, derived):
        """Every (i,j,k) of the DP triangle lands in exactly one module."""
        n = 9
        spec = dp_spec()
        m1 = set(derived.modules["m1"].domain.points({"n": n}))
        m2 = set(derived.modules["m2"].domain.points({"n": n}))
        assert not (m1 & m2)
        triangle = {(i, j, k)
                    for (i, j) in spec.domain.points({"n": n})
                    for k in range(i + 1, j)}
        assert m1 | m2 == triangle

    def test_link_labels_describe_sources(self, derived):
        labels = {rule.label for _, _, rule in derived.all_links()}
        assert "m1.ap<-m2" in labels      # the A1 pattern
        assert "m1.bp<-comb" in labels    # the A2 pattern
        assert "m2.app<-comb" in labels   # the A3 pattern
        assert "m2.bpp<-m1" in labels     # the A4 pattern
        assert "A5" in labels

    def test_requires_coarse_or_params(self):
        with pytest.raises(ValueError):
            restructure(dp_spec())

    def test_split_sensitive_semantics(self):
        """min-plus DP is split-degenerate (every parenthesisation sums the
        same seeds), so correctness there cannot detect missing reduction
        values.  This test uses a split-*sensitive* f — it fails if any k
        of any (i, j) is dropped by the chain decomposition or the combine
        guards (regression for the ascending-chain nonemptiness bug)."""
        from repro.ir import MIN, make_op
        from repro.problems.dynamic_programming import dp_spec as mk_spec
        from repro.reference import dp_table

        f = make_op("mix", 2, lambda a, b: a + b + a * b)
        spec = mk_spec(f, MIN)
        derived = restructure(spec, params={"n": 8})
        for n in (3, 4, 5, 6, 9):
            seeds = [((3 * i) % 7) + 1 for i in range(1, n)]

            def c0(i, j, _s=seeds):
                return _s[i - 1]

            res = run_system(derived, {"n": n}, {"c0": c0})
            ref = dp_table(n, lambda i: seeds[i - 1],
                           lambda a, b: a + b + a * b, min)
            assert all(res[k] == ref[k] for k in res), n
