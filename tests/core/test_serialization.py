"""Design serialization round-trips."""

import json

import pytest

from repro.core import Design, verify_design
from repro.problems import dp_inputs, dp_system


class TestRoundTrip:
    def test_json_round_trip(self, dp_design_fig2, dp_host_inputs):
        payload = json.loads(json.dumps(dp_design_fig2.to_dict()))
        rebuilt = Design.from_dict(payload, dp_design_fig2.system)
        assert rebuilt.schedules == dp_design_fig2.schedules
        assert rebuilt.space_maps == dp_design_fig2.space_maps
        assert rebuilt.cell_count == dp_design_fig2.cell_count
        assert rebuilt.interconnect.columns == \
            dp_design_fig2.interconnect.columns
        # A rebuilt design still verifies (constraints recompute from links).
        from repro.core import link_constraints

        rebuilt.constraints = link_constraints(rebuilt.system, rebuilt.params)
        report = verify_design(rebuilt, dp_host_inputs)
        assert report.ok, report.failures

    def test_wrong_system_rejected(self, dp_design_fig2, conv_backward_sys):
        payload = dp_design_fig2.to_dict()
        with pytest.raises(ValueError):
            Design.from_dict(payload, conv_backward_sys)

    def test_payload_is_plain_data(self, dp_design_fig1):
        payload = dp_design_fig1.to_dict()
        text = json.dumps(payload)   # must not raise
        assert "m1" in text and "fig1" in text
