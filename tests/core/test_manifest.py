"""Sweep manifests: journaling, resume validation, torn-tail tolerance."""

import json

import pytest

from repro.core import (
    ManifestError,
    SweepManifest,
    SweepResult,
    SweepSpec,
    read_manifest,
    run_sweep,
)
from repro.core.manifest import MANIFEST_VERSION, jobs_fingerprint
from repro.report import sweep_table


ENGINE = "compiled"


def _ident(key: str, engine: str = ENGINE) -> str:
    """The engine-qualified identity the journal keys records by."""
    return f"{key}::{engine}"


def _result(key: str, ok: bool = True,
            engine: str = ENGINE) -> SweepResult:
    return SweepResult(problem="dp", params={"n": 5}, interconnect="fig1",
                       key=key, ok=ok, engine=engine,
                       cells=5 if ok else None,
                       completion_time=9 if ok else None,
                       error_type=None if ok else "NoScheduleExists")


class TestFingerprint:
    def test_order_independent(self):
        assert jobs_fingerprint(["a", "b"]) == jobs_fingerprint(["b", "a"])

    def test_sensitive_to_membership(self):
        assert jobs_fingerprint(["a"]) != jobs_fingerprint(["a", "b"])


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, [_ident("k1"), _ident("k2")]) as m:
            m.record(_result("k1"))
        with SweepManifest.open(path, [_ident("k1"), _ident("k2")]) as m:
            assert set(m.completed) == {_ident("k1")}
            restored = m.restore()
        assert len(restored) == 1
        assert restored[0].key == "k1" and restored[0].cells == 5
        assert restored[0].identity == _ident("k1")

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, [_ident("k1")]) as m:
            m.record(_result("k1"))
            m.record(_result("k1"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2              # header + one done record

    def test_same_key_distinct_engines_both_journal(self, tmp_path):
        # Two jobs differing only in engine share a cache key; each must
        # get its own done-record or resuming silently drops one.
        path = tmp_path / "m.jsonl"
        idents = [_ident("k1", "vector"), _ident("k1", "native")]
        with SweepManifest.open(path, idents) as m:
            m.record(_result("k1", engine="vector"))
            m.record(_result("k1", engine="native"))
        with SweepManifest.open(path, idents) as m:
            assert set(m.completed) == set(idents)
            assert sorted(r.engine for r in m.restore()) == \
                ["native", "vector"]

    def test_failures_journal_too(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, [_ident("bad")]) as m:
            m.record(_result("bad", ok=False))
        with SweepManifest.open(path, [_ident("bad")]) as m:
            (restored,) = m.restore()
        assert not restored.ok
        assert restored.error_type == "NoScheduleExists"

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        SweepManifest.open(path, [_ident("k1")]).close()
        with pytest.raises(ManifestError, match="different sweep"):
            SweepManifest.open(path, [_ident("k1"), _ident("k2")])

    def test_unknown_done_key_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        header = {"kind": "header", "version": MANIFEST_VERSION,
                  "fingerprint": jobs_fingerprint([_ident("k1")]),
                  "total": 1}
        done = {"kind": "done", "key": _ident("rogue"),
                "result": _result("rogue").to_dict()}
        path.write_text(json.dumps(header) + "\n" + json.dumps(done) + "\n")
        with pytest.raises(ManifestError, match="unknown job key"):
            SweepManifest.open(path, [_ident("k1")])

    def test_not_a_manifest_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "noise"}\n')
        with pytest.raises(ManifestError, match="bad header"):
            SweepManifest.open(path, [_ident("k1")])

    def test_old_version_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        header = {"kind": "header", "version": 1,
                  "fingerprint": jobs_fingerprint([_ident("k1")]),
                  "total": 1}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ManifestError, match="version"):
            SweepManifest.open(path, [_ident("k1")])

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, [_ident("k1"), _ident("k2")]) as m:
            m.record(_result("k1"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "done", "key": "k2", "resu')   # died here
        with SweepManifest.open(path, [_ident("k1"), _ident("k2")]) as m:
            assert set(m.completed) == {_ident("k1")}

    def test_read_manifest_post_mortem(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, [_ident("k1"), _ident("k2"),
                                       _ident("k3")]) as m:
            m.record(_result("k1"))
            m.record(_result("k3"))
        info = read_manifest(path)
        assert info["version"] == MANIFEST_VERSION
        assert info["total"] == 3
        assert sorted(info["completed"]) == [_ident("k1"), _ident("k3")]

    def test_fsync_every_one_leaves_every_record_on_disk(self, tmp_path):
        path = tmp_path / "m.jsonl"
        m = SweepManifest.open(path, [_ident("k1")], fsync_every=1)
        m.record(_result("k1"))
        # No close(): simulate an abrupt death after the record landed.
        assert any(json.loads(line)["kind"] == "done"
                   for line in path.read_text().splitlines())
        m.close()


class TestRunSweepIntegration:
    SPEC = SweepSpec(problems=("dp",), interconnects=("fig1", "fig2"),
                     param_grid=({"n": 5}, {"n": 6}))

    def test_full_then_resume_executes_nothing(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = run_sweep(self.SPEC, workers=0, use_cache=False,
                          cross_check=False, manifest=path)
        again = run_sweep(self.SPEC, workers=0, use_cache=False,
                          cross_check=False, manifest=path)
        assert again.cache_misses == 0
        assert sweep_table(again.results) == sweep_table(first.results)
        # Restoration is pure journal replay — far below solve cost.
        assert again.wall_time < first.wall_time

    def test_manifest_of_other_grid_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_sweep(self.SPEC, workers=0, use_cache=False,
                  cross_check=False, manifest=path)
        other = SweepSpec(problems=("dp",), interconnects=("fig1",),
                          param_grid=({"n": 7},))
        with pytest.raises(ManifestError):
            run_sweep(other, workers=0, use_cache=False,
                      cross_check=False, manifest=path)

    def test_progress_reports_resumed_jobs(self, tmp_path):
        path = tmp_path / "sweep.jsonl"

        class Collect:
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

        run_sweep(self.SPEC, workers=0, use_cache=False,
                  cross_check=False, manifest=path)
        sink = Collect()
        run_sweep(self.SPEC, workers=0, use_cache=False,
                  cross_check=False, manifest=path, progress=sink)
        final = sink.events[-1]
        assert final.kind == "end"
        assert final.resumed == final.total == 4
        assert "resumed" in final.render()

    def test_cache_hits_are_journaled(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cache_dir = tmp_path / "cache"
        run_sweep(self.SPEC, workers=0, cache_dir=cache_dir,
                  cross_check=False)                       # populate cache
        run_sweep(self.SPEC, workers=0, cache_dir=cache_dir,
                  cross_check=False, manifest=path)        # hits journal
        info = read_manifest(path)
        assert len(info["completed"]) == info["total"] == 4

    def test_multi_engine_jobs_resume_without_loss(self, tmp_path):
        # Jobs differing only in engine share a cache key.  The journal
        # must keep one done-record per engine, and a resume must restore
        # both — losing either breaks the byte-identical-resume guarantee.
        import dataclasses

        from repro.core import SynthesisOptions

        base = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 5},))
        jobs = [dataclasses.replace(job, options=SynthesisOptions(engine=e))
                for job in base.jobs()
                for e in ("interpreted", "vector")]
        path = tmp_path / "sweep.jsonl"
        first = run_sweep(jobs, workers=0, use_cache=False,
                          cross_check=False, manifest=path)
        assert len(first.results) == 2
        assert len(read_manifest(path)["completed"]) == 2

        again = run_sweep(jobs, workers=0, use_cache=False,
                          cross_check=False, manifest=path)
        assert again.cache_misses == 0                 # nothing re-executed
        assert sorted(r.engine for r in again.results) == \
            ["interpreted", "vector"]
        assert sweep_table(again.results) == sweep_table(first.results)
