"""The command-line interface."""

import pytest

from repro.cli import main


class TestSynthesize:
    def test_dp_fig1(self, capsys):
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "m1" in out and "cells" in out

    def test_conv_with_verify(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3",
                     "--interconnect", "linear", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "machine:" in out

    def test_unknown_interconnect(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--interconnect", "warp-drive"])

    def test_verify_reports_seed(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3", "--interconnect", "linear",
                     "--verify", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "(seed=7, engine=compiled)" in out

    def test_verify_interpreted_engine(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3", "--interconnect", "linear",
                     "--verify", "--engine", "interpreted", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "engine=interpreted" in out
        assert "verify.machine" in out    # --stats shows the verify stages


class TestSweep:
    def test_smoke_grid(self, tmp_path, capsys):
        argv = ["sweep", "--problems", "dp,conv-backward",
                "--interconnects", "fig1,linear", "--n", "6", "--s", "3",
                "--workers", "2", "--cache-dir", str(tmp_path),
                "--json", str(tmp_path / "sweep.json"), "--stats"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Pareto front" in cold
        assert "NoSpaceMapExists" in cold      # dp on linear is infeasible
        assert "cache: 0 hits, 4 misses" in cold
        assert (tmp_path / "sweep.json").is_file()
        # Warm re-run: all hits, tables byte-identical.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: 4 hits, 0 misses" in warm
        assert "cross-check: ok" in warm

        def tables(text):
            return [ln for ln in text.splitlines()
                    if ln.startswith(("|", "+"))]

        assert tables(warm) == tables(cold)

    def test_unknown_problem(self):
        with pytest.raises(SystemExit, match="unknown problem"):
            main(["sweep", "--problems", "fft"])

    def test_bad_param_value(self):
        with pytest.raises(SystemExit, match="bad --n/--s"):
            main(["sweep", "--n", "six"])


class TestExplore:
    def test_backward_table(self, capsys):
        assert main(["explore", "--recurrence", "backward",
                     "--n", "10", "--s", "3"]) == 0
        out = capsys.readouterr().out
        assert "W2" in out and "W1" not in out

    def test_forward_table(self, capsys):
        assert main(["explore", "--recurrence", "forward",
                     "--n", "10", "--s", "3"]) == 0
        out = capsys.readouterr().out
        assert "W1" in out and "R2" in out


class TestFigures:
    def test_both_arrays(self, capsys):
        assert main(["figures", "--n", "7"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig2" in out and "[" in out


class TestCell:
    def test_cell_timetable(self, capsys):
        assert main(["cell", "--n", "7", "--x", "3", "--y", "2"]) == 0
        out = capsys.readouterr().out
        assert "t=" in out or "idle" in out
