"""The command-line interface."""

import pytest

from repro.cli import main


class TestSynthesize:
    def test_dp_fig1(self, capsys):
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "m1" in out and "cells" in out

    def test_conv_with_verify(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3",
                     "--interconnect", "linear", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "machine:" in out

    def test_unknown_interconnect(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--interconnect", "warp-drive"])


class TestExplore:
    def test_backward_table(self, capsys):
        assert main(["explore", "--recurrence", "backward",
                     "--n", "10", "--s", "3"]) == 0
        out = capsys.readouterr().out
        assert "W2" in out and "W1" not in out

    def test_forward_table(self, capsys):
        assert main(["explore", "--recurrence", "forward",
                     "--n", "10", "--s", "3"]) == 0
        out = capsys.readouterr().out
        assert "W1" in out and "R2" in out


class TestFigures:
    def test_both_arrays(self, capsys):
        assert main(["figures", "--n", "7"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig2" in out and "[" in out


class TestCell:
    def test_cell_timetable(self, capsys):
        assert main(["cell", "--n", "7", "--x", "3", "--y", "2"]) == 0
        out = capsys.readouterr().out
        assert "t=" in out or "idle" in out
