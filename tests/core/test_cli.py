"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import TRACER, load_run_record, read_jsonl


class TestSynthesize:
    def test_dp_fig1(self, capsys):
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "m1" in out and "cells" in out

    def test_conv_with_verify(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3",
                     "--interconnect", "linear", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "machine:" in out

    def test_unknown_interconnect(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--interconnect", "warp-drive"])

    def test_verify_reports_seed(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3", "--interconnect", "linear",
                     "--verify", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "(seed=7, engine=compiled)" in out

    def test_verify_interpreted_engine(self, capsys):
        assert main(["synthesize", "--problem", "conv-backward",
                     "--n", "8", "--s", "3", "--interconnect", "linear",
                     "--verify", "--engine", "interpreted", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "engine=interpreted" in out
        assert "verify.machine" in out    # --stats shows the verify stages

    def test_verify_vector_engine(self, capsys):
        assert main(["synthesize", "--problem", "dp", "--n", "6",
                     "--interconnect", "fig1",
                     "--verify", "--engine", "vector", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "engine=vector" in out
        assert "vector.exec" in out       # kernel stages in the span tree

    def test_verify_vector_multi_seed(self, capsys):
        assert main(["synthesize", "--problem", "dp", "--n", "6",
                     "--interconnect", "fig1", "--verify",
                     "--engine", "vector", "--seed", "3", "--seeds", "8"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "(seeds=3..10, engine=vector)" in out

    def test_verify_native_engine(self, capsys):
        # Works with or without a C toolchain: the native engine degrades
        # to the vector paths, so verification stays OK either way.
        assert main(["synthesize", "--problem", "dp", "--n", "6",
                     "--interconnect", "fig1",
                     "--verify", "--engine", "native", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "verification: VerificationReport(OK)" in out
        assert "engine=native" in out


class TestEngineRegistry:
    def test_cli_choices_follow_the_registry(self):
        # Satellite contract: every --engine flag derives its choices from
        # the Engine registry, so a new engine appears everywhere at once.
        import argparse

        from repro.cli import build_parser
        from repro.machine.engines import ENGINES

        found = []
        subparser_actions = [
            a for a in build_parser()._actions
            if isinstance(a, argparse._SubParsersAction)]
        for sub in subparser_actions:
            for name, parser in sub.choices.items():
                for action in parser._actions:
                    if "--engine" in action.option_strings:
                        assert tuple(action.choices) == ENGINES, name
                        found.append(name)
        assert sorted(set(found)) == ["profile", "sweep", "synthesize",
                                      "trace"]

    def test_registry_contains_native(self):
        from repro.machine.engines import ENGINE_DESCRIPTIONS, ENGINES

        assert "native" in ENGINES
        assert set(ENGINE_DESCRIPTIONS) == set(ENGINES)


class TestSweep:
    def test_smoke_grid(self, tmp_path, capsys):
        argv = ["sweep", "--problems", "dp,conv-backward",
                "--interconnects", "fig1,linear", "--n", "6", "--s", "3",
                "--workers", "2", "--cache-dir", str(tmp_path),
                "--json", str(tmp_path / "sweep.json"), "--stats"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Pareto front" in cold
        assert "NoSpaceMapExists" in cold      # dp on linear is infeasible
        assert "cache: 0 hits, 4 misses" in cold
        assert (tmp_path / "sweep.json").is_file()
        # Warm re-run: all hits, tables byte-identical.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: 4 hits, 0 misses" in warm
        assert "cross-check: ok" in warm

        def tables(text):
            return [ln for ln in text.splitlines()
                    if ln.startswith(("|", "+"))]

        assert tables(warm) == tables(cold)

    def test_verify_seeds(self, tmp_path, capsys):
        argv = ["sweep", "--problems", "dp", "--interconnects", "fig1",
                "--n", "6", "--serial", "--cache-dir", str(tmp_path),
                "--verify-seeds", "3", "--stats"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "verify: 1 design(s), 3 seeded runs, 0 failure(s)" in cold
        # Cached designs are re-verified on the warm pass too.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "verify: 1 design(s), 3 seeded runs, 0 failure(s)" in warm

    def test_unknown_problem(self):
        with pytest.raises(SystemExit, match="unknown problem"):
            main(["sweep", "--problems", "fft"])

    def test_bad_param_value(self):
        with pytest.raises(SystemExit, match="bad --n/--s"):
            main(["sweep", "--n", "six"])


class TestFuzz:
    def test_short_generate_run(self, tmp_path, capsys):
        assert main(["fuzz", "--examples", "3", "--seed", "5",
                     "--corpus-dir", str(tmp_path / "corpus")]) == 0
        out = capsys.readouterr().out
        assert "fuzz:" in out and "seed 5" in out
        assert "corpus: 0 artifacts" in out   # clean run saves nothing

    def test_replay_empty_corpus(self, tmp_path, capsys):
        assert main(["fuzz", "--replay",
                     "--corpus-dir", str(tmp_path)]) == 0
        assert "no corpus artifacts" in capsys.readouterr().out

    def test_replay_pinned_artifact(self, tmp_path, capsys):
        from repro.fuzz import CaseDescriptor, save_artifact

        desc = CaseDescriptor(
            n=5, lo=1, hi=1, args=((1, (0, 0)), (0, (0, 0))),
            body="min_plus", combine="min", pool=(3, -1),
            interconnect="fig1")
        save_artifact(tmp_path, desc, expect="ok")
        assert main(["fuzz", "--replay", "--corpus-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 artifacts, 0 failing" in out
        # A wrong pin turns into a non-zero exit.
        save_artifact(tmp_path, desc, expect="infeasible")
        assert main(["fuzz", "--replay", "--corpus-dir", str(tmp_path)]) == 1

    def test_replay_with_native_engine(self, tmp_path, capsys):
        from repro.fuzz import CaseDescriptor, save_artifact

        desc = CaseDescriptor(
            n=5, lo=1, hi=1, args=((1, (0, 0)), (0, (0, 0))),
            body="min_plus", combine="min", pool=(3, -1),
            interconnect="fig1")
        save_artifact(tmp_path, desc, expect="ok")
        assert main(["fuzz", "--replay", "--native",
                     "--corpus-dir", str(tmp_path)]) == 0
        assert "replayed 1 artifacts, 0 failing" in capsys.readouterr().out


class TestExplore:
    def test_backward_table(self, capsys):
        assert main(["explore", "--recurrence", "backward",
                     "--n", "10", "--s", "3"]) == 0
        out = capsys.readouterr().out
        assert "W2" in out and "W1" not in out

    def test_forward_table(self, capsys):
        assert main(["explore", "--recurrence", "forward",
                     "--n", "10", "--s", "3"]) == 0
        out = capsys.readouterr().out
        assert "W1" in out and "R2" in out


class TestFigures:
    def test_both_arrays(self, capsys):
        assert main(["figures", "--n", "7"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig2" in out and "[" in out


class TestCell:
    def test_cell_timetable(self, capsys):
        assert main(["cell", "--n", "7", "--x", "3", "--y", "2"]) == 0
        out = capsys.readouterr().out
        assert "t=" in out or "idle" in out


class TestTrace:
    def test_exports_and_summary(self, tmp_path, capsys):
        out_base = str(tmp_path / "smoke")
        assert main(["trace", "--problem", "dp", "--interconnect", "fig1",
                     "--n", "7", "--out", out_base]) == 0
        out = capsys.readouterr().out
        assert "per-cell utilization" in out
        assert "events:" in out and "fire=" in out
        jsonl = tmp_path / "smoke.events.jsonl"
        chrome = tmp_path / "smoke.trace.json"
        assert jsonl.is_file() and chrome.is_file()
        events = read_jsonl(jsonl)
        assert events and {e.kind for e in events} >= {"fire", "hop"}
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"] and doc["displayTimeUnit"] == "ms"

    def test_engines_export_identical_jsonl(self, tmp_path):
        argv = ["trace", "--problem", "dp", "--interconnect", "fig1",
                "--n", "6"]
        assert main(argv + ["--engine", "compiled",
                            "--out", str(tmp_path / "c")]) == 0
        assert main(argv + ["--engine", "interpreted",
                            "--out", str(tmp_path / "i")]) == 0
        assert (tmp_path / "c.events.jsonl").read_text() \
            == (tmp_path / "i.events.jsonl").read_text()

    def test_from_record_replay(self, tmp_path, capsys):
        metrics = tmp_path / "metrics"
        assert main(["trace", "--problem", "dp", "--interconnect", "fig1",
                     "--n", "6", "--out", str(tmp_path / "t"),
                     "--stats", "--metrics-dir", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "run record:" in out
        records = list(metrics.glob("run-*.json"))
        assert len(records) == 1
        assert main(["trace", "--from-record", str(records[0])]) == 0
        replay = capsys.readouterr().out
        assert "run record: trace" in replay
        assert "cycles" in replay            # machine stats replayed

    def test_from_record_bad_file(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="cannot read run record"):
            main(["trace", "--from-record", str(bad)])


class TestStatsAndMetrics:
    def test_stats_report_is_deterministic_and_sorted(self, capsys):
        argv = ["synthesize", "--problem", "dp", "--interconnect", "fig1",
                "--n", "6", "--stats"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out

        def stat_names(text):
            lines = text.split("instrumentation:\n", 1)[1].splitlines()
            counters, timers = [], []
            for line in lines:
                if not line.startswith("  ") or line.startswith("  ("):
                    break
                parts = line.split()
                (timers if parts[-1] == "ms" else counters).append(parts[0])
            return counters, timers

        counters, timers = stat_names(first)
        assert counters and timers
        assert counters == sorted(counters)            # key-sorted sections
        assert timers == sorted(timers)
        assert stat_names(second) == (counters, timers)  # run-to-run stable

    def test_stats_shows_span_tree(self, capsys):
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out

    def test_tracer_disabled_after_run(self, capsys):
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6", "--stats"]) == 0
        capsys.readouterr()
        assert not TRACER.enabled

    def test_sweep_json_round_trips_stats(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert main(["sweep", "--problems", "dp", "--interconnects", "fig1",
                     "--n", "6", "--workers", "0",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", str(path), "--stats"]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert json.loads(json.dumps(doc)) == doc
        assert doc["results"]

    def test_metrics_dir_writes_record(self, tmp_path, capsys):
        metrics = tmp_path / "metrics"
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6", "--verify",
                     "--metrics-dir", str(metrics)]) == 0
        capsys.readouterr()
        records = list(metrics.glob("run-*.json"))
        assert len(records) == 1
        record = load_run_record(records[0])
        assert record.command == "synthesize"
        assert record.machine_stats and record.machine_stats["cycles"] > 0
        assert record.stats["counters"]
        assert record.spans                  # tree captured for the record

    def test_metrics_env_var_honoured(self, tmp_path, capsys, monkeypatch):
        metrics = tmp_path / "env-metrics"
        monkeypatch.setenv("REPRO_METRICS_DIR", str(metrics))
        assert main(["synthesize", "--problem", "dp",
                     "--interconnect", "fig1", "--n", "6"]) == 0
        capsys.readouterr()
        assert len(list(metrics.glob("run-*.json"))) == 1


class TestSweepManifest:
    def test_manifest_resume_via_cli(self, tmp_path, capsys):
        manifest = tmp_path / "sweep.manifest"
        argv = ["sweep", "--problems", "dp", "--interconnects", "fig1,fig2",
                "--n", "5,6", "--serial", "--no-cache", "--no-cross-check",
                "--manifest", str(manifest)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "4/4 journaled, 0 restored this run" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "4/4 journaled, 4 restored this run" in warm

        def tables(text):
            return [ln for ln in text.splitlines()
                    if ln.startswith(("|", "+"))]

        assert tables(warm) == tables(cold)


class TestCacheCommand:
    def _populate(self, tmp_path):
        assert main(["sweep", "--problems", "dp", "--interconnects",
                     "fig1,fig2", "--n", "5", "--serial",
                     "--no-cross-check", "--cache-dir", str(tmp_path)]) == 0

    def test_info(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2 (2 ok, 0 negative)" in out
        assert "completion" in out            # the cache-wide Pareto table

    def test_prune_needs_a_limit(self, tmp_path):
        with pytest.raises(SystemExit, match="max-age-days"):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])

    def test_prune_by_age(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-age-days", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned 2/2 entries" in out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_migrate_and_clear(self, tmp_path, capsys):
        self._populate(tmp_path)
        # Flatten the shards to simulate a legacy cache, then migrate.
        for path in list(tmp_path.glob("??/??/*.json")):
            path.rename(tmp_path / path.name)
        capsys.readouterr()
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        assert "migrated 2 flat entries" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.json"))
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
