"""End-to-end synthesis: the paper's designs, exactly."""

import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.core import synthesize, synthesize_uniform, verify_design
from repro.problems import (
    convolution_backward,
    convolution_inputs,
    dp_inputs,
    dp_system,
)


class TestFig1Design:
    def test_time_functions(self, dp_design_fig1):
        d = dp_design_fig1
        assert d.schedules["m1"].coeffs == (-1, 2, -1)   # λ
        assert d.schedules["m2"].coeffs == (-2, 1, 1)    # μ
        assert d.schedules["comb"].coeffs == (-2, 2)     # σ

    def test_space_maps_are_j_i(self, dp_design_fig1):
        d = dp_design_fig1
        for name in ("m1", "m2"):
            assert d.space_maps[name].matrix == ((0, 1, 0), (1, 0, 0))
        assert d.space_maps["comb"].matrix == ((0, 1), (1, 0))

    def test_cell_count(self, dp_design_fig1, dp_params):
        n = dp_params["n"]
        # Cells (j, i) for j - i >= 2: C(n-1, 2).
        assert dp_design_fig1.cell_count == (n - 1) * (n - 2) // 2

    def test_completion_linear_in_n(self, dp_design_fig1, dp_params):
        n = dp_params["n"]
        assert dp_design_fig1.completion_time == 2 * n - 5

    def test_verification(self, dp_design_fig1, dp_host_inputs):
        report = verify_design(dp_design_fig1, dp_host_inputs)
        assert report.ok, report.failures


class TestFig2Design:
    def test_space_maps_match_paper(self, dp_design_fig2):
        d = dp_design_fig2
        assert d.space_maps["m1"].matrix == ((0, 0, 1), (1, 0, 0))
        assert d.space_maps["m2"].matrix == ((1, 1, -1), (1, 0, 0))
        assert d.space_maps["comb"].matrix == ((1, 0), (1, 0))
        assert d.space_maps["comb"].offset == (1, 0)

    def test_fewer_cells_than_fig1(self, dp_design_fig1, dp_design_fig2):
        assert dp_design_fig2.cell_count < dp_design_fig1.cell_count

    def test_flow_directions_match_paper(self, dp_design_fig2):
        """Section VI: c' left, a' stays, b' up; a'' right, b'' up-left
        diagonal, c'' left."""
        flows = dp_design_fig2.flows()
        assert flows["m1"]["cp"].direction == (-1, 0)
        assert flows["m1"]["ap"].stays
        assert flows["m1"]["bp"].direction == (0, -1)
        assert flows["m2"]["app"].direction == (1, 0)
        assert flows["m2"]["bpp"].direction == (-1, -1)
        assert flows["m2"]["cpp"].direction == (-1, 0)

    def test_verification(self, dp_design_fig2, dp_host_inputs):
        report = verify_design(dp_design_fig2, dp_host_inputs)
        assert report.ok, report.failures

    def test_same_completion_time_as_fig1(self, dp_design_fig1,
                                          dp_design_fig2):
        assert dp_design_fig2.completion_time == \
            dp_design_fig1.completion_time


class TestConvolutionDesigns:
    def test_w2_schedule_and_map(self, conv_design_backward):
        d = conv_design_backward
        assert d.schedules["conv"].coeffs == (1, 1)
        assert d.space_maps["conv"].matrix == ((0, 1),)

    def test_w2_cells_equal_s(self, conv_design_backward, conv_params):
        assert conv_design_backward.cell_count == conv_params["s"]

    def test_verification(self, conv_design_backward, conv_params):
        x = list(range(1, conv_params["n"] + 1))
        w = [2, -1, 1, 3]
        report = verify_design(conv_design_backward,
                               convolution_inputs(x, w))
        assert report.ok, report.failures

    def test_uniform_wrapper_rejects_multimodule(self, dp_sys, dp_params):
        with pytest.raises(ValueError):
            synthesize_uniform(dp_sys, dp_params, FIG1_UNIDIRECTIONAL)

    def test_uniform_wrapper_works(self, conv_params):
        d = synthesize_uniform(convolution_backward(), conv_params,
                               LINEAR_BIDIR)
        assert d.schedules["conv"].coeffs == (1, 1)


class TestDesignObject:
    def test_summary_mentions_everything(self, dp_design_fig2):
        text = dp_design_fig2.summary()
        assert "m1" in text and "comb" in text and "cells" in text

    def test_region_and_array(self, dp_design_fig2):
        arr = dp_design_fig2.array()
        assert arr.cell_count == dp_design_fig2.cell_count

    def test_time_normalised_to_zero(self, dp_design_fig1):
        lo, hi = dp_design_fig1.time_range()
        assert lo == 0
