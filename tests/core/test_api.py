"""The consolidated repro.api surface, options object and error hierarchy."""

import pytest

from repro import api
from repro.arrays import FIG2_EXTENDED
from repro.core import SynthesisOptions, synthesize
from repro.core.errors import (
    NoScheduleExists,
    NoSpaceMapExists,
    SynthesisError,
)
from repro.problems import dp_system


class TestApiSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_blessed_entry_points(self):
        assert api.synthesize is synthesize
        assert api.SynthesisOptions is SynthesisOptions
        assert callable(api.run_sweep)
        assert callable(api.cache_key)
        assert "dp" in api.PROBLEM_BUILDERS

    def test_resolve_interconnect_aliases(self):
        assert api.resolve_interconnect("fig2") is FIG2_EXTENDED
        assert api.resolve_interconnect(FIG2_EXTENDED) is FIG2_EXTENDED
        with pytest.raises(KeyError, match="unknown interconnect"):
            api.resolve_interconnect("warp-drive")

    def test_top_level_reexports(self):
        import repro

        assert repro.SynthesisOptions is SynthesisOptions
        assert repro.SynthesisError is SynthesisError
        assert repro.run_sweep is api.run_sweep


class TestSynthesisOptions:
    def test_legacy_kwargs_rejected_with_migration_hint(self):
        # The loose kwargs spent a release as DeprecationWarning; they now
        # fail fast, and the message must name the replacement spelling.
        with pytest.raises(TypeError,
                           match=r"SynthesisOptions\(time_bound=3\)"):
            synthesize(dp_system(), {"n": 6}, FIG2_EXTENDED, time_bound=3)

    def test_options_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="legacy kwargs"):
            synthesize(dp_system(), {"n": 6}, FIG2_EXTENDED,
                       SynthesisOptions(), time_bound=3)

    def test_frozen_and_hashable(self):
        opts = SynthesisOptions(schedule_offsets=[0, 1])
        assert opts.schedule_offsets == (0, 1)   # sequences normalise
        assert hash(opts) == hash(SynthesisOptions(schedule_offsets=(0, 1)))
        with pytest.raises(AttributeError):
            opts.time_bound = 5

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            SynthesisOptions(time_bound=0)

    def test_engine_validated(self):
        for engine in ("compiled", "interpreted", "vector"):
            assert SynthesisOptions(engine=engine).engine == engine
        with pytest.raises(ValueError, match="unknown engine"):
            SynthesisOptions(engine="quantum")

    def test_engine_not_in_cache_key(self):
        # Execution strategy must not split the design cache.
        assert SynthesisOptions(engine="vector").to_dict() == \
            SynthesisOptions(engine="compiled").to_dict()

    def test_dict_round_trip(self):
        opts = SynthesisOptions(time_bound=4, space_bound=2,
                                schedule_offsets=(0, 1), space_offsets=None)
        assert SynthesisOptions.from_dict(opts.to_dict()) == opts


class TestErrorHierarchy:
    def test_concrete_errors_share_the_base(self):
        assert issubclass(NoScheduleExists, SynthesisError)
        assert issubclass(NoSpaceMapExists, SynthesisError)

    def test_carries_module_and_bounds(self):
        err = NoScheduleExists("no schedule", module="m1", bounds=3)
        assert err.module == "m1" and err.bounds == 3

    def test_raised_errors_are_catchable_as_base(self):
        from repro.arrays import LINEAR_BIDIR

        # dp needs a diagonal link the linear patterns lack.
        with pytest.raises(SynthesisError) as info:
            synthesize(dp_system(), {"n": 6}, LINEAR_BIDIR)
        assert info.value.bounds is not None

    def test_blessed_location_matches_util(self):
        from repro.util.errors import SynthesisError as util_base

        assert SynthesisError is util_base


class TestSolverSurface:
    def test_valid_candidates_public(self):
        from repro.schedule import valid_candidates
        from repro.schedule.solver import _valid_candidates

        assert valid_candidates is _valid_candidates
