"""Report rendering: tables, figures, gantt charts, action profiles."""

import pytest

from repro.report import (
    action_profile,
    cell_actions,
    design_table,
    flow_table,
    module_table,
    render_array,
    render_cell_actions,
    render_gantt,
)


class TestTables:
    def test_flow_table(self, conv_design_backward):
        text = flow_table(conv_design_backward.flows()["conv"], "flows")
        assert "stays" in text and "w" in text and "flows" in text

    def test_module_table(self, dp_design_fig1):
        text = module_table(dp_design_fig1, "fig1")
        assert "m1" in text and "m2" in text and "comb" in text
        assert "completion" in text

    def test_design_table(self, conv_backward_sys, conv_params):
        from repro.arrays import LINEAR_BIDIR
        from repro.core import explore_uniform

        designs = explore_uniform(conv_backward_sys, conv_params,
                                  LINEAR_BIDIR, time_bound=1)
        entries = [("D%d" % i, d) for i, d in enumerate(designs[:3])]
        text = design_table(entries, "designs")
        assert "makespan" in text and "D0" in text

    def test_design_table_empty(self):
        assert "(no designs)" in design_table([], "none")


class TestFigures:
    def test_render_array_2d(self, dp_design_fig2):
        text = render_array(dp_design_fig2)
        assert "[" in text
        # Figure 2's staircase: both chain markers appear.
        assert "1" in text and "2" in text

    def test_render_array_1d(self, conv_design_backward):
        text = render_array(conv_design_backward)
        assert "[" in text

    def test_render_gantt(self, dp_design_fig1):
        text = render_gantt(dp_design_fig1, "m1", max_rows=5)
        assert "*" in text and "module m1" in text


class TestActions:
    def test_profile_fig2_nonuniform(self, dp_design_fig2):
        profile = action_profile(dp_design_fig2)
        assert profile["cells"] == dp_design_fig2.cell_count
        # Most cells serve both chains; compound actions exist.
        assert profile["multi_module_cells"] > 0
        assert profile["compound_cycles"] > 0
        assert profile["max_actions_per_cycle"] == 2

    def test_profile_convolution_uniform(self, conv_design_backward):
        profile = action_profile(conv_design_backward)
        # A single-module design has no compound actions.
        assert profile["multi_module_cells"] == 0
        assert profile["max_actions_per_cycle"] == 1

    def test_mirrored_pairs_coscheduled(self, dp_design_fig2):
        """Figure 2: computations (i,j,k) of m1 and (i,j,i+j-k) of m2 share
        cell and cycle — verify on the actual tables."""
        table = cell_actions(dp_design_fig2)
        found = 0
        for cell, actions in table.items():
            by_cycle = {}
            for t, module, point in actions:
                by_cycle.setdefault(t, []).append((module, point))
            for t, entries in by_cycle.items():
                mods = dict(entries)
                if "m1" in mods and "m2" in mods:
                    (i1, j1, k1) = mods["m1"]
                    (i2, j2, k2) = mods["m2"]
                    assert (i1, j1) == (i2, j2)
                    assert k2 == i1 + j1 - k1
                    found += 1
        assert found > 0

    def test_render_cell_actions(self, dp_design_fig2):
        cell = next(iter(cell_actions(dp_design_fig2)))
        text = render_cell_actions(dp_design_fig2, cell, max_rows=4)
        assert "t=" in text

    def test_render_idle_cell(self, dp_design_fig2):
        assert "idle" in render_cell_actions(dp_design_fig2, (999, 999))
