"""The default pass pipeline must reproduce the historical one-shot lowering
byte for byte.

``_legacy_synthesize`` below is the pre-pipeline ``core.nonuniform``
implementation, vendored verbatim: the acceptance oracle.  For every
problem the new pipeline must produce the identical design dict *and*
the identical canonical compiled event stream.
"""

from typing import Sequence

import pytest

from repro.arrays.interconnect import resolve_interconnect
from repro.core.design import Design
from repro.core.globals import link_constraints
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.deps.extract import system_dependence_matrices
from repro.ir.evaluate import structural_trace, trace_execution
from repro.machine.errors import MachineError
from repro.machine.microcode import compile_design
from repro.machine.simulator import run
from repro.obs.events import EventLog, canonical_order
from repro.problems import (
    convolution_backward,
    dp_system,
    matmul_system,
    random_inputs,
)
from repro.schedule.multimodule import (
    ModuleSchedulingProblem,
    normalise_start,
    solve_multimodule,
)
from repro.schedule.solver import NoScheduleExists
from repro.space.multimodule import (
    ModuleSpaceProblem,
    NoSpaceMapExists,
    solve_multimodule_space,
)


def _legacy_synthesize(system, params, interconnect,
                       opts: SynthesisOptions) -> Design:
    """The pre-pipeline one-shot lowering, vendored as the oracle."""
    time_bound = opts.time_bound
    space_bound = opts.space_bound
    schedule_offsets = opts.schedule_offsets
    space_offsets = opts.space_offsets
    params = dict(params)
    deps = system_dependence_matrices(system)
    constraints = link_constraints(system, params)

    points = {}
    problems = []
    for name, module in system.modules.items():
        arr = module.domain.points_array(params)
        points[name] = arr
        problems.append(ModuleSchedulingProblem(name, module.dims,
                                                deps[name], arr))

    try:
        time_solution = solve_multimodule(problems, constraints,
                                          bound=time_bound,
                                          offsets=schedule_offsets)
    except NoScheduleExists:
        if tuple(schedule_offsets) == (0,):
            time_solution = solve_multimodule(
                problems, constraints, bound=time_bound,
                offsets=range(-time_bound, time_bound + 1))
        else:
            raise
    schedules = normalise_start(time_solution.schedules, problems, start=0)

    decomposer = interconnect.decomposer()

    def offsets_for(name: str, plan: str) -> Sequence[int]:
        if space_offsets is not None:
            return space_offsets
        if plan == "plain":
            return (0,)
        module = system.modules[name]
        if len(module.dims) <= interconnect.label_dim:
            return (-1, 0, 1)
        return (0,)

    plans = ["plain"] if space_offsets is not None else ["plain", "translated"]
    best = None
    last_error = None
    check_trace = None

    def lowering_failure(candidate):
        nonlocal check_trace
        if check_trace is None:
            check_trace = structural_trace(system, params)
        try:
            compile_design(check_trace, schedules, candidate.maps, decomposer)
        except MachineError as exc:
            return NoSpaceMapExists(
                f"space solution does not lower: {type(exc).__name__}: {exc}")
        return None

    for plan in plans:
        space_problems = [
            ModuleSpaceProblem(name, system.modules[name].dims, deps[name],
                               points[name], schedules[name],
                               bound=space_bound,
                               offsets=offsets_for(name, plan))
            for name in system.modules]
        try:
            candidate = solve_multimodule_space(
                space_problems, constraints, decomposer,
                interconnect.label_dim)
        except NoSpaceMapExists as exc:
            last_error = exc
            continue
        failure = lowering_failure(candidate)
        if failure is not None:
            last_error = failure
            continue
        if best is None or candidate.total_cells < best.total_cells:
            best = candidate
    if best is None:
        space_problems = [
            ModuleSpaceProblem(name, system.modules[name].dims, deps[name],
                               points[name], schedules[name],
                               bound=space_bound, offsets=(-1, 0, 1))
            for name in system.modules]
        try:
            best = solve_multimodule_space(
                space_problems, constraints, decomposer,
                interconnect.label_dim)
        except NoSpaceMapExists as exc:
            error = last_error if last_error is not None else exc
            raise error from exc
        failure = lowering_failure(best)
        if failure is not None:
            raise failure

    return Design(system=system, params=params, interconnect=interconnect,
                  schedules=schedules, space_maps=best.maps,
                  constraints=constraints)


def _compiled_stream(design, inputs) -> str:
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    log = EventLog()
    run(mc, trace, inputs, strict=True, engine="compiled", sink=log)
    log.events = canonical_order(log.events)
    return log.to_jsonl()


CASES = (
    ("dp", dp_system, {"n": 6}, "fig1"),
    ("conv-backward", convolution_backward, {"n": 6, "s": 3}, "linear"),
    ("matmul", matmul_system, {"n": 3}, "mesh"),
)


@pytest.mark.parametrize("problem,builder,params,ic_name",
                         CASES, ids=[c[0] for c in CASES])
class TestPipelineMatchesLegacyOneShot:
    def test_design_dict_identical(self, problem, builder, params, ic_name):
        system, ic = builder(), resolve_interconnect(ic_name)
        opts = SynthesisOptions()
        legacy = _legacy_synthesize(system, params, ic, opts)
        piped = synthesize(system, params, ic, opts)
        assert piped.to_dict() == legacy.to_dict()

    def test_compiled_event_stream_identical(self, problem, builder, params,
                                             ic_name):
        system, ic = builder(), resolve_interconnect(ic_name)
        opts = SynthesisOptions()
        inputs = random_inputs(problem, params, seed=0)
        legacy = _legacy_synthesize(system, params, ic, opts)
        piped = synthesize(system, params, ic, opts)
        assert _compiled_stream(piped, inputs) == \
            _compiled_stream(legacy, inputs)
