"""The observability layer: span tracer, run records, trajectory gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    RunRecord,
    Span,
    Tracer,
    list_run_records,
    load_run_record,
    metrics_dir,
    render_spans,
    write_run_record,
)
from repro.util.instrument import STATS, Instrumentation


class FakeClock:
    """A deterministic clock advanced explicitly by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


class TestTracerFlatView:
    def test_count_and_snapshot_sorted(self):
        tr = Tracer()
        tr.count("b.two")
        tr.count("a.one", 3)
        tr.count("b.two")
        snap = tr.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        assert snap["counters"] == {"a.one": 3, "b.two": 2}
        # The snapshot must survive a JSON round-trip bit-for-bit.
        assert json.loads(json.dumps(snap)) == snap

    def test_shim_is_the_tracer(self):
        assert Instrumentation is Tracer
        assert isinstance(STATS, Tracer)

    def test_stage_alias_times_flat(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.stage("solve"):
            clock.tick(0.25)
        assert tr.timers["solve"] == pytest.approx(0.25)

    def test_disabled_span_yields_none(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("quiet") as node:
            assert node is None
        assert tr.spans() == []
        assert "quiet" in tr.timers


class TestTracerReentrancy:
    def test_recursive_stage_charges_outermost_only(self):
        """Regression: a stage re-entering itself used to double-count the
        flat timer (inner frame charged on top of the outer's elapsed)."""
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.stage("verify.compile"):
            clock.tick(1.0)
            with tr.stage("verify.compile"):
                clock.tick(2.0)
            clock.tick(1.0)
        assert tr.timers["verify.compile"] == pytest.approx(4.0)

    def test_distinct_names_both_charge(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.stage("outer"):
            clock.tick(1.0)
            with tr.stage("inner"):
                clock.tick(2.0)
        assert tr.timers["outer"] == pytest.approx(3.0)
        assert tr.timers["inner"] == pytest.approx(2.0)

    def test_sequential_same_name_accumulates(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        for _ in range(3):
            with tr.stage("step"):
                clock.tick(0.5)
        assert tr.timers["step"] == pytest.approx(1.5)

    def test_reentrant_tree_records_every_frame(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        tr.enable()
        with tr.span("stage"):
            clock.tick(1.0)
            with tr.span("stage"):
                clock.tick(2.0)
        roots = tr.spans()
        assert len(roots) == 1
        assert roots[0].duration == pytest.approx(3.0)
        assert len(roots[0].children) == 1
        assert roots[0].children[0].duration == pytest.approx(2.0)
        # ... while the flat timer still shows the outer frame only.
        assert tr.timers["stage"] == pytest.approx(3.0)


class TestSpanTree:
    def test_nesting_counters_and_attrs(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        tr.enable()
        with tr.span("sweep", grid="2x2") as root:
            tr.count("jobs")
            with tr.span("job") as child:
                tr.count("solves", 2)
                tr.annotate(label="dp/fig1")
            clock.tick(1.0)
        assert root.attrs == {"grid": "2x2"}
        assert root.counters == {"jobs": 1}
        assert child.counters == {"solves": 2}
        assert child.attrs == {"label": "dp/fig1"}
        assert root.total("solves") == 2      # subtree-summed
        assert tr.counters == {"jobs": 1, "solves": 2}

    def test_to_dict_round_trip(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        tr.enable()
        with tr.span("a", k="v"):
            tr.count("c")
            with tr.span("b"):
                clock.tick(0.5)
        data = tr.span_dicts()[0]
        assert json.loads(json.dumps(data)) == data
        clone = Span.from_dict(data)
        assert clone.name == "a"
        assert clone.attrs == {"k": "v"}
        assert clone.counters == {"c": 1}
        assert [c.name for c in clone.children] == ["b"]
        assert clone.children[0].duration == pytest.approx(0.5, abs=1e-3)

    def test_graft_and_discard(self):
        tr = Tracer(clock=FakeClock())
        tr.enable()
        shipped = {"name": "worker-job", "duration_ms": 12.0,
                   "counters": {"solves": 1}}
        with tr.span("sweep") as root:
            tr.graft(shipped)
        assert [c.name for c in root.children] == ["worker-job"]
        assert root.total("solves") == 1
        tr.discard(root)
        assert tr.spans() == []

    def test_reset_clears_everything(self):
        tr = Tracer(clock=FakeClock())
        tr.enable()
        with tr.span("x"):
            tr.count("c")
        tr.reset()
        assert tr.counters == {} and tr.timers == {}
        assert tr.spans() == []
        assert tr.enabled        # the flag survives a reset

    def test_render_spans(self):
        tr = Tracer(clock=FakeClock())
        tr.enable()
        with tr.span("root", label="dp"):
            tr.count("n", 2)
            with tr.span("leaf"):
                pass
        text = render_spans(tr.spans())
        assert "root" in text and "leaf" in text
        assert "n=2" in text and "label=dp" in text
        assert render_spans([]) == "(no spans recorded)"


class TestRunRecord:
    def test_round_trip(self, tmp_path):
        record = RunRecord(command="trace", argv=["--n", "7"],
                           started_at="2026-08-06T00:00:00Z", wall_time=1.5,
                           git_sha="abc123",
                           stats={"counters": {"x": 1}, "timers": {}},
                           spans=[{"name": "s", "duration_ms": 2.0}],
                           machine_stats={"cycles": 19},
                           extra={"note": "hi"})
        path = write_run_record(record, tmp_path)
        assert path is not None and path.is_file()
        loaded = load_run_record(path)
        assert loaded == record
        assert list_run_records(tmp_path) == [path]

    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_DIR", raising=False)
        assert metrics_dir() is None
        assert write_run_record(RunRecord(command="x")) is None

    def test_env_var_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path / "m"))
        assert metrics_dir() == tmp_path / "m"
        path = write_run_record(RunRecord(command="sweep"))
        assert path is not None and path.parent == tmp_path / "m"

    def test_unique_names_within_process(self, tmp_path):
        for _ in range(3):
            write_run_record(RunRecord(command="trace"), tmp_path)
        assert len(list_run_records(tmp_path)) == 3

    def test_format_version_rejected(self):
        with pytest.raises(ValueError, match="format"):
            RunRecord.from_dict({"format": 999, "command": "x"})

    def test_render_mentions_everything(self):
        record = RunRecord(command="trace", argv=["--n", "7"],
                           git_sha="abc123",
                           stats={"counters": {"cache.hits": 4},
                                  "timers": {"verify.machine": 0.25}},
                           spans=[{"name": "sweep.job", "duration_ms": 9.0}],
                           machine_stats={"cycles": 19})
        text = record.render()
        for needle in ("trace", "--n 7", "abc123", "cache.hits",
                       "verify.machine", "250.0 ms", "cycles", "sweep.job"):
            assert needle in text


class TestTrajectoryGate:
    SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" \
        / "check_trajectory.py"

    def _run(self, root):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), str(root)],
            capture_output=True, text=True)

    def _write(self, root, entries):
        (root / "BENCH_machine_compiled.json").write_text(
            json.dumps(entries), encoding="utf-8")

    def test_empty_dir_passes(self, tmp_path):
        assert self._run(tmp_path).returncode == 0

    def test_single_entry_seeds(self, tmp_path):
        self._write(tmp_path, [{"n": 8, "compiled_ms": 10.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        assert "seeded baseline" in proc.stdout

    def test_within_bounds_passes(self, tmp_path):
        self._write(tmp_path, [{"n": 8, "compiled_ms": 10.0},
                               {"n": 8, "compiled_ms": 15.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        assert "OK" in proc.stdout

    def test_regression_fails(self, tmp_path):
        self._write(tmp_path, [{"n": 8, "compiled_ms": 10.0},
                               {"n": 8, "compiled_ms": 25.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "REGRESSED" in proc.stdout

    def test_different_context_not_compared(self, tmp_path):
        """A CI smoke run at small n must not gate against a local big-n
        baseline — the workload context (here ``n``) has to match."""
        self._write(tmp_path, [{"n": 18, "compiled_ms": 10.0},
                               {"n": 8, "compiled_ms": 50.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        assert "seeded baseline" in proc.stdout

    def test_empty_file_seeds_instead_of_failing(self, tmp_path):
        # A fresh checkout ships empty trajectories; the first pinned run
        # must seed them, not crash the gate.
        (tmp_path / "BENCH_machine_compiled.json").write_text(
            "", encoding="utf-8")
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        assert "seeds it" in proc.stdout

    def test_empty_list_seeds_instead_of_failing(self, tmp_path):
        self._write(tmp_path, [])
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        assert "seeds it" in proc.stdout

    def test_corrupt_file_still_fails(self, tmp_path):
        (tmp_path / "BENCH_machine_compiled.json").write_text(
            "{not json", encoding="utf-8")
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "unreadable" in proc.stdout

    def test_native_trajectory_gated(self, tmp_path):
        (tmp_path / "BENCH_machine_native.json").write_text(
            json.dumps([{"n": 8, "native_ms": 1.0},
                        {"n": 8, "native_ms": 9.0}]), encoding="utf-8")
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "machine_native" in proc.stdout

    def test_passing_gate_prints_delta_table(self, tmp_path):
        self._write(tmp_path, [{"n": 8, "compiled_ms": 10.0},
                               {"n": 8, "compiled_ms": 12.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        assert "per-pin trajectory deltas" in proc.stdout
        assert "+20.0%" in proc.stdout

    def test_delta_table_dash_without_comparable_prior(self, tmp_path):
        self._write(tmp_path, [{"n": 8, "compiled_ms": 10.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 0
        # one entry: newest value shown, previous and delta are "-"
        assert "machine_compiled" in proc.stdout
        assert "-" in proc.stdout

    def test_failing_gate_skips_delta_table(self, tmp_path):
        self._write(tmp_path, [{"n": 8, "compiled_ms": 10.0},
                               {"n": 8, "compiled_ms": 25.0}])
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "per-pin trajectory deltas" not in proc.stdout


class TestGitSha:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self, monkeypatch):
        from repro.obs import metrics
        monkeypatch.setattr(metrics, "_git_sha_cache", False)
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        monkeypatch.delenv("GITHUB_SHA", raising=False)

    def test_env_override_wins_and_is_not_memoized(self, monkeypatch):
        from repro.obs import metrics
        calls = []
        monkeypatch.setattr(metrics, "_resolve_git_sha",
                            lambda: calls.append(1) or "resolved")
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        assert metrics.git_sha() == "deadbeef"
        monkeypatch.setenv("REPRO_GIT_SHA", "cafef00d")
        assert metrics.git_sha() == "cafef00d"
        assert not calls   # override never touches the subprocess path

    def test_github_sha_fallback(self, monkeypatch):
        from repro.obs import metrics
        monkeypatch.setenv("GITHUB_SHA", "ci-sha")
        assert metrics.git_sha() == "ci-sha"

    def test_subprocess_resolution_memoized_once(self, monkeypatch):
        from repro.obs import metrics
        calls = []
        monkeypatch.setattr(metrics, "_resolve_git_sha",
                            lambda: calls.append(1) or "abc123")
        assert metrics.git_sha() == "abc123"
        assert metrics.git_sha() == "abc123"
        assert metrics.git_sha() == "abc123"
        assert len(calls) == 1

    def test_none_result_is_memoized_too(self, monkeypatch):
        """Outside a checkout the failed resolution must also be cached —
        a sweep must not retry git once per record write."""
        from repro.obs import metrics
        calls = []
        monkeypatch.setattr(metrics, "_resolve_git_sha",
                            lambda: calls.append(1) and None)
        assert metrics.git_sha() is None
        assert metrics.git_sha() is None
        assert len(calls) == 1
