"""The work-stealing sweep scheduler: chunk planning, dealing, stealing,
and the engine-aware stats dedup key."""

import pytest

from repro.core import SchedulerConfig, SweepSpec, SynthesisOptions, run_sweep
from repro.core.scheduler import (
    ChunkPlanner,
    WorkStealingScheduler,
    job_class,
)
from repro.obs.telemetry import MetricsRegistry
from repro.report import sweep_table
from repro.util.instrument import STATS

GRID = SweepSpec(
    problems=("dp", "conv-backward"),
    interconnects=("fig1", "linear"),
    param_grid=({"n": 5, "s": 3}, {"n": 6, "s": 3}, {"n": 7, "s": 3}),
)


class TestChunkPlanner:
    def test_defaults_to_probe_chunks_without_telemetry(self):
        planner = ChunkPlanner(registry=MetricsRegistry())
        # default_job_s == target_chunk_s, so a cold class probes 1 at
        # a time until real latencies arrive.
        assert planner.chunk_size("dp/compiled") == 1

    def test_grows_chunks_for_fast_classes(self):
        reg = MetricsRegistry()
        planner = ChunkPlanner(registry=reg)
        for _ in range(20):
            planner.observe("dp/compiled", 0.005)
        assert planner.chunk_size("dp/compiled") == \
            int(0.25 / planner.estimated_job_s("dp/compiled"))
        assert planner.chunk_size("dp/compiled") >= 40

    def test_clamps_to_max_chunk(self):
        reg = MetricsRegistry()
        planner = ChunkPlanner(SchedulerConfig(max_chunk=8), registry=reg)
        for _ in range(20):
            planner.observe("fast/vector", 1e-5)
        assert planner.chunk_size("fast/vector") == 8

    def test_clamps_to_min_chunk_for_slow_classes(self):
        reg = MetricsRegistry()
        planner = ChunkPlanner(SchedulerConfig(min_chunk=2), registry=reg)
        for _ in range(5):
            planner.observe("slow/compiled", 60.0)
        assert planner.chunk_size("slow/compiled") == 2

    def test_estimate_isolated_per_class(self):
        reg = MetricsRegistry()
        planner = ChunkPlanner(registry=reg)
        planner.observe("a/compiled", 0.001)
        assert planner.estimated_job_s("b/compiled") == \
            planner.config.default_job_s


class TestDealingAndStealing:
    def _scheduler(self, jobs, nworkers, config=None):
        return WorkStealingScheduler(jobs, nworkers, None, False,
                                     config=config)

    def test_deques_hold_whole_classes(self):
        jobs = GRID.jobs()
        sched = self._scheduler(jobs, 3)
        deques = sched._deal_deques()
        assert sum(len(dq) for dq in deques) == len(jobs)
        for dq in deques:
            # A class never splits across deques at deal time.
            classes = [job_class(jobs[i]) for i in dq]
            for cls in set(classes):
                everywhere = [i for i, job in enumerate(jobs)
                              if job_class(job) == cls]
                assert [i for i in dq
                        if job_class(jobs[i]) == cls] == everywhere

    def test_chunks_are_homogeneous(self):
        jobs = GRID.jobs()
        sched = self._scheduler(jobs, 2)
        deques = sched._deal_deques()
        seen = []
        while True:
            chunk = sched._next_chunk(0, deques)
            if not chunk:
                break
            assert len({job_class(jobs[i]) for i in chunk}) == 1
            seen.extend(chunk)
        assert sorted(seen) == list(range(len(jobs)))

    def test_idle_worker_steals_from_most_loaded(self):
        jobs = GRID.jobs()
        sched = self._scheduler(jobs, 2)
        deques = sched._deal_deques()
        # Drain worker 0's own deque, then its next chunk must come off
        # worker 1's tail.
        while deques[0]:
            sched._next_chunk(0, deques)
        before = STATS.metrics.counter("sweep.steals").value
        victim_tail = deques[1][-1]
        chunk = sched._next_chunk(0, deques)
        assert victim_tail in chunk
        assert STATS.metrics.counter("sweep.steals").value == before + 1

    def test_steal_preserves_homogeneity_at_the_tail(self):
        jobs = GRID.jobs()
        sched = self._scheduler(jobs, 1)
        deques = sched._deal_deques()
        tail_cls = job_class(jobs[deques[0][-1]])
        chunk = sched._cut(deques[0], from_head=False)
        assert all(job_class(jobs[i]) == tail_cls for i in chunk)
        # Tail cuts come back in original deque order.
        assert chunk == sorted(chunk)


class TestSchedulerExecution:
    def test_matches_serial_results(self, tmp_path):
        serial = run_sweep(GRID, workers=0, use_cache=False,
                           cross_check=False)
        pooled = run_sweep(GRID, workers=3, use_cache=False,
                           cross_check=False)
        assert sweep_table(pooled.results) == sweep_table(serial.results)

    def test_custom_config_reaches_the_planner(self, tmp_path):
        cfg = SchedulerConfig(target_chunk_s=1.0, max_chunk=4)
        jobs = GRID.jobs()
        sched = WorkStealingScheduler(jobs, 2, None, False, config=cfg)
        assert sched.planner.config.max_chunk == 4
        report = run_sweep(GRID, workers=2, use_cache=False,
                           cross_check=False, scheduler=cfg)
        assert len(report.results) == len(jobs)

    def test_counts_chunks(self):
        before = STATS.metrics.counter("sweep.chunks").value
        run_sweep(GRID, workers=2, use_cache=False, cross_check=False)
        assert STATS.metrics.counter("sweep.chunks").value > before


class TestEngineStatsDedup:
    def test_same_params_two_engines_merge_twice(self):
        """Regression: the cache key excludes the engine, so two jobs
        differing only in engine share it — the stats dedup key must
        still treat them as distinct jobs."""
        compiled = SweepSpec(problems=("dp",), interconnects=("fig1",),
                             param_grid=({"n": 5},),
                             options=SynthesisOptions(engine="compiled"),
                             verify_seeds=2)
        vector = SweepSpec(problems=("dp",), interconnects=("fig1",),
                           param_grid=({"n": 5},),
                           options=SynthesisOptions(engine="vector"),
                           verify_seeds=2)
        jobs = compiled.jobs() + vector.jobs()
        sched = WorkStealingScheduler(jobs, 2, None, False)
        results = sched.run()
        assert len(results) == 2
        assert results[0].key == results[1].key
        keys = {sched._stats_key(i, r) for i, r in enumerate(results)}
        assert len(keys) == 2               # engine kept them distinct
        assert len(sched._merged) == 2      # both deltas merged, no dedup
