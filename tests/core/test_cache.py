"""The persistent design cache: payload round-trips and key stability."""

import json
import subprocess
import sys

import pytest

from repro.core import (
    Design,
    DesignCache,
    SynthesisOptions,
    cache_key,
    link_constraints,
    synthesize,
)
from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.problems import convolution_backward, dp_system
from repro.report import render_array


class TestDesignRoundTrip:
    def test_dp_round_trip_renders_identically(self, dp_design_fig2):
        payload = json.loads(json.dumps(dp_design_fig2.to_dict()))
        rebuilt = Design.from_dict(payload, dp_design_fig2.system)
        assert render_array(rebuilt) == render_array(dp_design_fig2)

    def test_conv_backward_round_trip_renders_identically(
            self, conv_design_backward):
        payload = json.loads(json.dumps(conv_design_backward.to_dict()))
        rebuilt = Design.from_dict(payload, conv_design_backward.system)
        assert render_array(rebuilt) == render_array(conv_design_backward)
        assert rebuilt.cell_count == conv_design_backward.cell_count
        assert rebuilt.completion_time == conv_design_backward.completion_time


class TestCacheKey:
    def test_stable_across_processes(self):
        """The key must be value-based: a fresh interpreter recomputes
        the identical SHA-256 for the same job."""
        parent = cache_key(dp_system(), {"n": 8}, FIG2_EXTENDED,
                           SynthesisOptions())
        script = (
            "from repro.core import cache_key, SynthesisOptions\n"
            "from repro.arrays import FIG2_EXTENDED\n"
            "from repro.problems import dp_system\n"
            "print(cache_key(dp_system(), {'n': 8}, FIG2_EXTENDED,"
            " SynthesisOptions()))\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert child == parent

    def test_stable_within_process(self):
        a = cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        b = cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        assert a == b

    def test_sensitive_to_link_min_gap(self):
        # Regression: LinkRule.__repr__ omitted min_gap, so two systems
        # differing only in a link's timing slack fingerprinted (and cache-
        # keyed) identically — a cached infeasibility verdict for one could
        # poison the other.  min_gap=0 (A5's intra-cycle read) vs the strict
        # default is exactly the feasibility-affecting bit.
        import dataclasses

        from repro.core import system_fingerprint
        from repro.ir import Equation, LinkRule, Module, RecurrenceSystem

        def with_min_gap(gap):
            base = dp_system()
            modules = []
            for m in base.modules.values():
                equations = []
                for eqn in m.equations.values():
                    rules = tuple(
                        dataclasses.replace(r, min_gap=gap)
                        if isinstance(r, LinkRule) and r.label == "A5" else r
                        for r in eqn.rules)
                    equations.append(Equation(eqn.var, rules, eqn.where))
                modules.append(Module(m.name, m.dims, m.domain, equations))
            return RecurrenceSystem(base.name, modules, base.outputs,
                                    base.input_names, base.params)

        strict, relaxed = with_min_gap(1), with_min_gap(0)
        assert system_fingerprint(strict) != system_fingerprint(relaxed)
        assert (cache_key(strict, {"n": 8}, FIG1_UNIDIRECTIONAL)
                != cache_key(relaxed, {"n": 8}, FIG1_UNIDIRECTIONAL))

    def test_sensitive_to_every_component(self):
        base = cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL,
                         SynthesisOptions())
        assert cache_key(dp_system(), {"n": 9}, FIG1_UNIDIRECTIONAL,
                         SynthesisOptions()) != base
        assert cache_key(dp_system(), {"n": 8}, FIG2_EXTENDED,
                         SynthesisOptions()) != base
        assert cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL,
                         SynthesisOptions(time_bound=5)) != base
        assert cache_key(convolution_backward(), {"n": 8, "s": 3},
                         LINEAR_BIDIR) != base


class TestDesignCache:
    def test_put_get_round_trip(self, tmp_path, dp_sys, dp_params,
                                dp_design_fig2):
        cache = DesignCache(tmp_path)
        key = cache_key(dp_sys, dp_params, dp_design_fig2.interconnect)
        assert key not in cache
        cache.put(key, dp_design_fig2, solve_time=0.5)
        assert key in cache and len(cache) == 1
        cached = cache.get(key, dp_sys)
        assert cached is not None
        assert render_array(cached) == render_array(dp_design_fig2)
        # Constraints are re-derived, so a cached design is fully usable.
        assert len(cached.constraints) == \
            len(link_constraints(dp_sys, dp_params))

    def test_miss_and_corrupt_entry(self, tmp_path, dp_sys):
        cache = DesignCache(tmp_path)
        assert cache.load("no-such-key") is None
        path = cache.path_for("broken")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("broken") is None
        assert cache.get("broken", dp_sys) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("k", {"status": "ok"})
        entry = json.loads(cache.path_for("k").read_text())
        entry["format"] = -1
        cache.path_for("k").write_text(json.dumps(entry))
        assert cache.load("k") is None

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DESIGN_CACHE", str(tmp_path / "envcache"))
        cache = DesignCache()
        assert cache.root == tmp_path / "envcache"

    def test_clear(self, tmp_path, dp_sys, dp_params, dp_design_fig1):
        cache = DesignCache(tmp_path)
        key = cache_key(dp_sys, dp_params, dp_design_fig1.interconnect)
        cache.put(key, dp_design_fig1)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestShardedLayout:
    def test_store_writes_into_shard(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("abcdef0123", {"status": "ok"})
        assert (tmp_path / "ab" / "cd" / "abcdef0123.json").is_file()
        assert not (tmp_path / "abcdef0123.json").exists()
        assert "abcdef0123" in cache

    def test_load_migrates_flat_entry(self, tmp_path):
        from repro.core.cache import CACHE_FORMAT_VERSION

        cache = DesignCache(tmp_path)
        flat = tmp_path / "abcdef0123.json"
        flat.write_text(json.dumps({"format": CACHE_FORMAT_VERSION,
                                    "key": "abcdef0123", "status": "ok",
                                    "cells": 4, "completion_time": 7}))
        payload = cache.load("abcdef0123")
        assert payload is not None and payload["cells"] == 4
        assert not flat.exists()
        assert cache.path_for("abcdef0123").is_file()
        # Second load takes the sharded fast path and still hits.
        assert cache.load("abcdef0123")["completion_time"] == 7

    def test_bulk_migrate(self, tmp_path):
        from repro.core.cache import CACHE_FORMAT_VERSION

        cache = DesignCache(tmp_path)
        for i in range(3):
            key = f"{i:02d}aa{i}fingerprint"
            (tmp_path / f"{key}.json").write_text(json.dumps(
                {"format": CACHE_FORMAT_VERSION, "key": key,
                 "status": "ok", "cells": i + 1, "completion_time": 9}))
        assert cache.migrate() == 3
        assert not list(tmp_path.glob("[0-9]*.json"))
        assert len(cache) == 3

    def test_flattened_cache_still_serves_a_warm_sweep(self, tmp_path):
        """A cache written by the pre-shard layout keeps working: entries
        migrate on first touch and the warm sweep is all hits."""
        from repro.core import SweepSpec, run_sweep

        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 5}, {"n": 6}))
        run_sweep(spec, workers=0, cache_dir=tmp_path, cross_check=False)
        # Simulate the old layout: flatten every sharded entry.
        for path in list(tmp_path.glob("??/??/*.json")):
            path.rename(tmp_path / path.name)
        (tmp_path / DesignCache.INDEX_NAME).unlink()
        warm = run_sweep(spec, workers=0, cache_dir=tmp_path,
                         cross_check=False)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert not list(tmp_path.glob("*.json"))       # all re-sharded

    def test_len_uses_index_not_a_walk(self, tmp_path):
        cache = DesignCache(tmp_path)
        for i in range(4):
            cache.store(f"ab{i}d{'0' * 6}", {"status": "ok"})
        assert len(cache) == 4
        # Orphan file not in the index stays invisible until a rebuild.
        orphan = tmp_path / "zz" / "yy" / "zzyyorphan.json"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("{}")
        assert len(cache) == 4
        cache.rebuild_index()
        assert len(cache) == 4            # orphan has no format field

    def test_rebuild_index_after_loss(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("abcd" + "0" * 6, {"status": "ok", "cells": 3,
                                       "completion_time": 5})
        cache.index_path.unlink()
        assert cache.rebuild_index() == 1
        (entry,) = cache.entries()
        assert entry["cells"] == 3 and entry["status"] == "ok"

    def test_pareto_from_index(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("aaaa" + "0" * 6, {"status": "ok", "cells": 2,
                                       "completion_time": 10})
        cache.store("bbbb" + "0" * 6, {"status": "ok", "cells": 8,
                                       "completion_time": 4})
        cache.store("cccc" + "0" * 6, {"status": "ok", "cells": 9,
                                       "completion_time": 11})  # dominated
        cache.store("dddd" + "0" * 6, {"status": "error"})
        front = cache.pareto()
        assert [r["key"][:4] for r in front] == ["bbbb", "aaaa"]

    def test_clear_removes_both_layouts(self, tmp_path):
        from repro.core.cache import CACHE_FORMAT_VERSION

        cache = DesignCache(tmp_path)
        cache.store("abcd" + "0" * 6, {"status": "ok"})
        (tmp_path / "flatflat00.json").write_text(json.dumps(
            {"format": CACHE_FORMAT_VERSION, "key": "flatflat00",
             "status": "ok"}))
        assert cache.clear() == 2
        assert len(cache) == 0


class TestPrune:
    def test_age_eviction(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("abcd" + "0" * 6, {"status": "ok"})
        report = cache.prune(max_age_days=0)
        assert report.removed == 1 and report.by_reason == {"age": 1}
        assert report.freed_bytes > 0
        assert len(cache) == 0

    def test_size_eviction_is_oldest_first(self, tmp_path):
        import time as _time

        cache = DesignCache(tmp_path)
        cache.store("old0" + "0" * 6, {"status": "ok"})
        _time.sleep(0.02)
        cache.store("new0" + "0" * 6, {"status": "ok"})
        big = sum(e["bytes"] for e in cache.entries())
        report = cache.prune(max_bytes=big - 1)
        assert report.removed == 1 and report.by_reason == {"size": 1}
        assert [e["key"][:4] for e in cache.entries()] == ["new0"]

    def test_prune_evicts_unmigrated_flat_entries(self, tmp_path):
        from repro.core.cache import CACHE_FORMAT_VERSION

        cache = DesignCache(tmp_path)
        cache.store("abcd" + "0" * 6, {"status": "ok"})
        flat = tmp_path / ("flatflat00" + ".json")
        flat.write_text(json.dumps(
            {"format": CACHE_FORMAT_VERSION, "key": "flatflat00",
             "status": "ok"}))
        cache.rebuild_index()
        report = cache.prune(max_age_days=0)
        assert report.removed == 2 and report.failed == 0
        assert not flat.exists()
        assert len(cache) == 0

    def test_prune_counts_unremovable_entries(self, tmp_path):
        cache = DesignCache(tmp_path)
        key = "abcd" + "0" * 6
        cache.store(key, {"status": "ok"})
        cache.path_for(key).unlink()          # entry vanished from disk
        report = cache.prune(max_age_days=0)
        assert report.removed == 0 and report.failed == 1
        assert "1 failed" in str(report)

    def test_prune_without_limits_is_a_noop(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("abcd" + "0" * 6, {"status": "ok"})
        report = cache.prune()
        assert report.examined == 1 and report.removed == 0
        assert len(cache) == 1

    def test_eviction_counters(self, tmp_path):
        from repro.util.instrument import STATS

        cache = DesignCache(tmp_path)
        cache.store("abcd" + "0" * 6, {"status": "ok"})
        before = STATS.metrics.counter("cache.evictions").value
        cache.prune(max_age_days=0)
        assert STATS.metrics.counter("cache.evictions").value == before + 1
