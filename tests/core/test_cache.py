"""The persistent design cache: payload round-trips and key stability."""

import json
import subprocess
import sys

import pytest

from repro.core import (
    Design,
    DesignCache,
    SynthesisOptions,
    cache_key,
    link_constraints,
    synthesize,
)
from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.problems import convolution_backward, dp_system
from repro.report import render_array


class TestDesignRoundTrip:
    def test_dp_round_trip_renders_identically(self, dp_design_fig2):
        payload = json.loads(json.dumps(dp_design_fig2.to_dict()))
        rebuilt = Design.from_dict(payload, dp_design_fig2.system)
        assert render_array(rebuilt) == render_array(dp_design_fig2)

    def test_conv_backward_round_trip_renders_identically(
            self, conv_design_backward):
        payload = json.loads(json.dumps(conv_design_backward.to_dict()))
        rebuilt = Design.from_dict(payload, conv_design_backward.system)
        assert render_array(rebuilt) == render_array(conv_design_backward)
        assert rebuilt.cell_count == conv_design_backward.cell_count
        assert rebuilt.completion_time == conv_design_backward.completion_time


class TestCacheKey:
    def test_stable_across_processes(self):
        """The key must be value-based: a fresh interpreter recomputes
        the identical SHA-256 for the same job."""
        parent = cache_key(dp_system(), {"n": 8}, FIG2_EXTENDED,
                           SynthesisOptions())
        script = (
            "from repro.core import cache_key, SynthesisOptions\n"
            "from repro.arrays import FIG2_EXTENDED\n"
            "from repro.problems import dp_system\n"
            "print(cache_key(dp_system(), {'n': 8}, FIG2_EXTENDED,"
            " SynthesisOptions()))\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert child == parent

    def test_stable_within_process(self):
        a = cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        b = cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        assert a == b

    def test_sensitive_to_link_min_gap(self):
        # Regression: LinkRule.__repr__ omitted min_gap, so two systems
        # differing only in a link's timing slack fingerprinted (and cache-
        # keyed) identically — a cached infeasibility verdict for one could
        # poison the other.  min_gap=0 (A5's intra-cycle read) vs the strict
        # default is exactly the feasibility-affecting bit.
        import dataclasses

        from repro.core import system_fingerprint
        from repro.ir import Equation, LinkRule, Module, RecurrenceSystem

        def with_min_gap(gap):
            base = dp_system()
            modules = []
            for m in base.modules.values():
                equations = []
                for eqn in m.equations.values():
                    rules = tuple(
                        dataclasses.replace(r, min_gap=gap)
                        if isinstance(r, LinkRule) and r.label == "A5" else r
                        for r in eqn.rules)
                    equations.append(Equation(eqn.var, rules, eqn.where))
                modules.append(Module(m.name, m.dims, m.domain, equations))
            return RecurrenceSystem(base.name, modules, base.outputs,
                                    base.input_names, base.params)

        strict, relaxed = with_min_gap(1), with_min_gap(0)
        assert system_fingerprint(strict) != system_fingerprint(relaxed)
        assert (cache_key(strict, {"n": 8}, FIG1_UNIDIRECTIONAL)
                != cache_key(relaxed, {"n": 8}, FIG1_UNIDIRECTIONAL))

    def test_sensitive_to_every_component(self):
        base = cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL,
                         SynthesisOptions())
        assert cache_key(dp_system(), {"n": 9}, FIG1_UNIDIRECTIONAL,
                         SynthesisOptions()) != base
        assert cache_key(dp_system(), {"n": 8}, FIG2_EXTENDED,
                         SynthesisOptions()) != base
        assert cache_key(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL,
                         SynthesisOptions(time_bound=5)) != base
        assert cache_key(convolution_backward(), {"n": 8, "s": 3},
                         LINEAR_BIDIR) != base


class TestDesignCache:
    def test_put_get_round_trip(self, tmp_path, dp_sys, dp_params,
                                dp_design_fig2):
        cache = DesignCache(tmp_path)
        key = cache_key(dp_sys, dp_params, dp_design_fig2.interconnect)
        assert key not in cache
        cache.put(key, dp_design_fig2, solve_time=0.5)
        assert key in cache and len(cache) == 1
        cached = cache.get(key, dp_sys)
        assert cached is not None
        assert render_array(cached) == render_array(dp_design_fig2)
        # Constraints are re-derived, so a cached design is fully usable.
        assert len(cached.constraints) == \
            len(link_constraints(dp_sys, dp_params))

    def test_miss_and_corrupt_entry(self, tmp_path, dp_sys):
        cache = DesignCache(tmp_path)
        assert cache.load("no-such-key") is None
        path = cache.path_for("broken")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("broken") is None
        assert cache.get("broken", dp_sys) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.store("k", {"status": "ok"})
        entry = json.loads(cache.path_for("k").read_text())
        entry["format"] = -1
        cache.path_for("k").write_text(json.dumps(entry))
        assert cache.load("k") is None

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DESIGN_CACHE", str(tmp_path / "envcache"))
        cache = DesignCache()
        assert cache.root == tmp_path / "envcache"

    def test_clear(self, tmp_path, dp_sys, dp_params, dp_design_fig1):
        cache = DesignCache(tmp_path)
        key = cache_key(dp_sys, dp_params, dp_design_fig1.interconnect)
        cache.put(key, dp_design_fig1)
        assert cache.clear() == 1
        assert len(cache) == 0
