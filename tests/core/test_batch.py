"""Batch sweeps: the 2x2 smoke grid, caching, and the worker pool."""

import pytest

from repro.core import SweepSpec, SynthesisOptions, run_sweep
from repro.core.batch import _execute_job
from repro.report import sweep_pareto_table, sweep_table
from repro.util.instrument import STATS

SMOKE = SweepSpec(
    problems=("dp", "conv-backward"),
    interconnects=("fig1", "linear"),
    param_grid=({"n": 6, "s": 3},),
)


class TestSweepSmoke:
    def test_parallel_2x2_grid(self, tmp_path):
        report = run_sweep(SMOKE, workers=2, cache_dir=tmp_path)
        assert len(report.results) == 4
        assert report.workers == 2
        assert report.cache_hits == 0 and report.cache_misses == 4
        # dp needs a bidirectional diagonal; the pure-linear pattern can't
        # place it — that failure is recorded, not raised.
        ok = report.ok_results
        failed = report.failures
        assert len(ok) == 3 and len(failed) == 1
        assert failed[0].problem == "dp"
        assert failed[0].error_type == "NoSpaceMapExists"
        assert failed[0].error_module is not None
        for r in ok:
            assert r.cells > 0 and r.completion_time > 0
            assert r.design_payload is not None

    def test_warm_rerun_hits_cache_and_is_byte_identical(self, tmp_path):
        cold = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        warm = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert all(r.cache_hit for r in warm.results)
        # Negative entries hit too: the infeasible job is not re-solved.
        assert any(r.cache_hit and not r.ok for r in warm.results)
        assert warm.cross_check and warm.cross_check.startswith("ok")
        assert sweep_table(warm.results) == sweep_table(cold.results)
        assert sweep_pareto_table(warm.pareto()) == \
            sweep_pareto_table(cold.pareto())
        # The issue's acceptance bar: cached re-runs skip the solvers.
        assert warm.wall_time < cold.wall_time / 10

    def test_results_sorted_deterministically(self, tmp_path):
        report = run_sweep(SMOKE, workers=2, cache_dir=tmp_path)
        keys = [r._sort_key() for r in report.results]
        assert keys == sorted(keys)

    def test_pareto_front_is_non_dominated(self, tmp_path):
        report = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        front = report.pareto()
        assert front
        for a in front:
            for b in report.ok_results:
                dominates = (b.completion_time <= a.completion_time
                             and b.cells <= a.cells
                             and (b.completion_time, b.cells)
                             != (a.completion_time, a.cells))
                assert not dominates

    def test_no_cache_mode(self, tmp_path):
        report = run_sweep(SMOKE, workers=0, use_cache=False,
                           cache_dir=tmp_path)
        assert report.cache_hits == 0
        assert not any(tmp_path.glob("*.json"))

    def test_rebuilt_design_from_result(self, tmp_path):
        from repro.core.batch import resolve_problem

        report = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        result = next(r for r in report.ok_results
                      if r.problem == "conv-backward")
        builder, _ = resolve_problem(result.problem)
        design = result.design(builder())
        assert design.cell_count == result.cells
        assert design.completion_time == result.completion_time


class TestStatsProtocol:
    """The worker/serial split of the global STATS registry.

    Regression: the serial fallback used to reset the process-wide
    registry the way a pool worker does, wiping whatever the caller had
    accumulated before the sweep."""

    def test_serial_sweep_preserves_caller_stats(self, tmp_path):
        STATS.count("sentinel.before_sweep", 7)
        try:
            run_sweep(SMOKE, workers=0, cache_dir=tmp_path,
                      cross_check=False)
            assert STATS.counters["sentinel.before_sweep"] == 7
        finally:
            STATS.counters.pop("sentinel.before_sweep", None)

    def test_serial_job_reports_own_delta_only(self, tmp_path):
        job = SMOKE.jobs()[0]
        STATS.count("sentinel.noise", 3)
        try:
            result = _execute_job(job, str(tmp_path), True)
            assert "sentinel.noise" not in result.stats.get("counters", {})
            assert result.stats["counters"]      # the job did count things
        finally:
            STATS.counters.pop("sentinel.noise", None)

    def test_worker_mode_resets_registry(self, tmp_path):
        job = SMOKE.jobs()[0]
        STATS.count("sentinel.parent_only", 5)
        try:
            result = _execute_job(job, str(tmp_path), True, in_worker=True)
            # The worker path starts from a clean registry, so the parent's
            # sentinel neither leaks into the delta nor survives the reset.
            assert "sentinel.parent_only" not in result.stats["counters"]
            assert "sentinel.parent_only" not in STATS.counters
        finally:
            STATS.counters.pop("sentinel.parent_only", None)

    def test_worker_ships_span_tree_when_tracing(self, tmp_path):
        job = SMOKE.jobs()[0]
        was_enabled = STATS.enabled
        try:
            result = _execute_job(job, str(tmp_path), True, tracing=True,
                                  in_worker=True)
            shipped = result.stats.get("spans")
            assert shipped and shipped[0]["name"] == "sweep.job"
            # Worker hygiene: the shipped tree is discarded locally so a
            # reused pool process does not accumulate span forests.
            assert not any(s.name == "sweep.job" for s in STATS.spans())
        finally:
            STATS.enabled = was_enabled
            STATS.reset()

    def test_parallel_sweep_merges_worker_spans(self, tmp_path):
        was_enabled = STATS.enabled
        STATS.reset()
        STATS.enable()
        try:
            run_sweep(SMOKE, workers=2, cache_dir=tmp_path,
                      cross_check=False)
            names = {s.name for root in STATS.spans()
                     for s in _walk(root)}
            assert "sweep.job" in names      # grafted from the workers
        finally:
            STATS.enabled = was_enabled
            STATS.reset()


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


class TestSweepSpec:
    def test_unused_params_dropped_and_deduped(self):
        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 6, "s": 3}, {"n": 6, "s": 4}))
        jobs = spec.jobs()
        # dp ignores s, so both bindings collapse to the same job.
        assert len(jobs) == 1
        assert jobs[0].params == (("n", 6),)

    def test_missing_param_raises(self):
        spec = SweepSpec(problems=("conv-backward",),
                         interconnects=("linear",),
                         param_grid=({"n": 6},))
        with pytest.raises(KeyError, match="needs parameters"):
            spec.jobs()

    def test_unknown_problem_raises(self):
        spec = SweepSpec(problems=("fft",), interconnects=("fig1",),
                         param_grid=({"n": 6},))
        with pytest.raises(KeyError, match="unknown problem"):
            spec.jobs()

    def test_options_flow_into_jobs(self):
        opts = SynthesisOptions(time_bound=5, space_bound=2)
        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 6},), options=opts)
        assert spec.jobs()[0].options == opts

    def test_verify_seeds_flow_into_jobs(self):
        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 6},), verify_seeds=4)
        assert spec.jobs()[0].verify_seeds == 4


class TestVerifySeeds:
    SPEC = SweepSpec(problems=("dp",), interconnects=("fig1",),
                     param_grid=({"n": 6},),
                     options=SynthesisOptions(engine="vector"),
                     verify_seeds=4)

    def test_fresh_jobs_verify(self, tmp_path):
        report = run_sweep(self.SPEC, workers=0, cache_dir=tmp_path)
        (r,) = report.results
        assert r.ok and not r.cache_hit
        assert r.verify_seeds == 4
        assert r.verified is True
        assert r.verify_failures == []
        assert "verify: 1 design(s), 4 seeded runs" in report.summary()

    def test_cached_hits_verify_too(self, tmp_path):
        run_sweep(self.SPEC, workers=0, cache_dir=tmp_path)
        report = run_sweep(self.SPEC, workers=0, cache_dir=tmp_path)
        (r,) = report.results
        assert r.cache_hit
        assert r.verify_seeds == 4 and r.verified is True

    def test_verification_off_by_default(self, tmp_path):
        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 6},))
        report = run_sweep(spec, workers=0, cache_dir=tmp_path)
        (r,) = report.results
        assert r.verify_seeds == 0
        assert r.verified is None
        assert "verify:" not in report.summary()

    def test_verify_travels_through_worker_pool(self, tmp_path):
        spec = SweepSpec(problems=("dp", "conv-backward"),
                         interconnects=("fig1", "linear"),
                         param_grid=({"n": 6, "s": 3},),
                         options=SynthesisOptions(engine="vector"),
                         verify_seeds=2)
        report = run_sweep(spec, workers=2, cache_dir=tmp_path)
        ok = report.ok_results
        assert ok and all(r.verified is True for r in ok)
        assert all(r.verify_seeds == 2 for r in ok)
        # Infeasible jobs never verify.
        assert all(r.verify_seeds == 0 for r in report.failures)

    def test_verify_fields_serialize(self, tmp_path):
        report = run_sweep(self.SPEC, workers=0, cache_dir=tmp_path)
        payload = report.to_dict()["results"][0]
        assert payload["verify_seeds"] == 4
        assert payload["verify_failures"] == []


def _crash_first_worker_builder():
    """A dp builder whose *first* invocation kills its process.

    The sentinel path travels via the environment (inherited by pool
    workers); O_CREAT|O_EXCL makes exactly one invocation — across all
    processes — win the crash.  Later invocations (other workers, the
    parent's serial retry) build normally.
    """
    import os

    from repro.problems import dp_system

    sentinel = os.environ.get("REPRO_TEST_CRASH_SENTINEL")
    if sentinel:
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(1)          # simulate a segfault / OOM kill
    return dp_system()


class TestWorkerCrashRecovery:
    def _jobs(self):
        from repro.arrays.interconnect import resolve_interconnect
        from repro.core.batch import SweepJob

        fig1 = resolve_interconnect("fig1")
        return [SweepJob("dp", _crash_first_worker_builder, (("n", n),), fig1)
                for n in (4, 5, 6)]

    def test_sweep_survives_worker_death(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SENTINEL",
                           str(tmp_path / "crashed"))
        before = STATS.snapshot()["counters"]
        # use_cache=False: the parent must not run the crashing builder
        # during the cache probe, and the pool path must stay exercised.
        report = run_sweep(self._jobs(), workers=2, use_cache=False,
                           cross_check=False)
        assert (tmp_path / "crashed").exists()   # a worker did die
        assert len(report.results) == 3
        assert all(r.ok for r in report.results)
        assert sorted(r.params["n"] for r in report.results) == [4, 5, 6]
        after = STATS.snapshot()["counters"]
        retries = after.get("sweep.worker_retries", 0) \
            - before.get("sweep.worker_retries", 0)
        assert retries >= 1

    def test_retried_job_stats_counted_once(self, tmp_path, monkeypatch):
        """Regression: a job salvaged from the broken pool AND retried
        serially used to charge the parent registry twice."""
        monkeypatch.setenv("REPRO_TEST_CRASH_SENTINEL",
                           str(tmp_path / "crashed"))
        counter = "space.assignments_examined"
        before = STATS.snapshot()["counters"].get(counter, 0)
        report = run_sweep(self._jobs(), workers=2, use_cache=False,
                           cross_check=False)
        after = STATS.snapshot()["counters"].get(counter, 0)
        # The parent's accumulated delta must equal the sum of the
        # per-job deltas exactly — a salvaged-then-retried job that
        # merged twice would overshoot.
        expected = sum(r.stats.get("counters", {}).get(counter, 0)
                       for r in report.results)
        assert expected > 0
        assert after - before == expected


class TestMergeDedup:
    def _delta(self):
        return {"counters": {"sentinel.merge": 5},
                "timers": {"sentinel.timer": 0.25}}

    def test_duplicate_job_key_merges_once(self):
        from repro.core.batch import _merge_stats

        merged = set()
        before = STATS.snapshot()["counters"]
        try:
            _merge_stats(self._delta(), job_key="job-a", merged=merged)
            _merge_stats(self._delta(), job_key="job-a", merged=merged)
            after = STATS.snapshot()["counters"]
            assert after["sentinel.merge"] \
                - before.get("sentinel.merge", 0) == 5
            assert after.get("sweep.merge_deduped", 0) \
                - before.get("sweep.merge_deduped", 0) == 1
        finally:
            STATS.counters.pop("sentinel.merge", None)
            STATS.timers.pop("sentinel.timer", None)

    def test_distinct_keys_both_merge(self):
        from repro.core.batch import _merge_stats

        merged = set()
        before = STATS.snapshot()["counters"].get("sentinel.merge", 0)
        try:
            _merge_stats(self._delta(), job_key="job-a", merged=merged)
            _merge_stats(self._delta(), job_key="job-b", merged=merged)
            after = STATS.snapshot()["counters"]["sentinel.merge"]
            assert after - before == 10
        finally:
            STATS.counters.pop("sentinel.merge", None)
            STATS.timers.pop("sentinel.timer", None)

    def test_telemetry_wire_merges_into_registry(self):
        from repro.core.batch import _merge_stats
        from repro.obs import Histogram

        hist = Histogram("sentinel.stage")
        hist.observe(0.125)
        delta = {"counters": {},
                 "telemetry": {"gauges": {"sentinel.gauge": 2.5},
                               "histograms": {"sentinel.stage":
                                              hist.to_wire()}}}
        try:
            _merge_stats(delta, job_key="job-t", merged=set())
            assert STATS.metrics.gauges["sentinel.gauge"] == 2.5
            assert STATS.metrics.histograms["sentinel.stage"].count == 1
        finally:
            STATS.metrics.gauges.pop("sentinel.gauge", None)
            STATS.metrics.histograms.pop("sentinel.stage", None)


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        from repro.core import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_clamped_to_at_least_one(self, monkeypatch):
        from repro.core import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        assert default_workers() == 1

    def test_unparseable_env_falls_back(self, monkeypatch):
        from repro.core import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert default_workers() >= 1

    def test_sweep_publishes_worker_gauge(self, tmp_path):
        run_sweep(SMOKE, workers=2, use_cache=False, cross_check=False)
        assert STATS.metrics.gauges["sweep.workers"] == 2
