"""Batch sweeps: the 2x2 smoke grid, caching, and the worker pool."""

import pytest

from repro.core import SweepSpec, SynthesisOptions, run_sweep
from repro.report import sweep_pareto_table, sweep_table

SMOKE = SweepSpec(
    problems=("dp", "conv-backward"),
    interconnects=("fig1", "linear"),
    param_grid=({"n": 6, "s": 3},),
)


class TestSweepSmoke:
    def test_parallel_2x2_grid(self, tmp_path):
        report = run_sweep(SMOKE, workers=2, cache_dir=tmp_path)
        assert len(report.results) == 4
        assert report.workers == 2
        assert report.cache_hits == 0 and report.cache_misses == 4
        # dp needs a bidirectional diagonal; the pure-linear pattern can't
        # place it — that failure is recorded, not raised.
        ok = report.ok_results
        failed = report.failures
        assert len(ok) == 3 and len(failed) == 1
        assert failed[0].problem == "dp"
        assert failed[0].error_type == "NoSpaceMapExists"
        assert failed[0].error_module is not None
        for r in ok:
            assert r.cells > 0 and r.completion_time > 0
            assert r.design_payload is not None

    def test_warm_rerun_hits_cache_and_is_byte_identical(self, tmp_path):
        cold = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        warm = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert all(r.cache_hit for r in warm.results)
        # Negative entries hit too: the infeasible job is not re-solved.
        assert any(r.cache_hit and not r.ok for r in warm.results)
        assert warm.cross_check and warm.cross_check.startswith("ok")
        assert sweep_table(warm.results) == sweep_table(cold.results)
        assert sweep_pareto_table(warm.pareto()) == \
            sweep_pareto_table(cold.pareto())
        # The issue's acceptance bar: cached re-runs skip the solvers.
        assert warm.wall_time < cold.wall_time / 10

    def test_results_sorted_deterministically(self, tmp_path):
        report = run_sweep(SMOKE, workers=2, cache_dir=tmp_path)
        keys = [r._sort_key() for r in report.results]
        assert keys == sorted(keys)

    def test_pareto_front_is_non_dominated(self, tmp_path):
        report = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        front = report.pareto()
        assert front
        for a in front:
            for b in report.ok_results:
                dominates = (b.completion_time <= a.completion_time
                             and b.cells <= a.cells
                             and (b.completion_time, b.cells)
                             != (a.completion_time, a.cells))
                assert not dominates

    def test_no_cache_mode(self, tmp_path):
        report = run_sweep(SMOKE, workers=0, use_cache=False,
                           cache_dir=tmp_path)
        assert report.cache_hits == 0
        assert not any(tmp_path.glob("*.json"))

    def test_rebuilt_design_from_result(self, tmp_path):
        from repro.core.batch import resolve_problem

        report = run_sweep(SMOKE, workers=0, cache_dir=tmp_path)
        result = next(r for r in report.ok_results
                      if r.problem == "conv-backward")
        builder, _ = resolve_problem(result.problem)
        design = result.design(builder())
        assert design.cell_count == result.cells
        assert design.completion_time == result.completion_time


class TestSweepSpec:
    def test_unused_params_dropped_and_deduped(self):
        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 6, "s": 3}, {"n": 6, "s": 4}))
        jobs = spec.jobs()
        # dp ignores s, so both bindings collapse to the same job.
        assert len(jobs) == 1
        assert jobs[0].params == (("n", 6),)

    def test_missing_param_raises(self):
        spec = SweepSpec(problems=("conv-backward",),
                         interconnects=("linear",),
                         param_grid=({"n": 6},))
        with pytest.raises(KeyError, match="needs parameters"):
            spec.jobs()

    def test_unknown_problem_raises(self):
        spec = SweepSpec(problems=("fft",), interconnects=("fig1",),
                         param_grid=({"n": 6},))
        with pytest.raises(KeyError, match="unknown problem"):
            spec.jobs()

    def test_options_flow_into_jobs(self):
        opts = SynthesisOptions(time_bound=5, space_bound=2)
        spec = SweepSpec(problems=("dp",), interconnects=("fig1",),
                         param_grid=({"n": 6},), options=opts)
        assert spec.jobs()[0].options == opts
