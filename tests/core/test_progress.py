"""Live sweep progress: events, CLI rendering, heartbeat, run_sweep wiring."""

import io
import json

from repro.core import SweepSpec, run_sweep
from repro.obs import (
    CLIProgress,
    JsonlHeartbeat,
    MetricsRegistry,
    ProgressEvent,
    read_heartbeat,
)
from repro.obs.progress import SweepProgress


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


class Collector:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class TestProgressEvent:
    def test_to_dict_rounds_and_omits_optionals(self):
        e = ProgressEvent(kind="job", total=10, done=3, failed=1,
                          cache_hits=2, elapsed=1.23456789,
                          throughput=2.43902, eta_s=2.87)
        d = e.to_dict()
        assert d["elapsed_s"] == 1.234568
        assert d["throughput"] == 2.439
        assert d["eta_s"] == 2.87
        assert "label" not in d

    def test_start_omits_eta(self):
        assert "eta_s" not in ProgressEvent(kind="start", total=4).to_dict()

    def test_render_mentions_counts(self):
        e = ProgressEvent(kind="job", total=8, done=3, failed=1,
                          cache_hits=2, throughput=4.0, eta_s=1.25)
        line = e.render()
        assert "sweep 3/8" in line
        assert "1 failed" in line
        assert "2 cached" in line
        assert "4.0 jobs/s" in line
        assert "eta 1.2s" in line

    def test_render_end_shows_duration(self):
        e = ProgressEvent(kind="end", total=8, done=8, elapsed=2.0,
                          throughput=4.0, eta_s=0.0)
        assert "done in 2.00s" in e.render()
        assert "eta" not in e.render()


class TestSweepProgressTracker:
    def _tracker(self, sinks):
        clock = FakeClock()
        tracker = SweepProgress.create(sinks)
        tracker.clock = clock
        return tracker, clock

    def test_create_normalises_argument(self):
        sink = Collector()
        assert SweepProgress.create(None) is None
        assert SweepProgress.create(()) is None
        assert SweepProgress.create(sink).sinks == (sink,)
        assert SweepProgress.create([sink, sink]).sinks == (sink, sink)

    def test_lifecycle_counts_and_eta(self):
        sink = Collector()
        tracker, clock = self._tracker(sink)
        tracker.start(4)
        clock.tick(1.0)
        tracker.job_done(ok=True, cache_hit=False, label="a")
        clock.tick(1.0)
        tracker.job_done(ok=False, cache_hit=False, label="b")
        tracker.job_done(ok=True, cache_hit=True, label="c")
        tracker.finish()
        kinds = [e.kind for e in sink.events]
        assert kinds == ["start", "job", "job", "job", "end"]
        second = sink.events[2]
        assert (second.done, second.failed, second.cache_hits) == (2, 1, 0)
        assert second.throughput == 1.0
        assert second.eta_s == 2.0
        assert sink.events[-1].cache_hits == 1

    def test_gauges_mirrored_into_registry(self):
        reg = MetricsRegistry()
        tracker = SweepProgress.create(Collector(), registry=reg)
        tracker.clock = FakeClock()
        tracker.start(2)
        tracker.job_done(ok=False, cache_hit=False, label="x")
        assert reg.gauges["sweep.jobs_done"] == 1
        assert reg.gauges["sweep.jobs_failed"] == 1
        assert "sweep.throughput" in reg.gauges

    def test_broken_sink_dropped_not_fatal(self):
        class Broken:
            def emit(self, event):
                raise OSError("disk full")

        good = Collector()
        tracker, clock = self._tracker([Broken(), good])
        tracker.start(1)
        tracker.job_done(ok=True, cache_hit=False, label="a")
        tracker.finish()
        assert [e.kind for e in good.events] == ["start", "job", "end"]


class TestCLIProgress:
    def test_non_tty_writes_plain_lines(self):
        stream = io.StringIO()
        clock = FakeClock()
        cli = CLIProgress(stream, min_interval=0.0, clock=clock)
        cli.emit(ProgressEvent(kind="start", total=2))
        cli.emit(ProgressEvent(kind="end", total=2, done=2))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "\r" not in stream.getvalue()

    def test_tty_redraws_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        clock = FakeClock()
        cli = CLIProgress(stream, min_interval=0.0, clock=clock)
        cli.emit(ProgressEvent(kind="job", total=2, done=1))
        cli.emit(ProgressEvent(kind="end", total=2, done=2))
        text = stream.getvalue()
        assert text.startswith("\r\x1b[2K")
        assert text.endswith("\n")

    def test_throttling_keeps_final_event(self):
        stream = io.StringIO()
        clock = FakeClock()
        cli = CLIProgress(stream, min_interval=1.0, clock=clock)
        cli.emit(ProgressEvent(kind="start", total=3))
        cli.emit(ProgressEvent(kind="job", total=3, done=1))   # throttled
        cli.emit(ProgressEvent(kind="job", total=3, done=2))   # throttled
        cli.emit(ProgressEvent(kind="end", total=3, done=3))   # final: kept
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "3/3" in lines[-1]


class TestHeartbeat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        hb = JsonlHeartbeat(path)
        hb.emit(ProgressEvent(kind="start", total=2))
        hb.emit(ProgressEvent(kind="job", total=2, done=1, elapsed=0.5,
                              throughput=2.0, eta_s=0.5, label="dp(n=6)"))
        hb.emit(ProgressEvent(kind="end", total=2, done=2, elapsed=1.0,
                              throughput=2.0, eta_s=0.0))
        events = read_heartbeat(path)
        assert [e.kind for e in events] == ["start", "job", "end"]
        assert events[1].label == "dp(n=6)"
        assert events[1].eta_s == 0.5

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        hb = JsonlHeartbeat(path)
        for i in range(5):
            hb.emit(ProgressEvent(kind="job", total=5, done=i + 1))
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestRunSweepProgress:
    SPEC = SweepSpec(problems=("dp",), interconnects=("fig1",),
                     param_grid=({"n": 4}, {"n": 5}))

    def test_serial_sweep_emits_full_stream(self, tmp_path):
        sink = Collector()
        report = run_sweep(self.SPEC, workers=0, cache_dir=tmp_path,
                           cross_check=False, progress=sink)
        kinds = [e.kind for e in sink.events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert kinds.count("job") == len(report.results) == 2
        assert sink.events[0].total == 2
        assert sink.events[-1].done == 2

    def test_cache_hits_reported_as_jobs(self, tmp_path):
        run_sweep(self.SPEC, workers=0, cache_dir=tmp_path,
                  cross_check=False)
        sink = Collector()
        report = run_sweep(self.SPEC, workers=0, cache_dir=tmp_path,
                           cross_check=False, progress=sink)
        assert report.cache_hits == 2
        assert sink.events[-1].cache_hits == 2
        labels = {e.label for e in sink.events if e.kind == "job"}
        assert any("dp(n=4)" in label for label in labels)

    def test_pool_sweep_emits_every_job(self, tmp_path):
        sink = Collector()
        report = run_sweep(self.SPEC, workers=2, cache_dir=tmp_path,
                           cross_check=False, progress=sink)
        assert sink.events[-1].done == len(report.results) == 2

    def test_no_progress_argument_no_events(self, tmp_path):
        report = run_sweep(self.SPEC, workers=0, cache_dir=tmp_path,
                           cross_check=False)
        assert report.results   # nothing crashed without a tracker
