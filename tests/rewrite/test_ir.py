"""The typed rewrite IR: immutability, structural identity, round trips."""

import pytest

from repro.core.cache import system_fingerprint
from repro.core.restructure import restructure
from repro.problems import dp_spec, dp_system
from repro.rewrite import (
    IROp,
    IRVerificationError,
    Region,
    ir_to_system,
    print_ir,
    system_to_ir,
    verify_ir,
    walk,
)


class TestImmutability:
    def test_op_rejects_mutation(self):
        op = IROp("rule.input", {"input_name": "c0"})
        with pytest.raises(AttributeError):
            op.name = "other"

    def test_region_rejects_mutation(self):
        region = Region([IROp("rule.input", {"input_name": "c0"})])
        with pytest.raises(AttributeError):
            region.ops = ()

    def test_with_attrs_is_functional(self):
        op = IROp("design.equation", {"var": "a", "where": "TRUE"})
        other = op.with_attrs(var="b")
        assert op.attr("var") == "a"
        assert other.attr("var") == "b"
        assert other.name == op.name

    def test_with_regions_shares_attrs(self):
        child = IROp("rule.input", {"input_name": "c0"})
        op = IROp("design.equation", {"var": "a"}, (Region(),))
        grown = op.with_regions((Region([child]),))
        assert len(op.regions[0]) == 0
        assert len(grown.regions[0]) == 1


class TestStructuralIdentity:
    def test_equal_ops_hash_equal(self):
        a = IROp("rule.input", {"input_name": "c0", "index": (1, 2)})
        b = IROp("rule.input", {"index": (1, 2), "input_name": "c0"})
        assert a == b
        assert hash(a) == hash(b)

    def test_attr_value_distinguishes(self):
        a = IROp("rule.input", {"input_name": "c0"})
        b = IROp("rule.input", {"input_name": "c1"})
        assert a != b

    def test_region_content_distinguishes(self):
        child = IROp("rule.input", {"input_name": "c0"})
        a = IROp("design.equation", {"var": "a"}, (Region([child]),))
        b = IROp("design.equation", {"var": "a"}, (Region(),))
        assert a != b

    def test_ops_usable_as_dict_keys(self):
        a = IROp("rule.input", {"input_name": "c0"})
        b = IROp("rule.input", {"input_name": "c0"})
        assert {a: 1}[b] == 1


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def system(self):
        return dp_system()

    def test_lossless_fingerprint(self, system):
        back = ir_to_system(system_to_ir(system))
        assert system_fingerprint(back) == system_fingerprint(system)

    def test_restructured_system_round_trips(self):
        system = restructure(dp_spec(), params={"n": 5})
        back = ir_to_system(system_to_ir(system))
        assert system_fingerprint(back) == system_fingerprint(system)

    def test_verifies(self, system):
        verify_ir(system_to_ir(system))

    def test_walk_visits_every_equation(self, system):
        root = system_to_ir(system)
        eqs = [op for op in walk(root) if op.name == "design.equation"]
        want = sum(len(m.equations) for m in system.modules.values())
        assert len(eqs) == want
        assert next(walk(root)) is root  # pre-order: root first


class TestVerifier:
    def test_unknown_op_rejected(self):
        root = system_to_ir(dp_system())
        bad_mod = root.regions[0].ops[0].with_regions(
            (Region([IROp("design.mystery", {})]),))
        bad = root.with_regions((Region([bad_mod]), root.regions[1]))
        with pytest.raises(IRVerificationError, match="mystery"):
            verify_ir(bad)

    def test_missing_attr_rejected(self):
        bad = IROp("design.system", {"name": "x"}, (Region(), Region()))
        with pytest.raises(IRVerificationError, match="missing attribute"):
            verify_ir(bad)

    def test_wrong_region_count_rejected(self):
        bad = IROp("design.system",
                   {"name": "x", "input_names": (), "params": ()})
        with pytest.raises(IRVerificationError, match="region"):
            verify_ir(bad)

    def test_broken_def_use_rejected(self):
        root = system_to_ir(dp_system())
        # Drop the first module: its symbols become undefined for the
        # links/outputs that read them.
        bad = root.with_regions((Region(root.regions[0].ops[1:]),
                                 root.regions[1]))
        with pytest.raises(IRVerificationError, match="undefined symbol"):
            verify_ir(bad)

    def test_root_must_be_system(self):
        with pytest.raises(IRVerificationError, match="design.system"):
            verify_ir(IROp("design.module", {}))


class TestPrinter:
    def test_deterministic_and_labelled(self):
        root = system_to_ir(dp_system())
        text = print_ir(root)
        assert text == print_ir(system_to_ir(dp_system()))
        for name in dp_system().modules:
            assert f"design.module @{name}" in text

    def test_trivial_defaults_suppressed(self):
        text = print_ir(system_to_ir(dp_system()))
        assert "where=TRUE" not in text
        assert "min_gap=1" not in text
