"""Rewrite patterns: the fixpoint driver, kernel fusion, cross-chain CSE."""

import pytest

from repro.core.restructure import restructure
from repro.fuzz.cases import CaseDescriptor, build_inputs, build_spec
from repro.fuzz.oracle import evaluate
from repro.ir.evaluate import run_system
from repro.problems import dp_spec
from repro.rewrite import (
    CrossChainCSE,
    FuseAccumulatorKernels,
    IROp,
    RewritePattern,
    apply_patterns,
    ir_to_system,
    system_to_ir,
    verify_ir,
    walk,
)
from repro.rewrite.patterns import PatternConvergenceError

PARAMS = {"n": 5}


def _restructured_ir():
    return system_to_ir(restructure(dp_spec(), params=PARAMS))


def _composites(root):
    return [op.attr("op") for op in walk(root) if op.name == "rule.compute"
            and op.attr("op").components is not None]


class TestDriver:
    def test_no_match_returns_same_counts(self):
        root = _restructured_ir()
        _, counts = apply_patterns(root, (CrossChainCSE(),))
        assert counts == {}  # dp has no duplicated carrier chains

    def test_non_converging_pattern_reported(self):
        class Renamer(RewritePattern):
            name = "renamer"

            def match_and_rewrite(self, op):
                if op.name == "design.equation":
                    return op.with_attrs(var=op.attr("var") + "x")
                return None

        with pytest.raises(PatternConvergenceError, match="renamer"):
            apply_patterns(_restructured_ir(), (Renamer(),),
                           max_iterations=4)

    def test_counts_returned_per_pattern(self):
        root = _restructured_ir()
        n_composites = len(_composites(root))
        assert n_composites > 0
        _, counts = apply_patterns(root, (FuseAccumulatorKernels(),))
        assert counts == {"fuse-accumulator-kernels": n_composites}


class TestFuseAccumulatorKernels:
    def test_restructure_emits_unfused_composites(self):
        for op in _composites(_restructured_ir()):
            assert op.int_kernel is None

    def test_fusion_attaches_kernels_and_fixpoints(self):
        root, counts = apply_patterns(_restructured_ir(),
                                      (FuseAccumulatorKernels(),))
        assert sum(counts.values()) > 0
        for op in _composites(root):
            assert op.int_kernel is not None
        _, again = apply_patterns(root, (FuseAccumulatorKernels(),))
        assert again == {}  # the rewrite extinguished its own match

    def test_values_unchanged(self):
        plain = restructure(dp_spec(), params=PARAMS)
        fused_ir, _ = apply_patterns(system_to_ir(plain),
                                     (FuseAccumulatorKernels(),))
        fused = ir_to_system(fused_ir)
        inputs = {"c0": lambda i, j: 3 * i - j}
        assert run_system(fused, PARAMS, inputs) == \
            run_system(plain, PARAMS, inputs)


#: Both carriers replace coordinate 1 with identical offsets — the spec
#: repeats an argument, so restructuring duplicates the carrier pipeline
#: in both chain modules: the CSE material.
DUP_ARGS = ((1, (0, 0)), (1, (0, 0)))


def _dup_case():
    return CaseDescriptor(n=5, lo=1, hi=1, args=DUP_ARGS, body="min_plus",
                          combine="min", pool=(2, -3, 5, 7))


class TestCrossChainCSE:
    def test_merges_duplicated_carriers(self):
        desc = _dup_case()
        system = restructure(build_spec(desc), params={"n": desc.n})
        root = system_to_ir(system)
        merged, counts = apply_patterns(root, (CrossChainCSE(),))
        assert counts.get("cross-chain-cse", 0) >= 1
        verify_ir(merged)

        def eq_count(op):
            return sum(len(m.regions[0]) for m in op.regions[0])

        assert eq_count(merged) < eq_count(root)

    def test_merged_system_computes_the_same_results(self):
        desc = _dup_case()
        oracle = evaluate(desc)
        system = restructure(build_spec(desc), params={"n": desc.n})
        merged_ir, _ = apply_patterns(system_to_ir(system),
                                      (CrossChainCSE(),))
        merged = ir_to_system(merged_ir)
        results = run_system(merged, {"n": desc.n}, build_inputs(desc))
        assert results == oracle

    def test_no_false_merges_on_distinct_carriers(self):
        # dp's two chains carry *different* arguments; nothing may merge.
        root = _restructured_ir()
        merged, counts = apply_patterns(root, (CrossChainCSE(),))
        assert counts == {}
        assert merged == root


class TestPatternContract:
    def test_returned_op_taken_as_is(self):
        # The driver must count a rewrite even when the replacement is
        # structurally "equal" (op equality ignores executable payloads).
        hits = []

        class OneShot(RewritePattern):
            name = "one-shot"

            def match_and_rewrite(self, op):
                if op.name == "design.output" and not hits:
                    hits.append(op)
                    return IROp(op.name, op.attrs, op.regions)
                return None

        _, counts = apply_patterns(_restructured_ir(), (OneShot(),))
        assert counts == {"one-shot": 1}
