"""Pass manager and the default pipeline: composition, ordering, tracing."""

import pytest

from repro.arrays.interconnect import resolve_interconnect
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.core.verify import verify_design
from repro.fuzz.cases import CaseDescriptor, build_inputs, build_spec
from repro.problems import dp_spec, dp_system
from repro.rewrite import (
    PASS_REGISTRY,
    PassError,
    PassPipeline,
    PipelineState,
    available_passes,
    default_pipeline,
    make_pass,
    run_pipeline,
)

FIG1 = resolve_interconnect("fig1")
PARAMS = {"n": 5}
OPTS = SynthesisOptions()


class TestRegistry:
    def test_default_pipeline_names_and_order(self):
        assert default_pipeline().names == (
            "decompose-chains", "fuse-accumulators", "schedule",
            "allocate", "lower-microcode")

    def test_cse_registered_but_opt_in(self):
        assert "cse" in PASS_REGISTRY
        assert "cse" not in default_pipeline().names

    def test_available_passes_flags_default_membership(self):
        rows = {name: in_default for name, _, in_default in available_passes()}
        assert rows["schedule"] is True
        assert rows["cse"] is False
        assert all(desc for _, desc, _ in available_passes())

    def test_make_pass_unknown_name(self):
        with pytest.raises(KeyError, match="unknown pass 'tile'"):
            make_pass("tile")


class TestComposition:
    def test_with_pass_before_and_after(self):
        pipe = default_pipeline()
        grown = pipe.with_pass(make_pass("cse"), after="fuse-accumulators")
        assert grown.names.index("cse") == \
            grown.names.index("fuse-accumulators") + 1
        grown = pipe.with_pass(make_pass("cse"), before="schedule")
        assert grown.names.index("cse") == grown.names.index("schedule") - 1
        assert pipe.names == default_pipeline().names  # original untouched

    def test_without_pass(self):
        pipe = default_pipeline().without_pass("fuse-accumulators")
        assert "fuse-accumulators" not in pipe.names

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PassPipeline([make_pass("schedule"), make_pass("schedule")])

    def test_unknown_anchor_rejected(self):
        with pytest.raises(ValueError, match="no pass named"):
            default_pipeline().with_pass(make_pass("cse"), after="tile")

    def test_print_ir_after_validated(self):
        with pytest.raises(ValueError, match="unknown passes"):
            default_pipeline(print_ir_after=("tile",))


class TestStateContract:
    def test_require_names_the_producer(self):
        state = PipelineState(params=PARAMS, interconnect=FIG1, options=OPTS)
        with pytest.raises(PassError, match="'schedule' pass"):
            state.require("schedules", "schedule")

    def test_misordered_pipeline_fails_fast(self):
        pipe = PassPipeline([make_pass("allocate")])
        state = PipelineState(params=PARAMS, interconnect=FIG1, options=OPTS,
                              system=dp_system())
        with pytest.raises(PassError, match="run the 'schedule' pass first"):
            pipe.run(state)

    def test_partial_pipeline_exposes_intermediate_state(self):
        pipe = PassPipeline([make_pass("decompose-chains"),
                             make_pass("schedule")])
        state = run_pipeline(dp_spec(), PARAMS, FIG1, OPTS, pipeline=pipe)
        assert state.ir is not None
        assert state.schedules is not None
        assert state.design is None

    def test_synthesize_rejects_designless_pipeline(self):
        pipe = PassPipeline([make_pass("decompose-chains")])
        with pytest.raises(ValueError, match="lower-microcode"):
            synthesize(dp_spec(), PARAMS, FIG1, OPTS, pipeline=pipe)

    def test_run_pipeline_rejects_other_sources(self):
        with pytest.raises(TypeError, match="RecurrenceSystem"):
            run_pipeline(object(), PARAMS, FIG1, OPTS)


class TestTracing:
    def test_per_pass_spans_recorded(self):
        from repro.obs import TRACER

        TRACER.reset()
        TRACER.enabled = True
        try:
            run_pipeline(dp_spec(), PARAMS, FIG1, OPTS)
            timers = TRACER.snapshot()["timers"]
        finally:
            TRACER.enabled = False
            TRACER.reset()
        for name in default_pipeline().names:
            assert f"pass.{name}" in timers, (name, sorted(timers))

    def test_print_ir_after_emits_through_callback(self):
        chunks = []
        pipe = default_pipeline(print_ir_after=("decompose-chains",),
                                emit=chunks.append)
        run_pipeline(dp_system(), PARAMS, FIG1, OPTS, pipeline=pipe)
        assert len(chunks) == 1
        assert "IR after pass decompose-chains" in chunks[0]
        assert "design.system" in chunks[0]


class TestCsePipeline:
    def test_cse_design_verifies_and_uses_fewer_cells(self):
        desc = CaseDescriptor(n=5, lo=1, hi=1,
                              args=((1, (0, 0)), (1, (0, 0))),
                              body="min_plus", combine="min",
                              pool=(2, -3, 5, 7))
        spec, params = build_spec(desc), {"n": desc.n}
        plain = synthesize(spec, params, FIG1, OPTS)
        pipe = default_pipeline().with_pass(make_pass("cse"),
                                            after="fuse-accumulators")
        merged = synthesize(spec, params, FIG1, OPTS, pipeline=pipe)
        report = verify_design(merged, build_inputs(desc))
        assert report.ok, report.failures
        n_plain = sum(len(m.equations)
                      for m in plain.system.modules.values())
        n_merged = sum(len(m.equations)
                       for m in merged.system.modules.values())
        assert n_merged < n_plain
