"""The problems library: every system matches its golden model."""

import random

import numpy as np
import pytest

from repro.ir import check_system, run_system
from repro.problems import (
    convolution_backward,
    convolution_forward,
    convolution_inputs,
    dp_inputs,
    dp_system,
    matmul_inputs,
    matmul_system,
    parenthesization_inputs,
    parenthesization_system,
    recursive_convolution_backward,
    recursive_convolution_forward,
    recursive_convolution_inputs,
    shortest_path_inputs,
    shortest_path_system,
)
from repro.reference import (
    convolve,
    matrix_chain,
    min_plus_dp,
    optimal_parenthesization,
    recursive_convolve,
)

RNG = random.Random(2024)


class TestConvolution:
    @pytest.mark.parametrize("builder", [convolution_backward,
                                         convolution_forward])
    @pytest.mark.parametrize("n,s", [(5, 2), (8, 3), (12, 5)])
    def test_matches_reference(self, builder, n, s):
        x = [RNG.randint(-9, 9) for _ in range(n)]
        w = [RNG.randint(-4, 4) for _ in range(s)]
        system = builder()
        check_system(system, {"n": n, "s": s})
        res = run_system(system, {"n": n, "s": s}, convolution_inputs(x, w))
        assert [res[(i,)] for i in range(1, n + 1)] == convolve(x, w)

    def test_reference_matches_numpy(self):
        x = [RNG.uniform(-1, 1) for _ in range(20)]
        w = [RNG.uniform(-1, 1) for _ in range(5)]
        ours = convolve(x, w)
        full = np.convolve(x, w)
        np.testing.assert_allclose(ours, full[: len(x)], rtol=1e-12)


class TestRecursiveConvolution:
    @pytest.mark.parametrize("n,s", [(6, 2), (10, 3)])
    def test_forward_matches_reference(self, n, s):
        w = [round(RNG.uniform(-0.9, 0.9), 3) for _ in range(s)]
        seeds = [round(RNG.uniform(-2, 2), 3) for _ in range(s)]
        system = recursive_convolution_forward()
        check_system(system, {"n": n, "s": s})
        res = run_system(system, {"n": n, "s": s},
                         recursive_convolution_inputs(w, seeds))
        expected = recursive_convolve(w, seeds, n)
        got = [res[(i,)] for i in range(1, n + 1)]
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    @pytest.mark.parametrize("n,s", [(6, 2), (10, 3)])
    def test_backward_matches_reference(self, n, s):
        w = [round(RNG.uniform(-0.9, 0.9), 3) for _ in range(s)]
        seeds = [round(RNG.uniform(-2, 2), 3) for _ in range(s)]
        system = recursive_convolution_backward(s)
        check_system(system, {"n": n})
        res = run_system(system, {"n": n},
                         recursive_convolution_inputs(w, seeds))
        expected = recursive_convolve(w, seeds, n)
        got = [res[(i,)] for i in range(1, n + 1)]
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_seed_validation(self):
        inputs = recursive_convolution_inputs([1.0], [2.0])
        with pytest.raises(KeyError):
            inputs["seed"](1)


class TestDynamicProgramming:
    @pytest.mark.parametrize("n", [3, 5, 8, 12])
    def test_min_plus(self, n):
        seeds = [RNG.randint(1, 20) for _ in range(n - 1)]
        res = run_system(dp_system(), {"n": n}, dp_inputs(seeds))
        ref = min_plus_dp(seeds, n)
        assert all(res[k] == ref[k] for k in res)

    def test_seed_off_diagonal_rejected(self):
        inputs = dp_inputs([1, 2, 3])
        with pytest.raises(KeyError):
            inputs["c0"](1, 3)


class TestParenthesization:
    @pytest.mark.parametrize("dims", [
        (30, 35, 15, 5, 10, 20, 25),       # CLRS example
        (5, 10, 3, 12, 5, 50, 6),
        (10, 20, 30),
    ])
    def test_matches_reference(self, dims):
        n = len(dims)
        system = parenthesization_system()
        res = run_system(system, {"n": n}, parenthesization_inputs(dims))
        ref = matrix_chain(dims)
        for key, value in res.items():
            assert value == ref[key]

    def test_clrs_optimal_cost(self):
        """The classic CLRS chain: optimal cost 15125."""
        cost, tree = optimal_parenthesization((30, 35, 15, 5, 10, 20, 25))
        assert cost == 15125
        assert tree.count("*") == 5

    def test_inner_dimension_mismatch_detected(self):
        from repro.problems import paren_body

        with pytest.raises(ValueError):
            paren_body()((2, 3, 0, "A1"), (4, 5, 0, "A2"))


class TestShortestPath:
    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_matches_min_plus(self, n):
        costs = [RNG.randint(1, 15) for _ in range(n - 1)]
        res = run_system(shortest_path_system(), {"n": n},
                         shortest_path_inputs(costs))
        ref = min_plus_dp(costs, n)
        assert all(res[k] == ref[k] for k in res)

    def test_distances_never_exceed_direct_sums(self):
        n = 8
        costs = [RNG.randint(1, 9) for _ in range(n - 1)]
        res = run_system(shortest_path_system(), {"n": n},
                         shortest_path_inputs(costs))
        for (i, j), d in res.items():
            assert d <= sum(costs[i - 1: j - 1])


class TestMatmul:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_matches_numpy(self, n):
        A = np.arange(n * n).reshape(n, n) - 3
        B = (np.arange(n * n).reshape(n, n) * 2 - n) % 7
        system = matmul_system()
        check_system(system, {"n": n})
        res = run_system(system, {"n": n}, matmul_inputs(A, B))
        C = A @ B
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                assert res[(i, j)] == C[i - 1, j - 1]
