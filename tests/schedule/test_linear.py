"""Linear schedules: evaluation, validity, makespan."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.deps import DependenceMatrix
from repro.ir.indexset import Polyhedron
from repro.schedule import LinearSchedule


class TestEvaluation:
    def test_time_tuple_and_mapping(self):
        s = LinearSchedule(("i", "k"), (1, 1))
        assert s.time((2, 3)) == 5
        assert s.time({"i": 2, "k": 3}) == 5

    def test_offset(self):
        s = LinearSchedule(("i",), (2,), offset=-3)
        assert s.time((4,)) == 5

    def test_times_vectorised(self):
        s = LinearSchedule(("i", "k"), (1, 2))
        pts = np.array([[1, 1], [2, 3]])
        np.testing.assert_array_equal(s.times(pts), [3, 8])

    def test_of_vector_ignores_offset(self):
        s = LinearSchedule(("i",), (3,), offset=7)
        assert s.of_vector((2,)) == 6

    def test_arity_checks(self):
        with pytest.raises(ValueError):
            LinearSchedule(("i", "j"), (1,))
        with pytest.raises(ValueError):
            LinearSchedule(("i",), (1,)).time((1, 2))

    @given(st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
           st.tuples(st.integers(-9, 9), st.integers(-9, 9)),
           st.tuples(st.integers(-9, 9), st.integers(-9, 9)))
    def test_linearity(self, coeffs, p, q):
        s = LinearSchedule(("i", "j"), coeffs)
        summed = tuple(a + b for a, b in zip(p, q))
        assert s.time(summed) == s.time(p) + s.time(q) - s.offset

    def test_shifted(self):
        s = LinearSchedule(("i",), (1,))
        assert s.shifted(4).time((1,)) == 5


class TestValidity:
    def test_satisfies(self):
        D = DependenceMatrix.from_dict({"y": [(0, 1)], "w": [(1, 0)]})
        assert LinearSchedule(("i", "k"), (1, 1)).satisfies(D)
        assert not LinearSchedule(("i", "k"), (1, 0)).satisfies(D)

    def test_violated_lists_offenders(self):
        D = DependenceMatrix.from_dict({"y": [(0, 1)], "w": [(1, 0)]})
        bad = LinearSchedule(("i", "k"), (1, -1)).violated(D)
        assert [v.variable for v in bad] == ["y"]


class TestMakespan:
    def test_exact_over_box(self):
        s = LinearSchedule(("i", "k"), (1, 1))
        dom = Polyhedron.box({"i": (1, "n"), "k": (1, "s")},
                             params=("n", "s"))
        assert s.makespan(dom, {"n": 10, "s": 4}) == (10 + 4) - 2

    def test_time_range(self):
        s = LinearSchedule(("i",), (-1,))
        dom = Polyhedron.box({"i": (1, 5)})
        assert s.time_range(dom, {}) == (-5, -1)

    def test_empty_domain_raises(self):
        s = LinearSchedule(("i",), (1,))
        dom = Polyhedron.box({"i": (3, 2)})
        with pytest.raises(ValueError):
            s.makespan(dom, {})
