"""Joint multi-module scheduling — reproduces λ, μ, σ of Section V.A."""

import numpy as np
import pytest

from repro.core import link_constraints
from repro.deps import system_dependence_matrices
from repro.problems import dp_system
from repro.schedule import (
    GlobalConstraint,
    LinearSchedule,
    ModuleSchedulingProblem,
    NoScheduleExists,
    normalise_start,
    solve_multimodule,
)


def dp_problems(n=8):
    system = dp_system()
    params = {"n": n}
    deps = system_dependence_matrices(system)
    problems = []
    for name, module in system.modules.items():
        pts = np.array(list(module.domain.points(params)), dtype=np.int64)
        problems.append(ModuleSchedulingProblem(name, module.dims,
                                                deps[name], pts))
    return problems, link_constraints(system, params)


class TestPaperSolution:
    def test_lambda_mu_sigma(self):
        """Optimal: λ = -i+2j-k, μ = -2i+j+k, σ = -2i+2j."""
        problems, constraints = dp_problems()
        sol = solve_multimodule(problems, constraints, bound=3)
        assert sol.schedules["m1"].coeffs == (-1, 2, -1)
        assert sol.schedules["m2"].coeffs == (-2, 1, 1)
        assert sol.schedules["comb"].coeffs == (-2, 2)

    def test_constraint_names_match_paper(self):
        _, constraints = dp_problems()
        names = sorted({c.name for c in constraints})
        assert names == ["A1", "A2", "A3", "A4", "A5"]

    def test_all_gaps_respected(self):
        problems, constraints = dp_problems()
        sol = solve_multimodule(problems, constraints, bound=3)
        for gc in constraints:
            dst = gc.dst_points @ np.array(
                sol.schedules[gc.dst_module].coeffs) \
                + sol.schedules[gc.dst_module].offset
            src = gc.src_points @ np.array(
                sol.schedules[gc.src_module].coeffs) \
                + sol.schedules[gc.src_module].offset
            assert (dst - src >= gc.min_gap).all()

    def test_a5_gap_is_exactly_one(self):
        """σ = max(λ, μ) + 1 for the paper's solution."""
        problems, constraints = dp_problems()
        sol = solve_multimodule(problems, constraints, bound=3)
        for gc in constraints:
            if gc.name != "A5":
                continue
            dst = gc.dst_points @ np.array(sol.schedules["comb"].coeffs)
            src = gc.src_points @ np.array(
                sol.schedules[gc.src_module].coeffs)
            assert set(dst - src) == {1}

    def test_stable_across_sizes(self):
        for n in (6, 10):
            problems, constraints = dp_problems(n)
            sol = solve_multimodule(problems, constraints, bound=3)
            assert sol.schedules["m1"].coeffs == (-1, 2, -1)


class TestMechanics:
    def test_normalise_start(self):
        problems, constraints = dp_problems()
        sol = solve_multimodule(problems, constraints, bound=3)
        shifted = normalise_start(sol.schedules, problems, start=0)
        lo = min(
            int(shifted[p.name].times(p.points).min())
            for p in problems if p.points.shape[0])
        assert lo == 0
        # Gaps unchanged by a common shift.
        for gc in constraints:
            dst = gc.dst_points @ np.array(
                shifted[gc.dst_module].coeffs) + shifted[gc.dst_module].offset
            src = gc.src_points @ np.array(
                shifted[gc.src_module].coeffs) + shifted[gc.src_module].offset
            assert (dst - src >= gc.min_gap).all()

    def test_infeasible_raises(self):
        problems, _ = dp_problems(6)
        # Impossible: m1 must precede itself through a fake constraint loop.
        m1 = next(p for p in problems if p.name == "m1")
        pts = m1.points[:4]
        fake = GlobalConstraint("loop", "m1", "m1", pts, pts, min_gap=1)
        with pytest.raises(NoScheduleExists):
            solve_multimodule(problems, [fake], bound=2)

    def test_empty_module_allowed(self):
        problems, constraints = dp_problems(6)
        empty = ModuleSchedulingProblem(
            "ghost", ("i",), None, np.zeros((0, 1), dtype=np.int64))
        sol = solve_multimodule(problems + [empty], constraints, bound=3)
        assert "ghost" in sol.schedules

    def test_unknown_constraint_module_rejected(self):
        problems, _ = dp_problems(6)
        bad = GlobalConstraint("x", "nope", "m1",
                               np.zeros((0, 3)), np.zeros((0, 3)))
        with pytest.raises(KeyError):
            solve_multimodule(problems, [bad])
