"""Schedule offsets: systems that no homogeneous assignment can serve."""

import numpy as np
import pytest

from repro.schedule import (
    GlobalConstraint,
    ModuleSchedulingProblem,
    NoScheduleExists,
    solve_multimodule,
)


def mirror_problem():
    """Two 1-index modules over i in [-3, 3] with a same-point link:
    module B at point i reads module A at point i.  The required gap
    ``T_B(i) - T_A(i) >= 1`` is a constant-sign requirement over a domain
    that crosses zero — impossible homogeneously, trivial with an offset."""
    pts = np.arange(-3, 4, dtype=np.int64).reshape(-1, 1)
    a = ModuleSchedulingProblem("A", ("i",), None, pts)
    b = ModuleSchedulingProblem("B", ("i",), None, pts)
    link = GlobalConstraint("same-point", "B", "A", pts, pts, min_gap=1)
    return [a, b], [link]


class TestOffsets:
    def test_homogeneous_infeasible(self):
        problems, constraints = mirror_problem()
        with pytest.raises(NoScheduleExists):
            solve_multimodule(problems, constraints, bound=3, offsets=(0,))

    def test_offset_solves(self):
        problems, constraints = mirror_problem()
        sol = solve_multimodule(problems, constraints, bound=3,
                                offsets=range(-2, 3))
        ta = sol.schedules["A"]
        tb = sol.schedules["B"]
        for i in range(-3, 4):
            assert tb.time((i,)) - ta.time((i,)) >= 1

    def test_offset_solution_is_minimal_makespan(self):
        problems, constraints = mirror_problem()
        sol = solve_multimodule(problems, constraints, bound=3,
                                offsets=range(-2, 3))
        # Optimal: both schedules constant-ish with B one cycle after A;
        # span of the 7-point domain cannot beat 1 given the gap.
        assert sol.makespan == 1


class TestSynthesizeEscalation:
    def test_synthesize_escalates_schedule_offsets(self):
        """The top-level pipeline retries with offsets when homogeneous
        scheduling fails (using an artificial same-point linked system)."""
        from repro.core import synthesize
        from repro.arrays import LINEAR_BIDIR
        from repro.ir import (
            Equation,
            ExternalRef,
            InputRule,
            LinkRule,
            Module,
            OutputSpec,
            Polyhedron,
            RecurrenceSystem,
        )
        from repro.ir.affine import var

        I = var("i")
        domain = Polyhedron.box({"i": (-3, 3)})
        a = Module("A", ("i",), domain,
                   [Equation("x", (InputRule("inp", (I,)),))])
        b = Module("B", ("i",), domain,
                   [Equation("y", (LinkRule(ExternalRef.of("A", "x", I)),))])
        system = RecurrenceSystem(
            "mirror", [a, b],
            outputs=[OutputSpec("B", "y", domain, (I,))],
            input_names=("inp",))
        design = synthesize(system, {}, LINEAR_BIDIR)
        for i in range(-3, 4):
            assert design.schedules["B"].time((i,)) \
                - design.schedules["A"].time((i,)) >= 1
