"""Optimal schedule search: the paper's worked solutions + LP cross-checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import DependenceMatrix, dependence_dag, levels
from repro.ir.indexset import Polyhedron, ge, le
from repro.ir.affine import var
from repro.schedule import (
    NoScheduleExists,
    fastest_free_schedule,
    lp_lower_bound,
    optimal_schedule,
    valid_coefficient_vectors,
)

CONV_DOMAIN = Polyhedron.box({"i": (1, "n"), "k": (1, "s")},
                             params=("n", "s"))
CONV_PARAMS = {"n": 12, "s": 4}


def conv4_deps():
    return DependenceMatrix.from_dict(
        {"y": [(0, 1)], "x": [(1, 1)], "w": [(1, 0)]})


def conv5_deps():
    return DependenceMatrix.from_dict(
        {"y": [(0, -1)], "x": [(1, 1)], "w": [(1, 0)]})


class TestPaperSolutions:
    def test_convolution_backward_T(self):
        """Recurrence (4): optimal T(i,k) = i + k."""
        sol = optimal_schedule(conv4_deps(), CONV_DOMAIN, CONV_PARAMS)
        assert sol.schedule.coeffs == (1, 1)

    def test_convolution_forward_T(self):
        """Recurrence (5): optimal T(i,k) = 2i - k."""
        sol = optimal_schedule(conv5_deps(), CONV_DOMAIN, CONV_PARAMS)
        assert sol.schedule.coeffs == (2, -1)

    def test_dp_coarse_T(self):
        """Section IV: D^c gives T(i,j) = j - i."""
        i, j = var("i"), var("j")
        dom = Polyhedron(("i", "j"), [ge(i, 1), le(j, "n"), ge(j - i, 1)],
                         params=("n",))
        D = DependenceMatrix.from_dict({"c": [(0, 1), (-1, 0)]})
        sol = optimal_schedule(D, dom, {"n": 10})
        assert sol.schedule.coeffs == (-1, 1)

    def test_optimum_stable_across_sizes(self):
        for params in ({"n": 6, "s": 3}, {"n": 20, "s": 6}):
            sol = optimal_schedule(conv4_deps(), CONV_DOMAIN, params)
            assert sol.schedule.coeffs == (1, 1)


class TestSearchMechanics:
    def test_all_candidates_valid(self):
        D = conv4_deps()
        for coeffs in valid_coefficient_vectors(D, 2, 2):
            assert all(sum(c * x for c, x in zip(coeffs, d.vector)) >= 1
                       for d in D.vectors)

    def test_infeasible_system(self):
        D = DependenceMatrix.from_dict({"x": [(1,)], "y": [(-1,)]})
        dom = Polyhedron.box({"i": (1, 5)})
        with pytest.raises(NoScheduleExists):
            optimal_schedule(D, dom, {})

    def test_optima_all_achieve_makespan(self):
        sol = optimal_schedule(conv4_deps(), CONV_DOMAIN, CONV_PARAMS)
        pts = list(CONV_DOMAIN.points(CONV_PARAMS))
        for cand in sol.optima:
            times = [cand.time(p) for p in pts]
            assert max(times) - min(times) == sol.makespan

    def test_deterministic(self):
        a = optimal_schedule(conv5_deps(), CONV_DOMAIN, CONV_PARAMS)
        b = optimal_schedule(conv5_deps(), CONV_DOMAIN, CONV_PARAMS)
        assert a.schedule == b.schedule


class TestLowerBounds:
    def test_lp_bound_at_most_integer_optimum(self):
        for deps in (conv4_deps(), conv5_deps()):
            sol = optimal_schedule(deps, CONV_DOMAIN, CONV_PARAMS)
            bound = lp_lower_bound(deps, CONV_DOMAIN, CONV_PARAMS)
            assert bound <= sol.makespan + 1e-9

    def test_lp_bound_tight_for_conv4(self):
        sol = optimal_schedule(conv4_deps(), CONV_DOMAIN, CONV_PARAMS)
        bound = lp_lower_bound(conv4_deps(), CONV_DOMAIN, CONV_PARAMS)
        assert abs(bound - sol.makespan) < 1e-6

    def test_critical_path_bounds_any_schedule(self):
        deps = conv4_deps()
        depth = fastest_free_schedule(deps, CONV_DOMAIN, CONV_PARAMS)
        sol = optimal_schedule(deps, CONV_DOMAIN, CONV_PARAMS)
        assert depth <= sol.makespan

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(-2, 2), st.integers(-2, 2)).filter(
            lambda d: d != (0, 0)),
        min_size=1, max_size=4, unique=True))
    def test_random_systems_lp_vs_enumeration(self, vectors):
        """For random dependence sets: whenever enumeration finds an optimum,
        the LP relaxation never exceeds it, and every schedule respects the
        concrete dependence DAG."""
        deps = DependenceMatrix.from_dict({"v": vectors})
        dom = Polyhedron.box({"i": (1, 5), "j": (1, 5)})
        try:
            sol = optimal_schedule(deps, dom, {}, bound=3)
        except NoScheduleExists:
            return
        bound = lp_lower_bound(deps, dom, {})
        assert bound <= sol.makespan + 1e-9
        try:
            dag = dependence_dag(dom, deps, {})
        except ValueError:
            return  # cyclic dependence sets can still admit T when sources
            # fall outside the box; the DAG check does not apply
        lv = levels(dag)
        for node, level in lv.items():
            assert sol.schedule.time(node) >= level + min(
                sol.schedule.time(p) for p in lv)


class TestZeroVectorRejection:
    """Eq. (2) requires a nonsingular transformation: the all-zero time
    vector can never be part of one, even when there are no dependences to
    rule it out."""

    def test_empty_dependence_matrix_excludes_zero(self):
        deps = DependenceMatrix()
        vectors = list(valid_coefficient_vectors(deps, 2, 1))
        assert (0, 0) not in vectors
        assert len(vectors) == 3 ** 2 - 1

    def test_none_is_treated_as_no_deps(self):
        vectors = list(valid_coefficient_vectors(None, 2, 1))
        assert (0, 0) not in vectors

    def test_with_deps_unchanged(self):
        vectors = list(valid_coefficient_vectors(conv4_deps(), 2, 3))
        assert (0, 0) not in vectors
        assert all(any(c != 0 for c in v) for v in vectors)

    def test_schedule_without_deps_is_not_constant(self):
        dom = Polyhedron.box({"i": (1, 4), "k": (1, 4)})
        sol = optimal_schedule(DependenceMatrix(), dom, {})
        assert any(c != 0 for c in sol.schedule.coeffs)
        # Best a single nonzero unit vector can do on a 4x4 box.
        assert sol.makespan == 3


class TestVectorizedEquivalence:
    """The vectorised solver must be bit-identical to the original
    per-candidate loop (kept as ``optimal_schedule_reference``)."""

    CASES = [
        (conv4_deps, CONV_PARAMS),
        (conv5_deps, CONV_PARAMS),
        (conv4_deps, {"n": 6, "s": 3}),
        (conv5_deps, {"n": 20, "s": 6}),
    ]

    @pytest.mark.parametrize("make_deps,params", CASES)
    def test_identical_solutions(self, make_deps, params):
        from repro.schedule.solver import optimal_schedule_reference
        fast = optimal_schedule(make_deps(), CONV_DOMAIN, params)
        slow = optimal_schedule_reference(make_deps(), CONV_DOMAIN, params)
        assert fast == slow  # full dataclass: schedule, makespan,
        # optima (order included) and candidates_examined

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(-2, 2), st.integers(-2, 2)).filter(
            lambda d: d != (0, 0)),
        min_size=1, max_size=3, unique=True))
    def test_random_systems_identical(self, vectors):
        from repro.schedule.solver import optimal_schedule_reference
        deps = DependenceMatrix.from_dict({"v": vectors})
        dom = Polyhedron.box({"i": (1, 5), "j": (1, 5)})
        try:
            slow = optimal_schedule_reference(deps, dom, {}, bound=2)
        except NoScheduleExists:
            with pytest.raises(NoScheduleExists):
                optimal_schedule(deps, dom, {}, bound=2)
            return
        fast = optimal_schedule(deps, dom, {}, bound=2)
        assert fast == slow

    @pytest.mark.parametrize("make_deps,params", CASES)
    def test_lp_early_exit_same_optimum(self, make_deps, params):
        full = optimal_schedule(make_deps(), CONV_DOMAIN, params)
        pruned = optimal_schedule(make_deps(), CONV_DOMAIN, params,
                                  use_lp_bound=True)
        assert pruned.schedule == full.schedule
        assert pruned.makespan == full.makespan
