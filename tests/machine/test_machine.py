"""The systolic machine: microcode compilation and cycle-accurate execution."""

import pytest

from repro.core import link_constraints, synthesize
from repro.ir import trace_execution
from repro.machine import (
    CausalityError,
    LocalityError,
    compile_design,
    run,
)
from repro.problems import (
    convolution_backward,
    convolution_inputs,
    dp_inputs,
    dp_system,
)
from repro.reference import convolve, min_plus_dp
from repro.schedule import LinearSchedule
from repro.space import SpaceMap
from repro.arrays import FIG1_UNIDIRECTIONAL, LINEAR_BIDIR


@pytest.fixture(scope="module")
def conv_setup():
    system = convolution_backward()
    params = {"n": 8, "s": 3}
    x = [2, -1, 3, 0, 5, -2, 1, 4]
    w = [1, -2, 3]
    inputs = convolution_inputs(x, w)
    trace = trace_execution(system, params, inputs)
    return system, params, x, w, inputs, trace


class TestMicrocode:
    def test_compiles_w2(self, conv_setup):
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, 1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 1),))}
        mc = compile_design(trace, schedules, smaps,
                            LINEAR_BIDIR.decomposer())
        assert mc.operations and mc.injections and mc.hops
        assert mc.span >= 1

    def test_causality_violation_detected(self, conv_setup):
        """An invalid schedule (wrong sign on y's dependence) must be caught
        at compile time, not produce wrong numbers."""
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, -1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 1),))}
        with pytest.raises(CausalityError):
            compile_design(trace, schedules, smaps,
                           LINEAR_BIDIR.decomposer())

    def test_locality_violation_detected(self, conv_setup):
        """A space map needing a 2-cell jump in 1 cycle must be rejected."""
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, 1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 2),))}
        with pytest.raises(LocalityError):
            compile_design(trace, schedules, smaps,
                           LINEAR_BIDIR.decomposer())

    def test_hops_are_single_links(self, conv_setup):
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, 1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 1),))}
        mc = compile_design(trace, schedules, smaps,
                            LINEAR_BIDIR.decomposer())
        moves = set(LINEAR_BIDIR.moves())
        for hop in mc.hops:
            diff = tuple(b - a for a, b in zip(hop.src, hop.dst))
            assert diff in moves


class TestExecution:
    def test_w2_computes_convolution(self, conv_setup):
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, 1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 1),))}
        mc = compile_design(trace, schedules, smaps,
                            LINEAR_BIDIR.decomposer())
        result = run(mc, trace, inputs, strict=True)
        expected = convolve(x, w)
        got = [result.results[(i,)] for i in range(1, len(x) + 1)]
        assert got == expected

    def test_machine_never_peeks(self, conv_setup):
        """Feeding different inputs through the same microcode changes the
        results — proof the machine recomputes rather than replays."""
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, 1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 1),))}
        mc = compile_design(trace, schedules, smaps,
                            LINEAR_BIDIR.decomposer())
        x2 = [v + 1 for v in x]
        other_inputs = convolution_inputs(x2, w)
        result = run(mc, trace, other_inputs, strict=True)
        got = [result.results[(i,)] for i in range(1, len(x) + 1)]
        assert got == convolve(x2, w)

    def test_stats_sane(self, conv_setup):
        system, params, x, w, inputs, trace = conv_setup
        schedules = {"conv": LinearSchedule(("i", "k"), (1, 1))}
        smaps = {"conv": SpaceMap(("i", "k"), ((0, 1),))}
        mc = compile_design(trace, schedules, smaps,
                            LINEAR_BIDIR.decomposer())
        stats = run(mc, trace, inputs).stats
        assert stats.cells_used == 3            # s cells
        assert stats.operations == len(trace.events) - stats.injections
        assert 0 < stats.utilization <= 1
        assert not stats.capacity_violations


class TestDpOnMachine:
    def test_fig1_design_runs_dp(self):
        n = 7
        system = dp_system()
        seeds = [3, 1, 4, 1, 5, 9]
        inputs = dp_inputs(seeds)
        design = synthesize(system, {"n": n}, FIG1_UNIDIRECTIONAL)
        trace = trace_execution(system, {"n": n}, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            FIG1_UNIDIRECTIONAL.decomposer())
        result = run(mc, trace, inputs, strict=True)
        ref = min_plus_dp(seeds, n)
        for key, value in result.results.items():
            assert value == ref[key]

    def test_intra_cycle_ordering(self):
        """a'/b' updates and the c' compute share a cell and cycle; the
        machine must order them so c' sees fresh operands."""
        n = 6
        system = dp_system()
        seeds = [2, 7, 1, 8, 2]
        inputs = dp_inputs(seeds)
        design = synthesize(system, {"n": n}, FIG1_UNIDIRECTIONAL)
        trace = trace_execution(system, {"n": n}, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            FIG1_UNIDIRECTIONAL.decomposer())
        result = run(mc, trace, inputs, strict=True)
        assert result.results == trace.results
