"""Engine-equivalence matrix: the level-grouped kernel machine and the
native C-kernel engine must be bit-identical to both the interpreted
oracle and the compiled engine — values, results, stats, the canonical
event stream, and every verification report, single-seed or batched."""

import random
from fractions import Fraction

import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL, LINEAR_BIDIR
from repro.core import synthesize
from repro.core.verify import verify_design
from repro.ir import trace_execution
from repro.machine import (
    compile_design,
    lower_vector,
    run,
    vectorize,
)
from repro.obs import EventLog, canonical_order
from repro.problems import (
    convolution_backward,
    convolution_inputs,
    dp_inputs,
    dp_system,
    input_factory,
)

#: The full engine ladder.  ``native`` degrades to the vector paths when
#: no C toolchain is present, so the matrix needs no skip-markers — it
#: cross-checks real C kernels where a compiler exists and the dispatch
#: plumbing everywhere else.
ENGINES = ("interpreted", "compiled", "vector", "native")


def cross_check(design, inputs, strict=True):
    """Run all four engines on one design and assert identical output."""
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    runs = {engine: run(mc, trace, inputs, strict=strict, engine=engine)
            for engine in ENGINES}
    oracle = runs["interpreted"]
    for engine in ("compiled", "vector", "native"):
        assert runs[engine].values == oracle.values, engine
        assert runs[engine].results == oracle.results, engine
        assert runs[engine].stats == oracle.stats, engine
    return runs


class TestEquivalenceMatrix:
    def test_dp_fig1(self, dp_design_fig1, dp_host_inputs):
        cross_check(dp_design_fig1, dp_host_inputs)

    def test_dp_fig2(self, dp_design_fig2, dp_host_inputs):
        cross_check(dp_design_fig2, dp_host_inputs)

    def test_conv_backward(self, conv_design_backward):
        inputs = convolution_inputs([2, -1, 3, 0, 5, -2, 1, 4, 6, -3],
                                    [1, -2, 3, 2])
        cross_check(conv_design_backward, inputs)

    @pytest.mark.parametrize("n", [3, 14])
    def test_dp_small_and_large(self, n):
        design = synthesize(dp_system(), {"n": n}, FIG1_UNIDIRECTIONAL)
        rng = random.Random(n)
        cross_check(design,
                    dp_inputs([rng.randint(1, 40) for _ in range(n - 1)]))

    @pytest.mark.parametrize("n,s", [(6, 3), (16, 5)])
    def test_conv_small_and_large(self, n, s):
        design = synthesize(convolution_backward(), {"n": n, "s": s},
                            LINEAR_BIDIR)
        rng = random.Random(s)
        cross_check(design, convolution_inputs(
            [rng.randint(-9, 9) for _ in range(n)],
            [rng.randint(-3, 3) for _ in range(s)]))

    def test_fraction_inputs(self, dp_design_fig1):
        inputs = dp_inputs([Fraction(1, k + 2) for k in range(7)])
        runs = cross_check(dp_design_fig1, inputs)
        assert all(isinstance(v, Fraction)
                   for v in runs["vector"].results.values())

    def test_huge_int_inputs(self, dp_design_fig1):
        inputs = dp_inputs([2**80 + k for k in range(7)])
        cross_check(dp_design_fig1, inputs)


class TestEventStream:
    def test_canonical_stream_identical(self, dp_design_fig1,
                                        dp_host_inputs):
        design, inputs = dp_design_fig1, dp_host_inputs
        trace = trace_execution(design.system, design.params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        logs = {}
        for engine in ENGINES:
            log = EventLog()
            run(mc, trace, inputs, engine=engine, sink=log)
            logs[engine] = canonical_order(log)
        for engine in ("compiled", "vector", "native"):
            assert logs[engine] == logs["interpreted"], engine
        assert len(logs["vector"]) > 0


class TestVectorMachineObjects:
    def test_vectorize_reuses_compiled_lowering(self, dp_design_fig1,
                                                dp_host_inputs):
        design, inputs = dp_design_fig1, dp_host_inputs
        trace = trace_execution(design.system, design.params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        vm = lower_vector(mc, trace)
        again = vectorize(vm.compiled)
        a = vm.execute(inputs)
        b = again.execute(inputs)
        assert a.results == b.results
        assert a.values == b.values

    def test_want_values_false_keeps_results(self, dp_design_fig1,
                                             dp_host_inputs):
        design, inputs = dp_design_fig1, dp_host_inputs
        trace = trace_execution(design.system, design.params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        vm = lower_vector(mc, trace)
        full = vm.execute(inputs)
        slim = vm.execute(inputs, want_values=False)
        assert slim.results == full.results
        assert slim.values == {}

    def test_execute_batch_matches_single_runs(self, dp_design_fig1):
        design = dp_design_fig1
        factory = input_factory("dp", design.params)
        input_sets = [factory(s) for s in range(4)]
        trace = trace_execution(design.system, design.params, input_sets[0])
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        vm = lower_vector(mc, trace)
        matrix = vm.execute_batch(input_sets)
        assert matrix.shape[0] == 4
        for s, bindings in enumerate(input_sets):
            single = vm.execute(bindings)
            row = matrix[s].tolist()
            results = {host_key: row[vid]
                       for host_key, vid in vm.compiled.outputs}
            assert results == single.results

    def test_unknown_engine_rejected(self, dp_design_fig1, dp_host_inputs):
        design, inputs = dp_design_fig1, dp_host_inputs
        trace = trace_execution(design.system, design.params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        with pytest.raises(ValueError, match="vector"):
            run(mc, trace, inputs, engine="nope")


class TestBatchedVerification:
    @pytest.fixture(scope="class")
    def design(self):
        return synthesize(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)

    def test_report_identical_across_engines(self, design):
        factory = input_factory("dp", design.params)
        reports = {engine: verify_design(design, factory(5), engine=engine)
                   for engine in ENGINES}
        for engine, report in reports.items():
            assert report.ok, (engine, report.failures)
        stats = {e: r.machine_stats for e, r in reports.items()}
        for engine in ("compiled", "vector", "native"):
            assert stats[engine] == stats["interpreted"], engine

    def test_batched_equals_looped_seeds(self, design):
        factory = input_factory("dp", design.params)
        seeds = range(8)
        batched = verify_design(design, factory, engine="vector",
                                seeds=seeds)
        assert batched.ok and batched.seeds_checked == 8
        for s in seeds:
            single = verify_design(design, factory(s), engine="vector")
            assert single.ok
        looped = verify_design(design, factory, engine="compiled",
                               seeds=seeds)
        assert looped.ok and looped.seeds_checked == 8
        assert batched.machine_stats == looped.machine_stats

    def test_seeds_require_input_factory(self, design):
        with pytest.raises(TypeError, match="factory"):
            verify_design(design, {"c0": lambda i, j: 1}, engine="vector",
                          seeds=range(2))

    def test_batch_with_fraction_seed(self, design):
        def factory(seed):
            if seed == 1:
                return dp_inputs([Fraction(1, k + 2) for k in range(7)])
            return input_factory("dp", design.params)(seed)
        report = verify_design(design, factory, engine="vector",
                               seeds=range(3))
        assert report.ok, report.failures
