"""Compiled-engine equivalence: the lowered integer-indexed machine must be
bit-identical to the interpreted cycle-by-cycle oracle — values, results and
the full ``MachineStats`` block, violation lists included."""

import random

import numpy as np
import pytest

from repro.core import synthesize
from repro.arrays import FIG2_EXTENDED, LINEAR_BIDIR
from repro.ir import trace_execution
from repro.ir.evaluate import ValueKey
from repro.machine import (
    CapacityError,
    Microcode,
    MissingOperandError,
    compile_design,
    lower,
    run,
)
from repro.machine.microcode import Hop, Injection, Operation
from repro.problems import dp_inputs, matmul_inputs, matmul_system


def cross_check(design, inputs, strict=True, reclaim_registers=True):
    """Run both engines on one design and assert identical output."""
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    interp = run(mc, trace, inputs, strict=strict,
                 reclaim_registers=reclaim_registers)
    comp = run(mc, trace, inputs, strict=strict,
               reclaim_registers=reclaim_registers, engine="compiled")
    assert comp.values == interp.values
    assert comp.results == interp.results
    assert comp.stats == interp.stats
    return interp, comp


class TestEquivalence:
    def test_dp_fig1(self, dp_design_fig1, dp_host_inputs):
        cross_check(dp_design_fig1, dp_host_inputs)

    def test_dp_fig2(self, dp_design_fig2, dp_host_inputs):
        cross_check(dp_design_fig2, dp_host_inputs)

    def test_matmul(self):
        n = 4
        system = matmul_system()
        design = synthesize(system, {"n": n}, FIG2_EXTENDED)
        rng = random.Random(11)
        A = np.array([[rng.randint(-5, 5) for _ in range(n)]
                      for _ in range(n)])
        B = np.array([[rng.randint(-5, 5) for _ in range(n)]
                      for _ in range(n)])
        cross_check(design, matmul_inputs(A, B))

    def test_conv_backward(self, conv_design_backward):
        from repro.problems import convolution_inputs

        cross_check(conv_design_backward,
                    convolution_inputs([1, -2, 3, 0, 5, -1, 2, 4, -3, 1],
                                       [2, -1, 0, 3]))

    def test_conv_forward(self, conv_design_forward):
        from repro.problems import convolution_inputs

        cross_check(conv_design_forward,
                    convolution_inputs([1, -2, 3, 0, 5, -1, 2, 4, -3, 1],
                                       [2, -1, 0, 3]))

    def test_no_reclamation_mode(self, dp_design_fig2, dp_host_inputs):
        cross_check(dp_design_fig2, dp_host_inputs, reclaim_registers=False)

    def test_property_random_seeds(self, dp_design_fig2):
        """One lowering, many value passes: every seed must agree with a
        fresh interpreted run."""
        design = dp_design_fig2
        n = design.params["n"]
        base = dp_inputs([1] * (n - 1))
        trace = trace_execution(design.system, design.params, base)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        cm = lower(mc, trace)
        for seed in range(8):
            rng = random.Random(seed)
            inputs = dp_inputs([rng.randint(1, 9) for _ in range(n - 1)])
            interp = run(mc, trace, inputs)
            comp = cm.execute(inputs)
            assert comp.values == interp.values
            assert comp.results == interp.results
            assert comp.stats == interp.stats

    def test_unknown_engine_rejected(self, dp_design_fig2, dp_host_inputs):
        design = dp_design_fig2
        trace = trace_execution(design.system, design.params, dp_host_inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        with pytest.raises(ValueError, match="unknown engine"):
            run(mc, trace, dp_host_inputs, engine="quantum")


def hand_capacity_microcode():
    """Two values of one stream crossing one link in the same cycle — a
    capacity violation either engine must handle identically."""
    from repro.ir import (
        Equation,
        InputRule,
        Module,
        Polyhedron,
        RecurrenceSystem,
    )
    from repro.ir.affine import var

    I = var("i")
    domain = Polyhedron.box({"i": (1, 2)})
    eqn = Equation("x", (InputRule("inp", (I,)),))
    module = Module("m", ("i",), domain, [eqn])
    system = RecurrenceSystem("tiny", [module], outputs=[],
                              input_names=("inp",))
    trace = trace_execution(system, {}, {"inp": lambda i: i * 10})
    k1 = ValueKey("m", "x", (1,))
    k2 = ValueKey("m", "x", (2,))
    mc = Microcode()
    mc.placement = {k1: (0, (0,)), k2: (0, (0,))}
    mc.first_cycle = 0
    mc.last_cycle = 2
    mc.injections = [
        Injection(k1, (0,), 0, "inp", (1,)),
        Injection(k2, (0,), 0, "inp", (2,)),
    ]
    mc.hops = [
        Hop(k1, (0,), (1,), 1, ("m", "x")),
        Hop(k2, (0,), (1,), 1, ("m", "x")),
    ]
    mc.operations = [
        Operation(k1, (1,), 2, None, (k1,), ("m", "x")),
        Operation(k2, (1,), 2, None, (k2,), ("m", "x")),
    ]
    return mc, trace


class TestCapacityPath:
    def test_strict_raises_same_message(self):
        inputs = {"inp": lambda i: i * 10}
        messages = []
        for engine in ("interpreted", "compiled"):
            mc, trace = hand_capacity_microcode()
            with pytest.raises(CapacityError) as info:
                run(mc, trace, inputs, strict=True, engine=engine)
            messages.append(str(info.value))
        assert messages[0] == messages[1]

    def test_non_strict_records_and_keeps_running(self):
        """``strict=False`` must record the violation *and* complete the
        run — both engines, identical violation lists and values."""
        inputs = {"inp": lambda i: i * 10}
        mc, trace = hand_capacity_microcode()
        interp = run(mc, trace, inputs, strict=False)
        comp = run(mc, trace, inputs, strict=False, engine="compiled")
        for result in (interp, comp):
            assert result.stats.capacity_violations == [
                (1, (0,), (1,), ("m", "x"))]
            assert result.values[ValueKey("m", "x", (1,))] == 10
            assert result.values[ValueKey("m", "x", (2,))] == 20
        assert interp.stats == comp.stats

    def test_missing_hop_source_raises_both(self):
        inputs = {"inp": lambda i: i * 10}
        for engine in ("interpreted", "compiled"):
            mc, trace = hand_capacity_microcode()
            mc.hops[0] = Hop(ValueKey("m", "x", (1,)), (5,), (1,), 1,
                             ("m", "x"))
            with pytest.raises(MissingOperandError):
                run(mc, trace, inputs, strict=False, engine=engine)


class TestProtectedReclamation:
    def test_outputs_survive_reclamation(self, dp_design_fig2,
                                         dp_host_inputs):
        """Register reclamation must never evict protected output values:
        with reclamation on, every output is still present and correct at
        the end of the run (the machine's results match the reference)."""
        design = dp_design_fig2
        trace = trace_execution(design.system, design.params, dp_host_inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        for engine in ("interpreted", "compiled"):
            result = run(mc, trace, dp_host_inputs, reclaim_registers=True,
                         engine=engine)
            assert result.results == trace.results
            for out in design.system.outputs:
                for p in out.domain.points(design.params):
                    assert ValueKey(out.module, out.var, p) in result.values

    def test_reclamation_reduces_pressure(self, dp_design_fig2,
                                          dp_host_inputs):
        """Sanity of the vectorised interval sweep: reclaiming must not
        report more registers than holding everything forever."""
        reclaimed, _ = cross_check(dp_design_fig2, dp_host_inputs,
                                   reclaim_registers=True)
        kept, _ = cross_check(dp_design_fig2, dp_host_inputs,
                              reclaim_registers=False)
        assert (reclaimed.stats.max_registers_per_cell
                < kept.stats.max_registers_per_cell)
