"""The native C-kernel engine: artifact cache discipline (warm runs skip
codegen *and* the compiler, negative entries, key hygiene), the fallback
ladder (no toolchain / unsupported op / non-integer inputs / overflow),
and the ``lower-native`` pass.  Cross-engine value and event-stream
equivalence lives in the four-engine matrix of ``test_vector.py``."""

import warnings
from fractions import Fraction

import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL
from repro.codegen import (
    CKernelSource,
    DISABLE_ENV_VAR,
    Toolchain,
    emit_kernel,
    find_toolchain,
    kernel_key,
    load_or_build,
    native_available,
)
from repro.core import synthesize
from repro.core.verify import design_token, verify_design
from repro.ir import trace_execution
from repro.machine import compile_design, lower_vector, nativize, run
from repro.obs import TRACER
from repro.problems import dp_inputs, dp_system, input_factory
from repro.rewrite.pipeline import (
    DEFAULT_PASS_NAMES,
    PassPipeline,
    available_passes,
    make_pass,
    run_pipeline,
)
from repro.core.options import SynthesisOptions

requires_cc = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this machine")


def dp_program(n=8):
    """A lowered vector program plus its compiled machine for DP size n."""
    design = synthesize(dp_system(), {"n": n}, FIG1_UNIDIRECTIONAL)
    inputs = input_factory("dp", design.params)(0)
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    vm = lower_vector(mc, trace)
    return design, vm, inputs


def counter(name):
    return TRACER.counters.get(name, 0)


@pytest.fixture
def no_native(monkeypatch):
    """Force-disable the toolchain for one test, then re-probe."""
    monkeypatch.setenv(DISABLE_ENV_VAR, "1")
    assert find_toolchain(refresh=True) is None
    yield
    monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
    find_toolchain(refresh=True)


class TestKernelKey:
    def test_stable_and_toolchain_sensitive(self):
        tc_a = Toolchain(cc="/usr/bin/cc", fingerprint="cc|gcc 12")
        tc_b = Toolchain(cc="/usr/bin/cc", fingerprint="cc|gcc 13")
        assert kernel_key("material", tc_a) == kernel_key("material", tc_a)
        assert kernel_key("material", tc_a) != kernel_key("material", tc_b)
        assert kernel_key("other", tc_a) != kernel_key("material", tc_a)

    def test_design_token_is_canonical_json(self, dp_design_fig1):
        import json

        token = design_token(dp_design_fig1)
        data = json.loads(token)
        assert set(data) == {"system", "design"}
        # Stable across calls on equal designs (it keys the artifact cache).
        assert token == design_token(dp_design_fig1)


@requires_cc
class TestArtifactCache:
    def test_warm_design_keyed_hit_skips_emit_and_cc(self, tmp_path):
        _, vm, _ = dp_program()
        calls = []

        def provider():
            calls.append(1)
            return emit_kernel(vm.program)

        cold_compiles = counter("native.compiles")
        kernel, reason = load_or_build(provider, key_material="tok-a",
                                       cache_dir=tmp_path)
        assert reason is None and kernel is not None
        assert len(calls) == 1
        assert counter("native.compiles") == cold_compiles + 1

        hits = counter("native.cache_hits")
        again, reason = load_or_build(provider, key_material="tok-a",
                                      cache_dir=tmp_path)
        assert reason is None and again is not None
        assert len(calls) == 1          # codegen skipped entirely
        assert counter("native.compiles") == cold_compiles + 1  # cc skipped
        assert counter("native.cache_hits") == hits + 1

    def test_source_keyed_hit_skips_cc_only(self, tmp_path):
        _, vm, _ = dp_program()
        calls = []

        def provider():
            calls.append(1)
            return emit_kernel(vm.program)

        compiles = counter("native.compiles")
        first, _ = load_or_build(provider, cache_dir=tmp_path)
        second, _ = load_or_build(provider, cache_dir=tmp_path)
        assert first is not None and second is not None
        assert len(calls) == 2          # emit reruns without a token...
        assert counter("native.compiles") == compiles + 1   # ...cc does not

    def test_compile_failure_is_negative_cached(self, tmp_path):
        bad = CKernelSource(text="this is not C\n", node_count=1)
        calls = []

        def provider():
            calls.append(1)
            return bad

        stores = counter("native.negative_stores")
        kernel, reason = load_or_build(provider, key_material="bad-tok",
                                       cache_dir=tmp_path)
        assert kernel is None and "cc exited" in reason
        assert counter("native.negative_stores") == stores + 1

        neg = counter("native.negative_hits")
        kernel, reason = load_or_build(provider, key_material="bad-tok",
                                       cache_dir=tmp_path)
        assert kernel is None and "cc exited" in reason
        assert len(calls) == 1          # cc ran once per key, not per call
        assert counter("native.negative_hits") == neg + 1

    def test_artifacts_on_disk(self, tmp_path):
        _, vm, _ = dp_program()
        kernel, _ = load_or_build(lambda: emit_kernel(vm.program),
                                  key_material="tok-disk",
                                  cache_dir=tmp_path)
        assert kernel is not None
        sos = list(tmp_path.glob("*.so"))
        assert len(sos) == 1 and kernel.path == sos[0]
        assert len(list(tmp_path.glob("*.c"))) == 1
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestFallbackLadder:
    def test_no_toolchain_degrades_to_vector(self, no_native,
                                             dp_host_inputs):
        design = synthesize(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        trace = trace_execution(design.system, design.params,
                                dp_host_inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        nm = nativize(lower_vector(mc, trace).compiled)
        assert nm.kernel is None
        assert "toolchain" in nm.fallback_reason
        oracle = run(mc, trace, dp_host_inputs, engine="interpreted")
        fallbacks = counter("native.vector_fallbacks")
        got = run(mc, trace, dp_host_inputs, engine="native")
        assert got.results == oracle.results
        assert got.values == oracle.values
        assert counter("native.vector_fallbacks") > fallbacks

    @requires_cc
    def test_fraction_inputs_take_object_path(self):
        design, vm, _ = dp_program()
        inputs = dp_inputs([Fraction(1, k + 2) for k in range(7)])
        trace = trace_execution(design.system, design.params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        oracle = run(mc, trace, inputs, engine="interpreted")
        before = counter("native.input_fallbacks")
        with warnings.catch_warnings():
            # The one-time int64 fallback warning may or may not have fired
            # earlier in the session; keep this test order-independent.
            warnings.simplefilter("ignore", RuntimeWarning)
            got = run(mc, trace, inputs, engine="native")
        assert got.results == oracle.results
        assert all(isinstance(v, Fraction) for v in got.results.values())
        assert counter("native.input_fallbacks") == before + 1

    @requires_cc
    def test_kernel_overflow_reruns_object_path_exactly(self):
        design = synthesize(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        inputs = dp_inputs([2**62] * 7)     # fits int64, sums overflow
        trace = trace_execution(design.system, design.params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        oracle = run(mc, trace, inputs, engine="interpreted")
        before = counter("native.overflow_fallbacks")
        got = run(mc, trace, inputs, engine="native")
        assert got.results == oracle.results
        assert any(v > 2**63 for v in got.results.values())
        assert counter("native.overflow_fallbacks") == before + 1

    def test_unsupported_op_stays_on_vector_engine(self):
        from repro.ir import lower_plan
        from repro.ir.evaluate import build_execution_plan
        from repro.ir import (ComputeRule, Equation, InputRule, Module,
                              OutputSpec, Polyhedron, RecurrenceSystem,
                              Ref, make_op)
        from repro.ir.affine import var
        from repro.ir.predicates import at_least

        i = var("i")
        odd = make_op("odd", 2, lambda a, b: a ^ b)
        domain = Polyhedron.box({"i": (1, 6)})
        eqn = Equation("x", (
            InputRule("seed", (i,), guard=at_least(2 - i, 0)),
            ComputeRule(odd, (Ref.of("x", i - 1), Ref.of("x", i - 2)),
                        guard=at_least(i, 3)),
        ))
        system = RecurrenceSystem(
            "xorfib", [Module("xorfib", ("i",), domain, [eqn])],
            outputs=[OutputSpec("xorfib", "x", domain, (i,))],
            input_names=("seed",))
        plan = build_execution_plan(system, {})
        program = lower_plan(plan)
        assert not program.int_ok
        from repro.codegen import UnsupportedForNative
        with pytest.raises(UnsupportedForNative):
            emit_kernel(program)


class TestVerifyDesign:
    @requires_cc
    def test_native_verify_batched_and_warm(self):
        design = synthesize(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        factory = input_factory("dp", design.params)
        report = verify_design(design, factory, engine="native",
                               seeds=range(4))
        assert report.ok and report.seeds_checked == 4

        # A *fresh* design object with the same identity must warm-hit the
        # artifact cache via its design token: no new compile.
        compiles = counter("native.compiles")
        hits = counter("native.cache_hits")
        fresh = synthesize(dp_system(), {"n": 8}, FIG1_UNIDIRECTIONAL)
        again = verify_design(fresh, factory(0), engine="native")
        assert again.ok
        assert counter("native.compiles") == compiles
        assert counter("native.cache_hits") == hits + 1

    def test_native_verify_without_toolchain(self, no_native):
        design = synthesize(dp_system(), {"n": 6}, FIG1_UNIDIRECTIONAL)
        factory = input_factory("dp", design.params)
        report = verify_design(design, factory(0), engine="native")
        assert report.ok, report.failures


class TestLowerNativePass:
    def test_registered_but_not_default(self):
        table = {name: default for name, _, default in available_passes()}
        assert table["lower-native"] is False
        assert "lower-native" not in DEFAULT_PASS_NAMES

    def test_pass_primes_the_verify_slot(self):
        pipeline = PassPipeline(
            [make_pass(n)
             for n in DEFAULT_PASS_NAMES + ("lower-native",)])
        state = run_pipeline(dp_system(), {"n": 6}, FIG1_UNIDIRECTIONAL,
                             SynthesisOptions(), pipeline)
        design = state.design
        nm = design._exec_cache.get("nmachine")
        assert nm is not None
        if native_available():
            assert nm.kernel is not None, nm.fallback_reason
        report = verify_design(design,
                               input_factory("dp", design.params)(0),
                               engine="native")
        assert report.ok, report.failures


@requires_cc
class TestGeneratedSource:
    def test_kernel_shape(self):
        _, vm, _ = dp_program()
        source = emit_kernel(vm.program)
        assert "int repro_kernel(i64 *v, long rows, long stride)" \
            in source.text
        assert "__builtin_add_overflow" in source.text
        assert source.node_count == vm.program.node_count
        # Gather stays in Python: no input-group loops are emitted.
        assert "#error" in source.text   # non-GCC/Clang guard present

    def test_emission_is_deterministic(self):
        _, vm, _ = dp_program()
        assert emit_kernel(vm.program).text == emit_kernel(vm.program).text
