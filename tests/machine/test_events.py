"""Cycle-level machine event logs: both engines must tell the same story.

The interpreter emits events live during execution; the compiled engine
derives them structurally at lowering time.  On every design the two
streams must be identical under the canonical order, and their aggregate
counts must agree with the ``MachineStats`` block the run already reports.
"""

import json

import pytest

from repro.codegen import native_available
from repro.ir import trace_execution
from repro.machine import compile_design, lower, run
from repro.obs import EVENT_KINDS, EventLog, MachineEvent, canonical_order, read_jsonl

requires_cc = pytest.mark.skipif(not native_available(),
                                 reason="no C toolchain on this machine")


def _logged_run(design, inputs, engine):
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    log = EventLog()
    result = run(mc, trace, inputs, engine=engine, sink=log)
    return result, log


@pytest.fixture(scope="module")
def fig1_logs(dp_design_fig1, dp_host_inputs):
    interp, interp_log = _logged_run(dp_design_fig1, dp_host_inputs,
                                     "interpreted")
    comp, comp_log = _logged_run(dp_design_fig1, dp_host_inputs, "compiled")
    return interp, interp_log, comp, comp_log


class TestCrossEngineIdentity:
    def test_fig1_dp_streams_identical(self, fig1_logs):
        interp, interp_log, comp, comp_log = fig1_logs
        assert canonical_order(interp_log) == canonical_order(comp_log)
        assert len(interp_log) > 0

    def test_fig2_dp_streams_identical(self, dp_design_fig2, dp_host_inputs):
        _, interp_log = _logged_run(dp_design_fig2, dp_host_inputs,
                                    "interpreted")
        _, comp_log = _logged_run(dp_design_fig2, dp_host_inputs, "compiled")
        assert canonical_order(interp_log) == canonical_order(comp_log)

    def test_conv_backward_streams_identical(self, conv_design_backward):
        from repro.problems import convolution_inputs
        inputs = convolution_inputs([2, -1, 3, 0, 5, -2, 1, 4, 6, -3],
                                    [1, -2, 3, 2])
        _, interp_log = _logged_run(conv_design_backward, inputs,
                                    "interpreted")
        _, comp_log = _logged_run(conv_design_backward, inputs, "compiled")
        assert canonical_order(interp_log) == canonical_order(comp_log)

    def test_sink_does_not_change_results(self, dp_design_fig1,
                                          dp_host_inputs):
        bare_trace = trace_execution(dp_design_fig1.system,
                                     dp_design_fig1.params, dp_host_inputs)
        mc = compile_design(bare_trace, dp_design_fig1.schedules,
                            dp_design_fig1.space_maps,
                            dp_design_fig1.interconnect.decomposer())
        bare = run(mc, bare_trace, dp_host_inputs)
        logged, _ = _logged_run(dp_design_fig1, dp_host_inputs,
                                "interpreted")
        assert logged.values == bare.values
        assert logged.stats == bare.stats


class TestFourEngineByteIdentity:
    """Every engine's canonical event stream must be *byte*-identical —
    the digest is a SHA-256 over the canonical JSONL, so equal digests
    mean equal bytes, not just equal event multisets."""

    def test_vector_digest_matches_interpreter(self, fig1_logs,
                                               dp_design_fig1,
                                               dp_host_inputs):
        _, interp_log, _, comp_log = fig1_logs
        _, vec_log = _logged_run(dp_design_fig1, dp_host_inputs, "vector")
        assert vec_log.digest() == interp_log.digest() == comp_log.digest()

    @requires_cc
    def test_native_digest_matches_interpreter(self, dp_design_fig1,
                                               dp_host_inputs):
        _, interp_log = _logged_run(dp_design_fig1, dp_host_inputs,
                                    "interpreted")
        result, native_log = _logged_run(dp_design_fig1, dp_host_inputs,
                                         "native")
        assert len(native_log) > 0
        assert native_log.digest() == interp_log.digest()
        # Belt and braces: the canonical JSONL itself is byte-equal.
        canon = lambda log: "\n".join(      # noqa: E731
            json.dumps(e.to_dict(), sort_keys=True)
            for e in canonical_order(log))
        assert canon(native_log) == canon(interp_log)

    @requires_cc
    def test_native_conv_backward_digest(self, conv_design_backward):
        from repro.problems import convolution_inputs
        inputs = convolution_inputs([2, -1, 3, 0, 5, -2, 1, 4, 6, -3],
                                    [1, -2, 3, 2])
        _, interp_log = _logged_run(conv_design_backward, inputs,
                                    "interpreted")
        _, native_log = _logged_run(conv_design_backward, inputs, "native")
        assert native_log.digest() == interp_log.digest()

    @requires_cc
    def test_native_sink_does_not_change_values(self, dp_design_fig1,
                                                dp_host_inputs):
        bare, _ = _logged_run(dp_design_fig1, dp_host_inputs, "native")
        trace = trace_execution(dp_design_fig1.system, dp_design_fig1.params,
                                dp_host_inputs)
        mc = compile_design(trace, dp_design_fig1.schedules,
                            dp_design_fig1.space_maps,
                            dp_design_fig1.interconnect.decomposer())
        unlogged = run(mc, trace, dp_host_inputs, engine="native")
        assert unlogged.values == bare.values
        assert unlogged.stats == bare.stats


class TestStatsAgreement:
    """Per-kind event counts must match the run's MachineStats block."""

    def test_counts_vs_machine_stats(self, fig1_logs):
        interp, log, comp, _ = fig1_logs
        counts = log.counts_by_kind()
        assert counts["fire"] == interp.stats.operations
        assert counts["hop"] == interp.stats.hops
        assert counts["inject"] == interp.stats.injections
        assert comp.stats == interp.stats

    def test_per_cell_fires_sum_to_operations(self, fig1_logs):
        interp, log, _, _ = fig1_logs
        per_cell = log.per_cell_counts()
        assert sum(c.get("fire", 0) for c in per_cell.values()) \
            == interp.stats.operations
        assert len(per_cell) >= interp.stats.cells_used

    def test_cycle_range_within_run(self, fig1_logs):
        interp, log, _, _ = fig1_logs
        lo, hi = log.cycle_range()
        assert lo >= interp.stats.first_cycle
        assert hi <= interp.stats.last_cycle

    def test_only_known_kinds(self, fig1_logs):
        _, log, _, _ = fig1_logs
        assert set(log.counts_by_kind()) <= set(EVENT_KINDS)


class TestExporters:
    def test_jsonl_round_trip(self, fig1_logs, tmp_path):
        _, log, _, _ = fig1_logs
        path = tmp_path / "events.jsonl"
        log.write_jsonl(path)
        assert read_jsonl(path) == log.events

    def test_jsonl_lines_are_stable_objects(self, fig1_logs):
        _, log, _, _ = fig1_logs
        lines = log.to_jsonl().splitlines()
        assert len(lines) == len(log)
        first = json.loads(lines[0])
        assert {"kind", "cycle", "cell", "key"} <= set(first)

    def test_chrome_trace_structure(self, fig1_logs, tmp_path):
        _, log, _, _ = fig1_logs
        doc = log.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(slices) == len(log)
        # one process_name + thread_name/thread_sort_index per cell track
        cells = {e.cell for e in log}
        assert len(meta) == 1 + 2 * len(cells)
        for s in slices:
            assert isinstance(s["ts"], int) and s["dur"] > 0
            assert s["cat"] in EVENT_KINDS
        path = tmp_path / "trace.json"
        log.write_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_empty_log_exports(self, tmp_path):
        log = EventLog()
        assert log.counts_by_kind() == {}
        assert log.cycle_range() == (0, 0)
        assert log.to_jsonl() == ""
        assert log.to_chrome_trace()["traceEvents"]  # process metadata only
        path = tmp_path / "empty.jsonl"
        log.write_jsonl(path)
        assert read_jsonl(path) == []


class TestCompiledEventGating:
    def test_sink_without_recorded_events_raises(self, dp_design_fig1,
                                                 dp_host_inputs):
        trace = trace_execution(dp_design_fig1.system, dp_design_fig1.params,
                                dp_host_inputs)
        mc = compile_design(trace, dp_design_fig1.schedules,
                            dp_design_fig1.space_maps,
                            dp_design_fig1.interconnect.decomposer())
        lowered = lower(mc, trace)        # record_events defaults to False
        with pytest.raises(ValueError, match="record_events"):
            lowered.execute(dp_host_inputs, sink=EventLog())

    def test_no_sink_no_events_recorded(self, dp_design_fig1,
                                        dp_host_inputs):
        trace = trace_execution(dp_design_fig1.system, dp_design_fig1.params,
                                dp_host_inputs)
        mc = compile_design(trace, dp_design_fig1.schedules,
                            dp_design_fig1.space_maps,
                            dp_design_fig1.interconnect.decomposer())
        assert lower(mc, trace).events is None


class TestMachineEvent:
    def test_dict_round_trip(self):
        event = MachineEvent("hop", 5, (2, 1), "m1::a(3, 2)", src=(1, 1),
                             stream=("m1", "a"))
        assert MachineEvent.from_dict(event.to_dict()) == event

    def test_minimal_fields_omitted(self):
        event = MachineEvent("fire", 0, (0,), "k")
        data = event.to_dict()
        assert "src" not in data and "name" not in data \
            and "stream" not in data
        assert MachineEvent.from_dict(data) == event

    def test_canonical_order_ranks_kinds(self):
        events = [MachineEvent(kind, 1, (0,), "k") for kind in
                  ("reclaim", "fire", "hop", "output", "inject")]
        assert [e.kind for e in canonical_order(events)] \
            == list(EVENT_KINDS)
