"""Channel-capacity enforcement: one value per stream per link per cycle."""

import pytest

from repro.ir import (
    ComputeRule,
    Equation,
    IDENTITY,
    InputRule,
    Module,
    Polyhedron,
    RecurrenceSystem,
    Ref,
    equals,
    trace_execution,
)
from repro.ir.affine import var
from repro.ir.evaluate import ValueKey
from repro.ir.predicates import at_least
from repro.machine import CapacityError, Microcode, run
from repro.machine.microcode import Hop, Injection, Operation

I = var("i")


def two_value_trace():
    """A tiny system producing two independent values of one variable."""
    domain = Polyhedron.box({"i": (1, 2)})
    eqn = Equation("x", (InputRule("inp", (I,)),))
    module = Module("m", ("i",), domain, [eqn])
    system = RecurrenceSystem("tiny", [module], outputs=[],
                              input_names=("inp",))
    return trace_execution(system, {}, {"inp": lambda i: i * 10})


def hand_microcode(same_stream: bool) -> tuple[Microcode, object]:
    """Microcode moving both values over the same link in the same cycle.

    With ``same_stream`` both hops share the (module, var) channel — a
    capacity violation; otherwise they would be distinct channels (not
    constructible from one variable, so we fake the second stream tag).
    """
    trace = two_value_trace()
    k1 = ValueKey("m", "x", (1,))
    k2 = ValueKey("m", "x", (2,))
    mc = Microcode()
    mc.placement = {k1: (0, (0,)), k2: (0, (0,))}
    mc.first_cycle = 0
    mc.last_cycle = 2
    mc.injections = [
        Injection(k1, (0,), 0, "inp", (1,)),
        Injection(k2, (0,), 0, "inp", (2,)),
    ]
    stream2 = ("m", "x") if same_stream else ("m", "x2")
    mc.hops = [
        Hop(k1, (0,), (1,), 1, ("m", "x")),
        Hop(k2, (0,), (1,), 1, stream2),
    ]
    mc.operations = [
        Operation(k1, (1,), 2, None, (k1,), ("m", "x")),
        Operation(k2, (1,), 2, None, (k2,), stream2),
    ]
    return mc, trace


class TestCapacity:
    def test_same_stream_same_link_raises(self):
        mc, trace = hand_microcode(same_stream=True)
        with pytest.raises(CapacityError):
            run(mc, trace, {"inp": lambda i: i * 10}, strict=True)

    def test_non_strict_records_violation(self):
        mc, trace = hand_microcode(same_stream=True)
        result = run(mc, trace, {"inp": lambda i: i * 10}, strict=False)
        assert len(result.stats.capacity_violations) == 1

    def test_distinct_streams_share_link(self):
        """Two different named streams may cross one link simultaneously —
        they have separate physical channels."""
        mc, trace = hand_microcode(same_stream=False)
        result = run(mc, trace, {"inp": lambda i: i * 10}, strict=True)
        assert not result.stats.capacity_violations
        assert result.values[ValueKey("m", "x", (2,))] == 20

    def test_paper_designs_are_capacity_clean(self, dp_design_fig2,
                                              dp_host_inputs):
        from repro.machine import compile_design

        design = dp_design_fig2
        trace = trace_execution(design.system, design.params, dp_host_inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        result = run(mc, trace, dp_host_inputs, strict=True)
        assert not result.stats.capacity_violations
