"""Microcode analytics: timelines, traffic, I/O schedules."""

import pytest

from repro.core import synthesize_uniform
from repro.arrays import LINEAR_BIDIR
from repro.ir import trace_execution
from repro.machine import (
    activity_timeline,
    compile_design,
    io_schedule,
    peak_parallelism,
    render_activity,
    run,
    stream_traffic,
)
from repro.problems import convolution_backward, convolution_inputs


@pytest.fixture(scope="module")
def compiled():
    system = convolution_backward()
    params = {"n": 8, "s": 3}
    design = synthesize_uniform(system, params, LINEAR_BIDIR)
    x = [1, -2, 3, -4, 5, -6, 7, -8]
    w = [2, 0, -1]
    inputs = convolution_inputs(x, w)
    trace = trace_execution(system, params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        LINEAR_BIDIR.decomposer())
    return mc, trace, inputs


class TestTimeline:
    def test_covers_every_cycle(self, compiled):
        mc, _, _ = compiled
        timeline = activity_timeline(mc)
        assert [a.cycle for a in timeline] == list(
            range(mc.first_cycle, mc.last_cycle + 1))

    def test_totals_match_microcode(self, compiled):
        mc, _, _ = compiled
        timeline = activity_timeline(mc)
        assert sum(a.operations for a in timeline) == len(mc.operations)
        assert sum(a.hops for a in timeline) == len(mc.hops)
        assert sum(a.injections for a in timeline) == len(mc.injections)

    def test_peak_parallelism_bounds(self, compiled):
        mc, _, _ = compiled
        peak = peak_parallelism(mc)
        cells = {op.cell for op in mc.operations}
        assert 1 <= peak <= len(cells)

    def test_render_smoke(self, compiled):
        mc, _, _ = compiled
        text = render_activity(mc)
        assert "cycle" in text and "#" in text


class TestTraffic:
    def test_streams_accounted(self, compiled):
        mc, _, _ = compiled
        traffic = stream_traffic(mc)
        assert sum(traffic.values()) == len(mc.hops)
        # w stays in the W2 design: no w hops; x and y move.
        assert ("conv", "w") not in traffic
        assert traffic[("conv", "y")] > 0
        assert traffic[("conv", "x")] > 0

    def test_y_moves_more_than_x(self, compiled):
        """y advances every cycle, x every other cycle — y's stream carries
        about twice the traffic."""
        mc, _, _ = compiled
        traffic = stream_traffic(mc)
        assert traffic[("conv", "y")] > traffic[("conv", "x")]


class TestIoSchedule:
    def test_injections_at_boundary_cells(self, compiled):
        mc, _, _ = compiled
        schedule = io_schedule(mc)
        # W2: weights preload into each cell; x enters at cell 1.
        assert all(entries == sorted(entries)
                   for entries in schedule.values())
        x_cells = {cell for cell, entries in schedule.items()
                   if any(name == "x" for _, name in entries)}
        assert x_cells == {(1,)}

    def test_machine_still_runs(self, compiled):
        mc, trace, inputs = compiled
        result = run(mc, trace, inputs)
        assert result.results == trace.results
