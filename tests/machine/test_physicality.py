"""Physical consistency of compiled microcode against the array model:
every hop is one interconnect link; every endpoint is an existing cell."""

import pytest

from repro.ir import trace_execution
from repro.machine import compile_design


@pytest.fixture(scope="module")
def fig2_microcode(dp_design_fig2, dp_host_inputs):
    design = dp_design_fig2
    trace = trace_execution(design.system, design.params, dp_host_inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    return design, mc


class TestHopsArePhysical:
    def test_every_hop_is_one_link(self, fig2_microcode):
        design, mc = fig2_microcode
        moves = set(design.interconnect.moves())
        for hop in mc.hops:
            diff = tuple(b - a for a, b in zip(hop.src, hop.dst))
            assert diff in moves, f"hop {hop} is not a single Δ link"

    def test_hop_endpoints_inside_array(self, fig2_microcode):
        """Data never transits through cells that do not exist."""
        design, mc = fig2_microcode
        region = design.region()
        for hop in mc.hops:
            assert hop.src in region, f"{hop} departs a non-existent cell"
            assert hop.dst in region, f"{hop} arrives at a non-existent cell"

    def test_injections_inside_array(self, fig2_microcode):
        design, mc = fig2_microcode
        region = design.region()
        for inj in mc.injections:
            assert inj.cell in region

    def test_operations_inside_array(self, fig2_microcode):
        design, mc = fig2_microcode
        region = design.region()
        for op in mc.operations:
            assert op.cell in region

    def test_hop_cycles_within_span(self, fig2_microcode):
        _, mc = fig2_microcode
        for hop in mc.hops:
            assert mc.first_cycle <= hop.cycle <= mc.last_cycle

    def test_values_arrive_before_use(self, fig2_microcode):
        """Static check: the last hop of each value chain lands no later
        than the consumer's cycle (the simulator enforces it dynamically;
        this pins the compiler's schedule)."""
        _, mc = fig2_microcode
        last_arrival: dict = {}
        for hop in mc.hops:
            key = (hop.key, hop.dst)
            last_arrival[key] = max(last_arrival.get(key, hop.cycle),
                                    hop.cycle)
        placed = mc.placement
        for op in mc.operations:
            for operand in op.operands:
                t_src, c_src = placed[operand]
                if c_src == op.cell:
                    continue
                arrival = last_arrival.get((operand, op.cell))
                assert arrival is not None
                assert arrival <= op.cycle


class TestFig1AlsoPhysical:
    def test_fig1(self, dp_design_fig1, dp_host_inputs):
        design = dp_design_fig1
        trace = trace_execution(design.system, design.params, dp_host_inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            design.interconnect.decomposer())
        moves = set(design.interconnect.moves())
        region = design.region()
        for hop in mc.hops:
            diff = tuple(b - a for a, b in zip(hop.src, hop.dst))
            assert diff in moves
            assert hop.src in region and hop.dst in region