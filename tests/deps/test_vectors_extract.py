"""Dependence vectors/matrices and extraction from the paper's systems."""

import numpy as np
import pytest

from repro.deps import (
    DependenceMatrix,
    DependenceVector,
    module_dependence_matrix,
    system_dependence_matrices,
)
from repro.problems import (
    convolution_backward,
    convolution_forward,
    dp_system,
    matmul_system,
)


class TestDependenceMatrix:
    def test_duplicates_collapse(self):
        m = DependenceMatrix([DependenceVector("x", (1, 0)),
                              DependenceVector("x", (1, 0))])
        assert len(m) == 1

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            DependenceMatrix([DependenceVector("x", (1,)),
                              DependenceVector("y", (1, 0))])

    def test_matrix_columns(self):
        m = DependenceMatrix.from_dict({"y": [(0, 1)], "x": [(1, 1)]})
        np.testing.assert_array_equal(m.matrix(),
                                      np.array([[0, 1], [1, 1]]))

    def test_restrict_and_merge(self):
        m = DependenceMatrix.from_dict({"a": [(1, 0)], "b": [(0, 1)]})
        a_only = m.restrict(["a"])
        assert a_only.variables == ("a",)
        merged = a_only.merge(m.restrict(["b"]))
        assert set(merged.variables) == {"a", "b"}

    def test_vector_set(self):
        m = DependenceMatrix.from_dict({"a": [(1, 0)], "b": [(1, 0)]})
        assert m.vector_set() == {(1, 0)}


class TestExtraction:
    def test_convolution_backward_matches_paper(self):
        """Recurrence (4): d_y=(0,1), d_x=(1,1), d_w=(1,0)."""
        system = convolution_backward()
        D = module_dependence_matrix(system.modules["conv"])
        by_var = {v: {d.vector for d in D.columns_for(v)}
                  for v in D.variables}
        assert by_var == {"w": {(1, 0)}, "x": {(1, 1)}, "y": {(0, 1)}}

    def test_convolution_forward_matches_paper(self):
        """Recurrence (5): d_y=(0,-1)."""
        system = convolution_forward()
        D = module_dependence_matrix(system.modules["conv"])
        assert {d.vector for d in D.columns_for("y")} == {(0, -1)}

    def test_dp_module_matrices_match_paper(self):
        """Section IV: D1 and D2 column sets."""
        deps = system_dependence_matrices(dp_system())
        d1 = {v: {d.vector for d in deps["m1"].columns_for(v)}
              for v in deps["m1"].variables}
        d2 = {v: {d.vector for d in deps["m2"].columns_for(v)}
              for v in deps["m2"].variables}
        assert d1 == {"ap": {(0, 1, 0)}, "bp": {(-1, 0, 0)},
                      "cp": {(0, 0, -1)}}
        assert d2 == {"app": {(0, 1, 0)}, "bpp": {(-1, 0, 0)},
                      "cpp": {(0, 0, 1)}}

    def test_combine_module_has_no_local_deps(self):
        deps = system_dependence_matrices(dp_system())
        assert len(deps["comb"]) == 0

    def test_zero_dependences_excluded(self):
        """Same-point reads (f(a', b') inside c') must not become columns."""
        deps = system_dependence_matrices(dp_system())
        for D in deps.values():
            assert all(not v.is_zero() for v in D.vectors)

    def test_matmul(self):
        deps = module_dependence_matrix(matmul_system().modules["mm"])
        assert deps.vector_set() == {(0, 1, 0), (1, 0, 0), (0, 0, 1)}
