"""Dependence DAGs over lattice points."""

import pytest

from repro.deps import (
    DependenceMatrix,
    check_schedule_against_dag,
    critical_path_length,
    dependence_dag,
    levels,
    trace_dag,
)
from repro.ir import trace_execution
from repro.ir.indexset import Polyhedron
from repro.problems import dp_inputs, dp_system
from repro.schedule import LinearSchedule


class TestDependenceDag:
    def test_box_chain(self):
        D = DependenceMatrix.from_dict({"x": [(1,)]})
        dom = Polyhedron.box({"i": (1, 6)})
        g = dependence_dag(dom, D, {})
        assert g.number_of_edges() == 5
        assert critical_path_length(g) == 5

    def test_levels(self):
        D = DependenceMatrix.from_dict({"x": [(1, 0)], "y": [(0, 1)]})
        dom = Polyhedron.box({"i": (1, 3), "j": (1, 3)})
        g = dependence_dag(dom, D, {})
        lv = levels(g)
        assert lv[(1, 1)] == 0
        assert lv[(3, 3)] == 4

    def test_cycle_rejected(self):
        D = DependenceMatrix.from_dict({"x": [(1,)], "y": [(-1,)]})
        dom = Polyhedron.box({"i": (1, 4)})
        with pytest.raises(ValueError):
            dependence_dag(dom, D, {})

    def test_valid_schedule_respects_dag(self):
        D = DependenceMatrix.from_dict({"y": [(0, 1)], "x": [(1, 1)],
                                        "w": [(1, 0)]})
        dom = Polyhedron.box({"i": (1, 6), "k": (1, 3)})
        g = dependence_dag(dom, D, {})
        good = LinearSchedule(("i", "k"), (1, 1))
        bad = LinearSchedule(("i", "k"), (1, -1))
        assert check_schedule_against_dag(g, good.time)
        assert not check_schedule_against_dag(g, bad.time)


class TestTraceDag:
    def test_dp_trace_dag_acyclic_and_deep(self):
        n = 6
        system = dp_system()
        seeds = list(range(1, n))
        trace = trace_execution(system, {"n": n}, dp_inputs(seeds))
        g = trace_dag(trace)
        assert g.number_of_nodes() == len(trace.events)
        # The DP dependence chain grows with n.
        assert critical_path_length(g) >= n - 2
