"""Non-constant dependence analysis: expansion and intersection (Section III)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import (
    affine_extrema,
    affine_max,
    affine_min,
    constant_dependence_set,
    expanded_dependence_set,
)
from repro.ir.affine import var
from repro.ir.indexset import Polyhedron, ge, le
from repro.problems import dp_spec

I, J = var("i"), var("j")


class TestAffineExtrema:
    def test_box(self):
        dom = Polyhedron.box({"i": (1, 5), "j": (2, 4)})
        assert affine_extrema(dom, I + J) == (3, 9)
        assert affine_extrema(dom, I - J) == (-3, 3)

    def test_triangle(self):
        dom = Polyhedron(("i", "j"), [ge(I, 1), le(J, 9), ge(J - I, 2)],
                         params=())
        assert affine_min(dom, J - I) == 2
        assert affine_max(dom, J - I) == 8

    def test_parametric_min_is_constant(self):
        dom = Polyhedron(("i", "j"), [ge(I, 1), le(J, "n"), ge(J - I, 2)],
                         params=("n",))
        assert affine_min(dom, J - I) == 2

    def test_parametric_max_needs_params(self):
        dom = Polyhedron(("i", "j"), [ge(I, 1), le(J, "n"), ge(J - I, 2)],
                         params=("n",))
        with pytest.raises(ValueError):
            affine_max(dom, J - I)
        assert affine_max(dom, J - I, {"n": 9}) == 8

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6))
    def test_matches_enumeration(self, a, b):
        dom = Polyhedron.box({"i": (1, a), "j": (1, b)})
        expr = 2 * I - 3 * J
        values = [expr.evaluate(dict(zip(("i", "j"), p)))
                  for p in dom.points()]
        lo, hi = affine_extrema(dom, expr)
        assert lo == min(values) and hi == max(values)


class TestExpandedSets:
    def test_dp_expansion_matches_paper(self):
        """D^c_(i,j) columns: (0, j-k) and (i-k, 0) over i < k < j."""
        spec = dp_spec()
        point = (2, 7)
        D = expanded_dependence_set(spec, point)
        vectors = D.vector_set()
        expected = {(0, 7 - k) for k in range(3, 7)} | \
                   {(2 - k, 0) for k in range(3, 7)}
        assert vectors == expected

    def test_labels_carry_arg_index(self):
        spec = dp_spec()
        D = expanded_dependence_set(spec, (1, 4))
        assert {"c@arg0", "c@arg1"} == set(D.variables)


class TestIntersection:
    def test_dp_constant_set(self):
        """D^c = {(0,1), (-1,0)} — the paper's matrix."""
        spec = dp_spec()
        assert constant_dependence_set(spec).vector_set() == {(0, 1), (-1, 0)}

    def test_intersection_stable_across_sizes(self):
        spec = dp_spec()
        for n in (5, 9, 16):
            assert constant_dependence_set(spec, {"n": n}).vector_set() \
                == {(0, 1), (-1, 0)}

    def test_every_constant_vector_in_every_point_set(self):
        """Definition check: D^c ⊆ D^c_(i,j) at every domain point."""
        spec = dp_spec()
        dc = constant_dependence_set(spec).vector_set()
        for point in spec.domain.points({"n": 7}):
            expanded = expanded_dependence_set(spec, point).vector_set()
            assert dc <= expanded
