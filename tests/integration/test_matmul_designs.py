"""Matrix multiplication on 2-D arrays — the Section II machinery at full
dimensionality (3-D index space onto 2-D processor space)."""

import numpy as np
import pytest

from repro.arrays import HEX_6, MESH_4
from repro.core import synthesize_uniform, verify_design
from repro.problems import matmul_inputs, matmul_system

N = 4
PARAMS = {"n": N}


def random_matrices(seed=0):
    rng = np.random.default_rng(seed)
    A = rng.integers(-5, 6, size=(N, N))
    B = rng.integers(-5, 6, size=(N, N))
    return A, B


class TestMeshMatmul:
    @pytest.fixture(scope="class")
    def design(self):
        return synthesize_uniform(matmul_system(), PARAMS, MESH_4)

    def test_schedule_is_i_plus_j_plus_k(self, design):
        """The classic wavefront: T(i,j,k) = i + j + k."""
        assert design.schedules["mm"].coeffs == (1, 1, 1)

    def test_one_stationary_stream(self, design):
        """The cell-count-optimal mesh designs pin exactly one stream
        (stationary-B with S = (k, j) or stationary-C with S = (i, j) are
        tied optima; the deterministic tie-break picks stationary-B) and
        stream the other two through n² cells."""
        flows = design.flows()["mm"]
        stationary = [v for v, f in flows.items() if f.stays]
        assert len(stationary) == 1
        assert design.cell_count == N * N

    def test_machine_matches_numpy(self, design):
        A, B = random_matrices(1)
        report = verify_design(design, matmul_inputs(A, B))
        assert report.ok, report.failures

    def test_completion_linear(self, design):
        assert design.completion_time == 3 * (N - 1)


class TestHexMatmul:
    def test_hex_design_verifies(self):
        design = synthesize_uniform(matmul_system(), PARAMS, HEX_6)
        A, B = random_matrices(2)
        report = verify_design(design, matmul_inputs(A, B))
        assert report.ok, report.failures

    def test_hex_at_least_as_cheap_as_mesh(self):
        mesh = synthesize_uniform(matmul_system(), PARAMS, MESH_4)
        hexd = synthesize_uniform(matmul_system(), PARAMS, HEX_6)
        assert hexd.cell_count <= mesh.cell_count
