"""Full-pipeline integration: high-level spec → restructure → synthesize →
systolic machine == sequential reference, across sizes, semantics and
interconnects."""

import random

import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.core import restructure, synthesize, verify_design
from repro.ir import trace_execution
from repro.machine import compile_design, run
from repro.problems import (
    convolution_backward,
    convolution_forward,
    convolution_inputs,
    dp_spec,
    paren_body,
    paren_combine,
    parenthesization_inputs,
)
from repro.problems.dynamic_programming import dp_spec as make_dp_spec
from repro.reference import convolve, matrix_chain, min_plus_dp


def machine_results(system, params, design, inputs):
    trace = trace_execution(system, params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    return run(mc, trace, inputs, strict=True).results


class TestDpPipeline:
    @pytest.mark.parametrize("interconnect",
                             [FIG1_UNIDIRECTIONAL, FIG2_EXTENDED])
    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_spec_to_machine(self, interconnect, n):
        rng = random.Random(n)
        seeds = [rng.randint(1, 30) for _ in range(n - 1)]
        system = restructure(dp_spec(), params={"n": max(n, 5)})
        design = synthesize(system, {"n": n}, interconnect)

        def c0(i, j, _s=seeds):
            return _s[i - 1]

        results = machine_results(system, {"n": n}, design, {"c0": c0})
        ref = min_plus_dp(seeds, n)
        assert all(results[k] == ref[k] for k in results)

    def test_parenthesization_on_fig2(self):
        """Rich value semantics (cost + tree) through the fig-2 array."""
        dims = (30, 35, 15, 5, 10, 20, 25)
        n = len(dims)
        spec = make_dp_spec(paren_body(), paren_combine())
        system = restructure(spec, params={"n": n})
        design = synthesize(system, {"n": n}, FIG2_EXTENDED)
        inputs = parenthesization_inputs(dims)

        # The generic restructurer keys seeds by the full boundary point.
        results = machine_results(system, {"n": n}, design, inputs)
        ref = matrix_chain(dims)
        assert results[(1, n)] == ref[(1, n)]
        assert results[(1, n)][2] == 15125


class TestConvolutionPipeline:
    @pytest.mark.parametrize("builder", [convolution_backward,
                                         convolution_forward])
    def test_synthesized_design_runs(self, builder):
        n, s = 9, 3
        rng = random.Random(17)
        x = [rng.randint(-9, 9) for _ in range(n)]
        w = [rng.randint(-3, 3) for _ in range(s)]
        system = builder()
        design = synthesize(system, {"n": n, "s": s}, LINEAR_BIDIR)
        inputs = convolution_inputs(x, w)
        results = machine_results(system, {"n": n, "s": s}, design, inputs)
        assert [results[(i,)] for i in range(1, n + 1)] == convolve(x, w)


class TestVerifierAgreesWithMachine:
    @pytest.mark.parametrize("interconnect",
                             [FIG1_UNIDIRECTIONAL, FIG2_EXTENDED])
    def test_verify_design_full(self, interconnect, dp_sys, dp_params,
                                dp_host_inputs):
        design = synthesize(dp_sys, dp_params, interconnect)
        report = verify_design(design, dp_host_inputs)
        assert report.ok, report.failures
        assert report.machine_stats.cells_used <= design.cell_count
