"""Property-based end-to-end invariants on the synthesized DP designs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import trace_execution
from repro.machine import compile_design, run
from repro.problems import dp_inputs
from repro.reference import min_plus_dp


@pytest.fixture(scope="module")
def fig2(dp_design_fig2):
    return dp_design_fig2


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 99), min_size=7, max_size=7))
def test_fig2_machine_matches_reference_for_any_seeds(dp_design_fig2,
                                                      seeds):
    """The same microcode computes correct DP tables for arbitrary inputs."""
    design = dp_design_fig2
    n = design.params["n"]
    inputs = dp_inputs(seeds)
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    results = run(mc, trace, inputs, strict=True).results
    ref = min_plus_dp(seeds, n)
    assert all(results[k] == ref[k] for k in results)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(-50, 50), min_size=7, max_size=7))
def test_fig1_handles_negative_costs(dp_design_fig1, seeds):
    design = dp_design_fig1
    n = design.params["n"]
    inputs = dp_inputs(seeds)
    trace = trace_execution(design.system, design.params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    results = run(mc, trace, inputs, strict=True).results
    ref = min_plus_dp(seeds, n)
    assert all(results[k] == ref[k] for k in results)


def test_design_invariants_hold_across_sizes():
    """Structural invariants of both designs for several problem sizes:
    conflict-freedom, link-validity of every hop, completion = 2n - 5."""
    from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED
    from repro.core import synthesize, verify_design
    from repro.problems import dp_system

    for n in (5, 7, 10):
        seeds = list(range(1, n))
        inputs = dp_inputs(seeds)
        for ic in (FIG1_UNIDIRECTIONAL, FIG2_EXTENDED):
            design = synthesize(dp_system(), {"n": n}, ic)
            report = verify_design(design, inputs)
            assert report.ok, (n, ic.name, report.failures)
            assert design.completion_time == 2 * n - 5
