"""Boundary problem sizes: the smallest DP instances stress every guard.

* n = 3: a single reduction point per (i, j); module m2 is *empty*;
* n = 4: first instance with both chains non-empty;
* s = 1 convolution: the accumulation degenerates to a single term.
"""

import pytest

from repro.arrays import FIG1_UNIDIRECTIONAL, FIG2_EXTENDED, LINEAR_BIDIR
from repro.core import restructure, synthesize, synthesize_uniform, verify_design
from repro.ir import check_system, run_system
from repro.problems import (
    convolution_backward,
    convolution_inputs,
    dp_inputs,
    dp_spec,
    dp_system,
)
from repro.reference import convolve, min_plus_dp


class TestTinyDp:
    def test_n3_m2_empty(self):
        system = dp_system()
        assert list(system.modules["m2"].domain.points({"n": 3})) == []
        assert len(list(system.modules["m1"].domain.points({"n": 3}))) == 1

    @pytest.mark.parametrize("interconnect",
                             [FIG1_UNIDIRECTIONAL, FIG2_EXTENDED])
    @pytest.mark.parametrize("n", [3, 4])
    def test_synthesize_and_run(self, interconnect, n):
        system = dp_system()
        seeds = list(range(2, n + 1))
        design = synthesize(system, {"n": n}, interconnect)
        report = verify_design(design, dp_inputs(seeds))
        assert report.ok, report.failures
        ref = min_plus_dp(seeds, n)
        # Sanity: final result present.
        res = run_system(system, {"n": n}, dp_inputs(seeds))
        assert res[(1, n)] == ref[(1, n)]

    @pytest.mark.parametrize("n", [3, 4])
    def test_restructured_tiny(self, n):
        system = restructure(dp_spec(), params={"n": 5})
        check_system(system, {"n": n})
        seeds = list(range(1, n))

        def c0(i, j, _s=seeds):
            return _s[i - 1]

        res = run_system(system, {"n": n}, {"c0": c0})
        ref = min_plus_dp(seeds, n)
        assert all(res[k] == ref[k] for k in res)


class TestTinyConvolution:
    def test_single_tap_filter(self):
        """s = 1: y_i = w_1 * x_i; the MAC rule never fires."""
        system = convolution_backward()
        params = {"n": 5, "s": 1}
        check_system(system, params)
        res = run_system(system, params, convolution_inputs([1, 2, 3, 4, 5],
                                                            [3]))
        assert [res[(i,)] for i in range(1, 6)] == [3, 6, 9, 12, 15]

    def test_single_tap_synthesizes(self):
        params = {"n": 5, "s": 1}
        design = synthesize_uniform(convolution_backward(), params,
                                    LINEAR_BIDIR)
        report = verify_design(design,
                               convolution_inputs([1, 2, 3, 4, 5], [2]))
        assert report.ok, report.failures
        assert design.cell_count == 1

    def test_n_equals_s(self):
        params = {"n": 4, "s": 4}
        x, w = [1, -1, 2, -2], [1, 2, 3, 4]
        design = synthesize_uniform(convolution_backward(), params,
                                    LINEAR_BIDIR)
        report = verify_design(design, convolution_inputs(x, w))
        assert report.ok, report.failures
