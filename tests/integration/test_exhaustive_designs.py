"""Exhaustive design validation: *every* design the explorer can produce —
not just the named/optimal ones — must either execute correctly on the
machine or be *detected* as physically infeasible at compile time.

This closes the loop between the enumerative solvers and the physical
substrate — and it surfaced a genuine gap in the paper's model: conditions
(1)/(2)/(3) do not bound *stream bandwidth*.  A design where some stream's
displacement |S d| is 2 while T d = 3 asks a single channel to carry up to
6 crossings in a 4-cycle window (rate 1.5/cycle): no hop retiming can fit
it.  The machine's capacity-aware router raises ``CapacityError`` at
compile time for exactly those designs; everything else runs bit-exact.
"""

import pytest

from repro.arrays import LINEAR_BIDIR
from repro.core import explore_uniform
from repro.ir import trace_execution
from repro.machine import CapacityError, compile_design, run
from repro.problems import (
    convolution_backward,
    convolution_forward,
    convolution_inputs,
)
from repro.reference import convolve

PARAMS = {"n": 8, "s": 3}
X = [2, -7, 1, 8, -2, 8, 1, -8]
W = [3, -1, 4]
EXPECTED = convolve(X, W)


@pytest.mark.parametrize("builder,oversubscribed", [
    (convolution_backward, 4),
    (convolution_forward, 0),
])
def test_every_explored_design_runs_or_is_detected(builder, oversubscribed):
    system = builder()
    inputs = convolution_inputs(X, W)
    trace = trace_execution(system, PARAMS, inputs)
    designs = explore_uniform(system, PARAMS, LINEAR_BIDIR, time_bound=2)
    assert designs, "exploration found nothing"
    failures = []
    detected = []
    for explored in designs:
        design = explored.design
        try:
            mc = compile_design(trace, design.schedules, design.space_maps,
                                LINEAR_BIDIR.decomposer())
            result = run(mc, trace, inputs, strict=True)
        except CapacityError:
            detected.append(design)
            # The bandwidth culprit must really be a multi-hop stream.
            assert any(
                max(abs(v) for v in smap.of_vector(d.vector)) >= 2
                for smap in design.space_maps.values()
                for d in _deps(system).vectors), design
            continue
        except Exception as exc:  # noqa: BLE001 - collected for the report
            failures.append((design.schedules, design.space_maps,
                             f"{type(exc).__name__}: {exc}"))
            continue
        got = [result.results[(i,)] for i in range(1, PARAMS["n"] + 1)]
        if got != EXPECTED:
            failures.append((design.schedules, design.space_maps,
                             f"wrong results {got}"))
    assert not failures, (
        f"{len(failures)}/{len(designs)} designs failed; first: "
        f"{failures[0]}")
    assert len(detected) == oversubscribed


def _deps(system):
    from repro.deps import module_dependence_matrix

    (module,) = system.modules.values()
    return module_dependence_matrix(module)


def test_design_count_is_stable():
    """Regression pin: the size of the enumerated design space (a change
    here means the feasibility conditions moved)."""
    backward = explore_uniform(convolution_backward(), PARAMS,
                               LINEAR_BIDIR, time_bound=2)
    forward = explore_uniform(convolution_forward(), PARAMS,
                              LINEAR_BIDIR, time_bound=2)
    assert len(backward) == 28
    assert len(forward) == 6
