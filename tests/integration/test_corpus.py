"""Replaying the persisted fuzz corpus under ``tests/corpus/``.

Every artifact is a shrunk :class:`~repro.fuzz.cases.CaseDescriptor` that
once exposed a bug (or pins a boundary the fuzzer must keep exercising).
Replay runs the descriptor through the *whole* pipeline — oracle,
restructuring, synthesis, and every engine (including ``native`` where a
C toolchain exists; without one it degrades to the vector paths) with
value and event-stream comparison — via
:func:`repro.fuzz.harness.run_case`, then enforces the artifact's
``expect`` contract: the recorded status must match exactly, or for
freshly-found failures (``expect: null``) the outcome must merely not
be a bug.  See :mod:`repro.fuzz.corpus` for the artifact format.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, run_case

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ARTIFACTS = load_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    # The shipped corpus pins the int64 boundary fixes, the synthesize
    # lowering check, and a spread of chain structures; losing the files
    # would silently skip every replay below.
    assert len(ARTIFACTS) >= 10


@pytest.mark.parametrize(
    "artifact", ARTIFACTS, ids=[a["path"].stem for a in ARTIFACTS])
def test_artifact_replays(artifact):
    outcome = run_case(artifact["descriptor"], native=True)
    expect = artifact["expect"]
    context = (f"{artifact['path'].name}: {artifact['note']}\n"
               f"stage={outcome.stage}\n{outcome.detail}")
    if expect is None:
        assert not outcome.is_bug, context
    else:
        assert outcome.status == expect, context
