"""Fuzzing the whole uniform pipeline with randomly generated problems.

Hypothesis generates random broadcast-form weighted reductions (random
stream index maps, random accumulation direction, random inputs); the
transformer derives a canonic recurrence, the synthesizer maps it onto a
linear array, and the systolic machine must agree with the reference
evaluator — which itself must agree with a direct dumb evaluation of the
reduction.  Infeasible random instances (no valid schedule on the array)
are skipped, not failed.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arrays import LINEAR_BIDIR
from repro.core import synthesize_uniform
from repro.ir import run_system
from repro.ir.affine import const, var
from repro.ir.ops import ADD, MUL
from repro.ir.evaluate import trace_execution
from repro.machine import compile_design, run
from repro.schedule import NoScheduleExists
from repro.space import NoSpaceMapExists
from repro.transform import StreamSpec, WeightedReduction, build_recurrence

I, K = var("i"), var("k")

N, S = 6, 3
PARAMS = {"n": N, "s": S}

# Host-index shapes for the two streams: (coef_i, coef_k, offset).
INDEX_SHAPES = [(0, 1, 0), (1, 0, 0), (1, 1, 0), (1, -1, 0),
                (1, 1, -1), (0, 1, 1), (1, -1, 1)]


def reduction_from(shape_a, shape_b):
    def expr(shape):
        a, b, c = shape
        return a * I + b * K + const(c)

    return WeightedReduction(
        name="fuzz",
        dims=("i", "k"),
        outer_range=(const(1), var("n")),
        inner_range=(const(1), var("s")),
        streams=(StreamSpec("u", (expr(shape_a),)),
                 StreamSpec("v", (expr(shape_b),))),
        term=MUL,
        combine=ADD,
        params=("n", "s"))


def dumb_eval(shape_a, shape_b, u, v):
    """Direct evaluation of the reduction, no IR involved."""

    def fetch(table, idx):
        return table.get(idx, 0)

    out = {}
    for i in range(1, N + 1):
        acc = 0
        for k in range(1, S + 1):
            ia = shape_a[0] * i + shape_a[1] * k + shape_a[2]
            ib = shape_b[0] * i + shape_b[1] * k + shape_b[2]
            acc += fetch(u, ia) * fetch(v, ib)
        out[(i,)] = acc
    return out


@settings(max_examples=25, deadline=None)
@given(
    shape_a=st.sampled_from(INDEX_SHAPES),
    shape_b=st.sampled_from(INDEX_SHAPES),
    direction=st.sampled_from(["backward", "forward"]),
    values=st.lists(st.integers(-5, 5), min_size=40, max_size=40),
)
def test_random_reductions_end_to_end(shape_a, shape_b, direction, values):
    reduction = reduction_from(shape_a, shape_b)
    system = build_recurrence(reduction, direction)

    # Random (sparse-ish) host tables over the index range the shapes reach.
    span = range(-2 * (N + S), 2 * (N + S) + 1)
    u = {idx: values[abs(idx) % 20] for idx in span}
    v = {idx: values[20 + abs(idx) % 20] for idx in span}
    inputs = {"u": lambda m: u.get(m, 0), "v": lambda m: v.get(m, 0)}

    # 1. IR evaluator agrees with the dumb evaluation.
    res = run_system(system, PARAMS, inputs)
    expected = dumb_eval(shape_a, shape_b, u, v)
    assert res == expected

    # 2. Synthesize; skip instances the linear array cannot host.
    try:
        design = synthesize_uniform(system, PARAMS, LINEAR_BIDIR,
                                    time_bound=2)
    except (NoScheduleExists, NoSpaceMapExists):
        assume(False)
        return

    # 3. The machine agrees with everything.
    trace = trace_execution(system, PARAMS, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        LINEAR_BIDIR.decomposer())
    machine = run(mc, trace, inputs, strict=True)
    assert machine.results == expected
