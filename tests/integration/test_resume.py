"""Kill-and-resume: a sweep murdered mid-run resumes from its manifest
and produces a report byte-identical to the uninterrupted run."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

from repro.core import SweepSpec, read_manifest, run_sweep
from repro.report import sweep_pareto_table, sweep_table
from repro.util.instrument import STATS

SPEC = SweepSpec(problems=("dp",), interconnects=("fig1", "fig2"),
                 param_grid=({"n": 5}, {"n": 6}))

#: Script run in a subprocess: starts the sweep with a progress sink that
#: hard-kills the process (os._exit — sinks may not raise their way out)
#: after KILL_AFTER finished jobs.  The manifest keeps what completed.
KILLER = textwrap.dedent("""
    import os, sys
    from repro.core import SweepSpec, run_sweep

    manifest, kill_after = sys.argv[1], int(sys.argv[2])
    spec = SweepSpec(problems=("dp",), interconnects=("fig1", "fig2"),
                     param_grid=({"n": 5}, {"n": 6}))

    class Killer:
        jobs = 0
        def emit(self, event):
            if event.kind != "job":
                return
            Killer.jobs += 1
            if Killer.jobs >= kill_after:
                os._exit(9)

    run_sweep(spec, workers=0, use_cache=False, cross_check=False,
              manifest=manifest, progress=Killer())
    os._exit(0)      # not reached when kill_after < job count
""")


def _killed_run(tmp_path, kill_after: int):
    manifest = tmp_path / "sweep.manifest"
    proc = subprocess.run(
        [sys.executable, "-c", KILLER, str(manifest), str(kill_after)],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": SRC})
    assert proc.returncode == 9, proc.stderr
    return manifest


class TestKillAndResume:
    def test_resume_skips_completed_and_matches_uninterrupted(
            self, tmp_path):
        manifest = _killed_run(tmp_path, kill_after=2)
        info = read_manifest(manifest)
        assert info["total"] == 4
        assert len(info["completed"]) == 2        # died after two jobs

        resumed = run_sweep(SPEC, workers=0, use_cache=False,
                            cross_check=False, manifest=manifest)
        # Only the two unfinished jobs executed.
        assert resumed.cache_misses == 2
        assert STATS.metrics.gauges["sweep.jobs_resumed"] == 2

        reference = run_sweep(SPEC, workers=0, use_cache=False,
                              cross_check=False)
        assert sweep_table(resumed.results) == \
            sweep_table(reference.results)
        assert sweep_pareto_table(resumed.pareto()) == \
            sweep_pareto_table(reference.pareto())

    def test_resume_through_the_pool_path(self, tmp_path):
        manifest = _killed_run(tmp_path, kill_after=1)
        resumed = run_sweep(SPEC, workers=2, use_cache=False,
                            cross_check=False, manifest=manifest)
        reference = run_sweep(SPEC, workers=0, use_cache=False,
                              cross_check=False)
        assert sweep_table(resumed.results) == \
            sweep_table(reference.results)
        # Everything is journaled now: one more resume runs nothing.
        final = run_sweep(SPEC, workers=2, use_cache=False,
                          cross_check=False, manifest=manifest)
        assert final.cache_misses == 0
        assert sweep_table(final.results) == sweep_table(reference.results)

    def test_killed_manifest_is_well_formed_jsonl(self, tmp_path):
        manifest = _killed_run(tmp_path, kill_after=2)
        lines = manifest.read_text().splitlines()
        parsed = [json.loads(line) for line in lines if line.strip()]
        assert parsed[0]["kind"] == "header"
        assert all(r["kind"] == "done" for r in parsed[1:])
