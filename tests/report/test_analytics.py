"""``repro report`` analytics over synthetic run-record stores."""

import json

import pytest

from repro.obs import Histogram
from repro.obs.metrics import RunRecord, write_run_record
from repro.report import (
    bench_delta_table,
    cache_table,
    delta_records_table,
    latency_table,
    load_records,
    merged_histograms,
    render_report,
    report_dict,
    stage_table,
)
from repro.report.analytics import (
    bench_delta_dict,
    cache_dict,
    job_samples,
    latency_dict,
    stage_dict,
    summed_counters,
)


def _sweep_record(jobs, counters=None, telemetry=None):
    return RunRecord(
        command="sweep", argv=["--problems", "dp"], wall_time=1.0,
        stats={"counters": counters or {}},
        extra={"jobs": jobs, **({"telemetry": telemetry} if telemetry
                                 else {})})


def _single_record(engine, problem, wall_time, command="synthesize"):
    return RunRecord(
        command=command, wall_time=wall_time,
        extra={"workload": {"problem": problem, "params": {"n": 8},
                            "interconnect": "fig1", "engine": engine}})


def _job(engine, problem, wall_time, ok=True, cache_hit=False):
    return {"problem": problem, "params": {"n": 8}, "interconnect": "fig1",
            "engine": engine, "ok": ok, "cache_hit": cache_hit,
            "wall_time": wall_time}


JOBS = [_job("interpreter", "dp", 0.010),
        _job("interpreter", "dp", 0.030),
        _job("interpreter", "conv-forward", 0.020),
        _job("compiled", "dp", 0.005)]


class TestLoadRecords:
    def test_directory_and_file_sources(self, tmp_path):
        store = tmp_path / "metrics"
        p1 = write_run_record(_sweep_record(JOBS), store)
        p2 = write_run_record(_single_record("compiled", "dp", 0.5), store)
        assert p1 and p2
        assert len(load_records([store])) == 2
        assert len(load_records([p1])) == 1
        assert len(load_records([store, p1])) == 3

    def test_unreadable_files_skipped(self, tmp_path):
        store = tmp_path / "metrics"
        write_run_record(_sweep_record(JOBS), store)
        (store / "run-broken.json").write_text("{not json", encoding="utf-8")
        (store / "run-wrong-format.json").write_text(
            json.dumps({"format": 999, "command": "x"}), encoding="utf-8")
        records = load_records([store])
        assert len(records) == 1
        assert records[0].command == "sweep"


class TestLatency:
    def test_job_samples_group_by_engine_problem(self):
        groups = job_samples([_sweep_record(JOBS)])
        assert groups[("interpreter", "dp")] == [0.010, 0.030]
        assert groups[("compiled", "dp")] == [0.005]

    def test_single_run_contributes_record_wall_time(self):
        groups = job_samples([_single_record("native", "dp", 0.25)])
        assert groups[("native", "dp")] == [0.25]

    def test_latency_dict_percentiles(self):
        entries = latency_dict([_sweep_record(JOBS)])
        by_key = {(e["engine"], e["problem"]): e for e in entries}
        dp = by_key[("interpreter", "dp")]
        assert dp["count"] == 2
        assert dp["p50_s"] == pytest.approx(0.020)
        assert dp["max_s"] == 0.030

    def test_latency_table_renders_ms(self):
        table = latency_table([_sweep_record(JOBS)], "latency")
        assert table.startswith("latency\n")
        assert "interpreter" in table
        assert "20.0" in table      # p50 of 10ms/30ms

    def test_empty_records_message(self):
        assert "no latency samples" in latency_table([])


class TestCaches:
    COUNTERS = {"cache.hits": 6, "cache.misses": 2,
                "cache.negative_hits": 1, "native.cache_hits": 3,
                "native.cache_misses": 1}

    def test_summed_counters_across_records(self):
        records = [_sweep_record([], counters=self.COUNTERS),
                   _sweep_record([], counters={"cache.hits": 4})]
        assert summed_counters(records)["cache.hits"] == 10

    def test_cache_dict_hit_rate(self):
        entries = cache_dict([_sweep_record([], counters=self.COUNTERS)])
        by_family = {e["family"]: e for e in entries}
        assert by_family["design"]["hit_rate"] == pytest.approx(0.75)
        assert by_family["design"]["negative_hits"] == 1
        assert by_family["native"]["hits"] == 3
        assert "points" not in by_family   # no activity -> no row

    def test_cache_table_renders_rate(self):
        table = cache_table([_sweep_record([], counters=self.COUNTERS)])
        assert "75%" in table
        assert "design" in table

    def test_no_activity_message(self):
        assert "no cache activity" in cache_table([_sweep_record([])])


def _telemetry(stage_values):
    histograms = {}
    for name, values in stage_values.items():
        h = Histogram(name)
        for v in values:
            h.observe(v)
        histograms[name] = h.to_wire()
    return {"histograms": histograms}


class TestStages:
    def test_merged_histograms_union_of_records(self):
        a = _sweep_record([], telemetry=_telemetry({"solve": [0.1, 0.2]}))
        b = _sweep_record([], telemetry=_telemetry({"solve": [0.3],
                                                    "verify": [0.05]}))
        merged = merged_histograms([a, b])
        assert merged["solve"].count == 3
        assert merged["verify"].count == 1

    def test_stage_dict_summary(self):
        rec = _sweep_record([], telemetry=_telemetry({"solve": [0.1, 0.3]}))
        entries = stage_dict([rec])
        assert entries[0]["stage"] == "solve"
        assert entries[0]["count"] == 2
        assert entries[0]["mean"] == pytest.approx(0.2)

    def test_stage_table_and_empty_message(self):
        rec = _sweep_record([], telemetry=_telemetry({"solve": [0.1]}))
        assert "solve" in stage_table([rec])
        assert "no telemetry histograms" in stage_table([_sweep_record([])])


class TestDeltas:
    def test_delta_records_table_pct(self):
        current = [_sweep_record([_job("interpreter", "dp", 0.010)])]
        baseline = [_sweep_record([_job("interpreter", "dp", 0.020)])]
        table = delta_records_table(current, baseline)
        assert "-50.0%" in table

    def test_delta_handles_one_sided_keys(self):
        current = [_sweep_record([_job("interpreter", "dp", 0.010)])]
        baseline = [_sweep_record([_job("native", "dp", 0.020)])]
        table = delta_records_table(current, baseline)
        assert "interpreter" in table and "native" in table
        # no common key -> every delta column is "-"
        assert "%" not in table.splitlines()[-1]

    def test_bench_delta_newest_vs_previous(self, tmp_path):
        path = tmp_path / "BENCH_sweep_cache.json"
        path.write_text(json.dumps([
            {"n": 18, "warm_s": 0.100, "git_sha": "a"},
            {"n": 18, "warm_s": 0.080, "git_sha": "b"},
        ]), encoding="utf-8")
        entries = {e["metric"]: e for e in bench_delta_dict(path)}
        assert entries["warm_s"]["value"] == 0.080
        assert entries["warm_s"]["previous"] == 0.100
        assert "git_sha" not in entries        # non-numeric: skipped
        table = bench_delta_table(path)
        assert "-20.0%" in table

    def test_bench_delta_single_entry_has_no_previous(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps([{"warm_s": 0.1}]), encoding="utf-8")
        (entry,) = bench_delta_dict(path)
        assert entry["previous"] is None
        assert "-" in bench_delta_table(path)


class TestWholeReport:
    def _records(self):
        return [_sweep_record(
            JOBS, counters={"cache.hits": 3, "cache.misses": 1},
            telemetry=_telemetry({"solve": [0.1, 0.2]}))]

    def test_report_dict_sections(self):
        out = report_dict(self._records())
        assert out["records"] == 1
        assert {e["engine"] for e in out["latency"]} == {"interpreter",
                                                         "compiled"}
        assert out["caches"][0]["family"] == "design"
        assert out["stages"][0]["stage"] == "solve"
        assert "delta" not in out and "bench_delta" not in out
        json.dumps(out)   # --json must serialize

    def test_report_dict_with_dir_baseline(self, tmp_path):
        store = tmp_path / "base"
        write_run_record(_sweep_record(JOBS), store)
        out = report_dict(self._records(), baseline=store)
        assert "delta" in out and "bench_delta" not in out

    def test_report_dict_with_bench_baseline(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps([{"warm_s": 0.1}]), encoding="utf-8")
        out = report_dict(self._records(), baseline=path)
        assert "bench_delta" in out and "delta" not in out

    def test_render_report_composes_blocks(self):
        text = render_report(self._records())
        assert text.startswith("report over 1 run record(s)")
        assert "latency by engine x problem" in text
        assert "cache effectiveness" in text
        assert "stage latency (merged telemetry)" in text

    def test_render_report_with_baseline_dir(self, tmp_path):
        store = tmp_path / "base"
        write_run_record(_sweep_record(JOBS), store)
        text = render_report(self._records(), baseline=store)
        assert "delta vs baseline records" in text
