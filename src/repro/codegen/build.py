"""Compile generated kernels and content-address the shared objects.

The native artifact cache extends the persistent design cache: it lives in
a ``native/`` subdirectory of the same root (``$REPRO_DESIGN_CACHE`` or
``~/.cache/repro-designs``) and uses the same discipline — SHA-256 keys
over canonical JSON, atomic writes (concurrent sweep workers share the
directory), negative entries so a failing compile is diagnosed once, not
re-attempted on every run.

**Key scheme.**  ``sha256({format, emitter, toolchain fingerprint,
material})`` where ``material`` is either

* the **design token** (canonical JSON of the design's structure) when the
  caller has a design in hand — a warm run then skips *both* codegen and
  the compiler, loading ``<key>.so`` straight away; or
* the full generated C source, when lowering from bare microcode — codegen
  reruns (it is milliseconds) but the compiler is still skipped.

Per key the cache holds ``<key>.c`` (the source, for debugging),
``<key>.so`` (the loadable artifact) and ``<key>.json`` (metadata: status,
compile time, node count — or the compiler's stderr for a negative
entry).  Hit/miss/negative counters and the ``native.emit`` /
``native.cc`` / ``native.load`` spans make warm-vs-cold behaviour visible
in ``--stats``.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.codegen.emit import (
    EMITTER_VERSION,
    CKernelSource,
    UnsupportedForNative,
)
from repro.codegen.toolchain import Toolchain, find_toolchain
from repro.util.instrument import STATS

#: Typed counter handles (see :mod:`repro.obs.telemetry`); increments
#: route through ``STATS.count`` so span attribution is preserved.
_CACHE_HITS = STATS.metrics.counter("native.cache_hits")
_CACHE_MISSES = STATS.metrics.counter("native.cache_misses")
_NEGATIVE_HITS = STATS.metrics.counter("native.negative_hits")
_NEGATIVE_STORES = STATS.metrics.counter("native.negative_stores")
_COMPILES = STATS.metrics.counter("native.compiles")
_LOAD_ERRORS = STATS.metrics.counter("native.load_errors")
#: Wall time of each ``cc`` invocation, seconds.  Observed directly (not
#: via a span) so compile latency is visible even with tracing off.
_COMPILE_SECONDS = STATS.metrics.histogram("native.compile_s")

#: Same root as the design cache (see :mod:`repro.core.cache`); kept as a
#: literal here so the codegen layer stays import-independent of ``core``.
CACHE_ENV_VAR = "REPRO_DESIGN_CACHE"

#: Bump when the key layout or metadata schema changes incompatibly.
NATIVE_FORMAT_VERSION = 1


def native_cache_dir(root: "str | os.PathLike | None" = None) -> Path:
    """``<design cache root>/native`` — override root with the argument
    or ``$REPRO_DESIGN_CACHE``."""
    if root is not None:
        return Path(root)
    env = os.environ.get(CACHE_ENV_VAR)
    base = Path(env) if env else Path.home() / ".cache" / "repro-designs"
    return base / "native"


def kernel_key(material: str, toolchain: Toolchain) -> str:
    """Canonical SHA-256 key of one (kernel, toolchain) pair."""
    payload = json.dumps({
        "format": NATIVE_FORMAT_VERSION,
        "emitter": EMITTER_VERSION,
        "toolchain": toolchain.fingerprint,
        "material": material,
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class NativeKernel:
    """A loaded shared object ready to run value passes."""

    path: Path
    symbol: str
    node_count: int
    _fn: Callable

    def run(self, values: np.ndarray) -> int:
        """Execute the kernel over a C-contiguous int64 ``(rows, stride)``
        matrix in place; returns 0 on success, nonzero on overflow."""
        rows, stride = values.shape
        ptr = values.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
        return self._fn(ptr, rows, stride)


def _atomic_write(path: Path, body: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(body)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _load(path: Path, symbol: str, node_count: int) -> NativeKernel:
    with STATS.stage("native.load"):
        lib = ctypes.CDLL(str(path))
        fn = getattr(lib, symbol)
        fn.argtypes = [ctypes.POINTER(ctypes.c_int64), ctypes.c_long,
                       ctypes.c_long]
        fn.restype = ctypes.c_int
        return NativeKernel(path=path, symbol=symbol,
                            node_count=node_count, _fn=fn)


def _read_meta(path: Path) -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return None
    if meta.get("format") != NATIVE_FORMAT_VERSION:
        return None
    return meta


def load_or_build(source_provider: Callable[[], CKernelSource],
                  key_material: "str | None" = None,
                  cache_dir: "str | os.PathLike | None" = None,
                  ) -> "tuple[NativeKernel | None, str | None]":
    """The loadable kernel for one program, through the artifact cache.

    ``source_provider`` emits the C source on demand — it is *not* called
    on a warm design-keyed hit, which is what lets warm runs skip codegen
    entirely.  ``key_material`` keys the artifact by design token; when
    ``None`` the key is the emitted source itself.

    Returns ``(kernel, None)`` on success or ``(None, reason)`` when the
    native path is unavailable here: no toolchain, an op with no exact C
    emitter, or a compile failure (negative-cached so ``cc`` runs once per
    key, not once per process).
    """
    toolchain = find_toolchain()
    if toolchain is None:
        return None, "no C toolchain (cc/gcc/clang) found; set $REPRO_CC"

    root = native_cache_dir(cache_dir)
    source: "CKernelSource | None" = None
    if key_material is None:
        try:
            with STATS.stage("native.emit"):
                source = source_provider()
        except UnsupportedForNative as exc:
            return None, str(exc)
        key_material = source.text
    key = kernel_key(key_material, toolchain)
    so_path = root / f"{key}.so"
    meta_path = root / f"{key}.json"

    meta = _read_meta(meta_path)
    if meta is not None and meta.get("status") == "ok" and so_path.is_file():
        _CACHE_HITS.inc()
        try:
            return _load(so_path, meta["symbol"], meta["node_count"]), None
        except OSError as exc:   # truncated artifact, wrong arch, ...
            _LOAD_ERRORS.inc()
            reason = f"cached kernel failed to load: {exc}"
            return None, reason
    if meta is not None and meta.get("status") == "error":
        _CACHE_HITS.inc()
        _NEGATIVE_HITS.inc()
        return None, meta.get("reason", "cached compile failure")

    _CACHE_MISSES.inc()
    if source is None:
        try:
            with STATS.stage("native.emit"):
                source = source_provider()
        except UnsupportedForNative as exc:
            return None, str(exc)

    root.mkdir(parents=True, exist_ok=True)
    c_path = root / f"{key}.c"
    _atomic_write(c_path, source.text.encode("utf-8"))
    fd, tmp_so = tempfile.mkstemp(dir=root, suffix=".so.tmp")
    os.close(fd)
    t0 = time.perf_counter()
    try:
        with STATS.stage("native.cc"):
            proc = subprocess.run(
                toolchain.compile_command(str(c_path), tmp_so),
                capture_output=True, text=True, timeout=300)
    except (OSError, subprocess.TimeoutExpired) as exc:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        return None, f"compiler failed to run: {exc}"
    compile_ms = round((time.perf_counter() - t0) * 1e3, 3)
    _COMPILE_SECONDS.observe(compile_ms / 1e3)
    if proc.returncode != 0:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        reason = (f"cc exited {proc.returncode}: "
                  f"{proc.stderr.strip()[-500:]}")
        _atomic_write(meta_path, json.dumps({
            "format": NATIVE_FORMAT_VERSION, "status": "error",
            "reason": reason, "toolchain": toolchain.fingerprint,
        }, sort_keys=True, indent=1).encode("utf-8"))
        _NEGATIVE_STORES.inc()
        return None, reason
    os.replace(tmp_so, so_path)
    _atomic_write(meta_path, json.dumps({
        "format": NATIVE_FORMAT_VERSION, "status": "ok",
        "symbol": source.symbol, "node_count": source.node_count,
        "compile_ms": compile_ms, "toolchain": toolchain.fingerprint,
    }, sort_keys=True, indent=1).encode("utf-8"))
    _COMPILES.inc()
    STATS.annotate(native_compile_ms=compile_ms)
    try:
        return _load(so_path, source.symbol, source.node_count), None
    except OSError as exc:
        _LOAD_ERRORS.inc()
        return None, f"freshly built kernel failed to load: {exc}"
