"""System C toolchain discovery for the native engine.

The native backend is feature-gated on a working C compiler: everything
degrades to the vector engine when none is present, so this module never
raises on a missing toolchain — it answers "is there one, and which one".

Discovery order: ``$REPRO_CC`` (explicit override), then ``cc``, ``gcc``,
``clang`` on ``PATH``.  ``$REPRO_NO_NATIVE`` (any non-empty value)
force-disables the toolchain — the test suite uses it to exercise the
fallback paths on machines that *do* have a compiler.

The **fingerprint** (compiler path + the first line of ``--version``)
enters every native cache key: upgrading or switching the compiler must
miss the shared-object cache, never load an artifact some other toolchain
produced.
"""

from __future__ import annotations

import os
import shutil
import subprocess
from dataclasses import dataclass

#: Environment variable naming the C compiler explicitly.
CC_ENV_VAR = "REPRO_CC"

#: Environment variable force-disabling the native backend when non-empty.
DISABLE_ENV_VAR = "REPRO_NO_NATIVE"

#: Compilers probed on PATH, in order, when ``$REPRO_CC`` is unset.
_CANDIDATES = ("cc", "gcc", "clang")


@dataclass(frozen=True)
class Toolchain:
    """One usable C compiler: invocation path plus its cache fingerprint."""

    cc: str
    fingerprint: str

    def compile_command(self, source: str, output: str) -> list[str]:
        """The shared-object build line for one generated kernel."""
        return [self.cc, "-O2", "-std=c99", "-shared", "-fPIC",
                source, "-o", output]


#: Memoised discovery result: unset / Toolchain / None (no toolchain).
_cached: "Toolchain | None | str" = "unset"


def _version_line(cc: str) -> str | None:
    """First line of ``cc --version``, or ``None`` if it cannot run."""
    try:
        proc = subprocess.run([cc, "--version"], capture_output=True,
                              text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    out = proc.stdout.strip().splitlines()
    return out[0] if out else ""


def _discover() -> "Toolchain | None":
    if os.environ.get(DISABLE_ENV_VAR):
        return None
    explicit = os.environ.get(CC_ENV_VAR)
    candidates = (explicit,) if explicit else _CANDIDATES
    for name in candidates:
        path = shutil.which(name)
        if path is None:
            continue
        version = _version_line(path)
        if version is None:
            continue
        return Toolchain(cc=path, fingerprint=f"{path}|{version}")
    return None


def find_toolchain(refresh: bool = False) -> "Toolchain | None":
    """The system C toolchain, or ``None`` when the native engine must
    fall back.  Discovery is memoised per process; ``refresh`` re-probes
    (tests flipping the environment variables)."""
    global _cached
    if refresh or _cached == "unset":
        _cached = _discover()
    return _cached


def native_available(refresh: bool = False) -> bool:
    """Whether the native engine can compile kernels on this machine."""
    return find_toolchain(refresh) is not None
