"""Emit a self-contained C kernel from a level-grouped vector program.

The codegen source is the same :class:`~repro.ir.vector.VectorProgram`
the vector engine executes: input groups (filled from Python — host input
callables stay arbitrary Python), then copy/compute groups in ascending
level order.  Within a level no value slot is both read and written
(:meth:`~repro.ir.vector.VectorProgram.kernel_schedule`), so each group
lowers to one sequential ``for`` loop over ``static const`` index arrays —
straight-line per-level loops over integer-indexed slots, no dispatch.

Semantics contract (the reason the native engine is bit-identical to the
interpreter wherever it runs): every arithmetic op carries the *same*
checked int64 behaviour as :mod:`repro.ir.vector` —
``__builtin_add_overflow`` / ``__builtin_mul_overflow`` where the ndarray
path uses the sign-flip / quotient-probe tests.  Any overflow returns a
nonzero status from the kernel and the caller re-runs the pass on the
object path, exactly like the ndarray fast path's transparent fallback.

Only the stock exact repertoire is emittable (``id``/``add``/``mul``/
``min``/``max``/``mac`` per :func:`~repro.ir.vector.exact_opcode`, plus
accumulator composites over it via ``Op.components``).  A program using a
custom Python callable raises :class:`UnsupportedForNative` — the design
then runs on the vector engine, never on approximated semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.ops import Op
from repro.ir.vector import VectorProgram, exact_opcode

#: Exported entry point of every generated kernel.
KERNEL_SYMBOL = "repro_kernel"

#: Bumped on any change to the generated code's shape or semantics; part
#: of every native cache key, so stale shared objects can never load.
EMITTER_VERSION = 1


class UnsupportedForNative(Exception):
    """The program contains an op with no exact C emitter — run it on the
    vector engine instead (custom Python callables, symbolic values)."""


@dataclass(frozen=True)
class CKernelSource:
    """One generated translation unit plus what a loader must know."""

    text: str
    node_count: int
    symbol: str = KERNEL_SYMBOL


def _int_rows(name: str, values: Sequence[int], per_line: int = 14) -> list:
    """``static const int32_t name[] = {...};`` wrapped for readability."""
    body = [f"static const int32_t {name}[] = {{"]
    vals = list(values)
    for at in range(0, len(vals), per_line):
        chunk = ", ".join(str(v) for v in vals[at:at + per_line])
        body.append(f"  {chunk},")
    body.append("};")
    return body


class _OpEmitter:
    """Recursive statement emitter for one compute group's loop body."""

    def __init__(self) -> None:
        self.temps = 0

    def fresh(self) -> str:
        self.temps += 1
        return f"t{self.temps}"

    def emit(self, op: Op, args: list, lines: list) -> str:
        """Append statements computing ``op(*args)``; returns the C
        expression (a temp name or a pass-through operand) holding the
        result.  Overflow paths ``return 1`` out of the kernel."""
        tag = exact_opcode(op)
        if tag == "id":
            return args[0]
        if tag == "add":
            out = self.fresh()
            lines.append(f"i64 {out}; if (__builtin_add_overflow("
                         f"{args[0]}, {args[1]}, &{out})) return 1;")
            return out
        if tag == "mul":
            out = self.fresh()
            lines.append(f"i64 {out}; if (__builtin_mul_overflow("
                         f"{args[0]}, {args[1]}, &{out})) return 1;")
            return out
        if tag in ("min", "max"):
            cmp = "<" if tag == "min" else ">"
            out = self.fresh()
            lines.append(f"i64 {out} = ({args[0]} {cmp} {args[1]}) "
                         f"? {args[0]} : {args[1]};")
            return out
        if tag == "mac":
            prod = self.emit_tagged("mul", args[1:], lines)
            return self.emit_tagged("add", [args[0], prod], lines)
        if op.components is not None:
            # Accumulator composite hf(prev, *xs) = h(prev, f(*xs)).
            h, f = op.components
            inner = self.emit(f, args[1:], lines)
            return self.emit(h, [args[0], inner], lines)
        raise UnsupportedForNative(
            f"op {op.name}/{op.arity} has no exact C emitter "
            f"(custom callable); the design stays on the vector engine")

    def emit_tagged(self, tag: str, args: list, lines: list) -> str:
        """Emit one of the primitive tags directly (helper for ``mac``)."""
        from repro.ir.ops import ADD, MUL

        return self.emit(ADD if tag == "add" else MUL, args, lines)


def emit_kernel(program: VectorProgram) -> CKernelSource:
    """Lower ``program`` to one C translation unit.

    The kernel signature is::

        int repro_kernel(int64_t *v, long rows, long stride);

    ``v`` is the row-major ``(rows, stride)`` value matrix with every host
    input slot already filled (the Python side runs the gather phase);
    rows are independent instantiations (the multi-seed batch axis).
    Returns 0 on success, 1 the moment any checked operation overflows.
    """
    header: list[str] = [
        f"/* generated by repro.codegen (emitter v{EMITTER_VERSION}) — "
        "exact int64 value pass */",
        "#include <stdint.h>",
        "",
        "#if !defined(__GNUC__) && !defined(__clang__)",
        '#error "native kernels need GCC/Clang overflow builtins"',
        "#endif",
        "",
        "typedef int64_t i64;",
        "",
    ]
    body: list[str] = [
        f"int {KERNEL_SYMBOL}(i64 *v, long rows, long stride) {{",
        "  long s, i;",
        "  for (s = 0; s < rows; ++s) {",
        "    i64 *r = v + s * stride;",
    ]
    level = None
    for gid, group in enumerate(program.kernel_schedule()):
        if group.kind == "input":
            continue  # gather phase stays in Python
        if group.level != level:
            level = group.level
            body.append(f"    /* level {level} */")
        width = group.width
        dst = f"g{gid}_d"
        header.extend(_int_rows(dst, group.dst.tolist()))
        if group.kind == "copy":
            src = f"g{gid}_s"
            header.extend(_int_rows(src, group.operands[0].tolist()))
            body.append(f"    for (i = 0; i < {width}; ++i) "
                        f"r[{dst}[i]] = r[{src}[i]];")
            continue
        arg_names = []
        for pos, column in enumerate(group.operands):
            name = f"g{gid}_a{pos}"
            header.extend(_int_rows(name, column.tolist()))
            arg_names.append(name)
        body.append(f"    for (i = 0; i < {width}; ++i) {{  "
                    f"/* {group.op.name} x{width} */")
        loads = [f"r[{name}[i]]" for name in arg_names]
        stmts: list[str] = []
        result = _OpEmitter().emit(group.op, loads, stmts)
        body.extend(f"      {line}" for line in stmts)
        body.append(f"      r[{dst}[i]] = {result};")
        body.append("    }")
    body.extend(["  }", "  return 0;", "}", ""])
    header.append("")
    return CKernelSource(text="\n".join(header + body),
                         node_count=program.node_count)
