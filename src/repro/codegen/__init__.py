"""Native code generation: C kernels emitted from level-grouped programs.

The pipeline is ``emit`` (VectorProgram → C translation unit), ``toolchain``
(system compiler discovery + cache fingerprint) and ``build`` (compile,
content-address and load the shared objects).  :mod:`repro.machine.native`
wires the three into the ``engine="native"`` execution path.
"""

from repro.codegen.build import (
    NATIVE_FORMAT_VERSION,
    NativeKernel,
    kernel_key,
    load_or_build,
    native_cache_dir,
)
from repro.codegen.emit import (
    EMITTER_VERSION,
    KERNEL_SYMBOL,
    CKernelSource,
    UnsupportedForNative,
    emit_kernel,
)
from repro.codegen.toolchain import (
    CC_ENV_VAR,
    DISABLE_ENV_VAR,
    Toolchain,
    find_toolchain,
    native_available,
)

__all__ = [
    "CC_ENV_VAR",
    "CKernelSource",
    "DISABLE_ENV_VAR",
    "EMITTER_VERSION",
    "KERNEL_SYMBOL",
    "NATIVE_FORMAT_VERSION",
    "NativeKernel",
    "Toolchain",
    "UnsupportedForNative",
    "emit_kernel",
    "find_toolchain",
    "kernel_key",
    "load_or_build",
    "native_available",
    "native_cache_dir",
]
