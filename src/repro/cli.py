"""Command-line interface: synthesize and inspect designs without code.

All synthesis entry points come from :mod:`repro.api`, the blessed public
surface.

Examples::

    python -m repro synthesize --problem dp --interconnect fig2 --n 8
    python -m repro synthesize --problem conv-backward --n 12 --s 4 --verify
    python -m repro explore --recurrence forward --n 12 --s 4
    python -m repro sweep --problems dp,conv-backward --interconnects \
fig1,linear --n 6,8 --stats
    python -m repro figures --n 8
    python -m repro cell --n 8 --x 3 --y 2
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.api import (
    SweepSpec,
    SynthesisOptions,
    explore_uniform,
    resolve_interconnect,
    run_sweep,
    synthesize,
    verify_design,
)
from repro.problems import (
    classify_design,
    convolution_backward,
    convolution_forward,
    convolution_inputs,
    dp_inputs,
    dp_system,
    matmul_inputs,
    matmul_system,
)
from repro.report import (
    design_table,
    module_table,
    render_array,
    render_cell_actions,
    sweep_pareto_table,
    sweep_table,
)
from repro.util.instrument import STATS

PROBLEMS = {
    "dp": (dp_system, ("n",)),
    "conv-backward": (convolution_backward, ("n", "s")),
    "conv-forward": (convolution_forward, ("n", "s")),
    "matmul": (matmul_system, ("n",)),
}


def _interconnect(name: str):
    try:
        return resolve_interconnect(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0])


def _random_inputs(problem: str, params, seed: int = 0):
    rng = random.Random(seed)
    if problem == "dp":
        return dp_inputs([rng.randint(1, 9)
                          for _ in range(params["n"] - 1)])
    if problem.startswith("conv"):
        x = [rng.randint(-9, 9) for _ in range(params["n"])]
        w = [rng.randint(-3, 3) for _ in range(params["s"])]
        return convolution_inputs(x, w)
    if problem == "matmul":
        n = params["n"]
        import numpy as np

        A = np.array([[rng.randint(-5, 5) for _ in range(n)]
                      for _ in range(n)])
        B = np.array([[rng.randint(-5, 5) for _ in range(n)]
                      for _ in range(n)])
        return matmul_inputs(A, B)
    raise SystemExit(f"no random inputs for {problem!r}")


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def cmd_synthesize(args) -> int:
    builder, needed = PROBLEMS[args.problem]
    params = {"n": args.n}
    if "s" in needed:
        params["s"] = args.s
    system = builder()
    options = SynthesisOptions(engine=args.engine)
    design = synthesize(system, params, _interconnect(args.interconnect),
                        options)
    print(module_table(design, f"{args.problem} on {args.interconnect} "
                               f"({params})"))
    print()
    print(render_array(design))
    if args.verify:
        report = verify_design(
            design, _random_inputs(args.problem, params, args.seed),
            engine=options.engine)
        print(f"\nverification: {report}  (seed={args.seed}, "
              f"engine={options.engine})")
        if report.machine_stats:
            s = report.machine_stats
            print(f"machine: {s.cycles} cycles, {s.cells_used} cells, "
                  f"{s.operations} ops, utilization {s.utilization:.0%}")
        return 0 if report.ok else 1
    return 0


def cmd_explore(args) -> int:
    builder = (convolution_backward if args.recurrence == "backward"
               else convolution_forward)
    params = {"n": args.n, "s": args.s}
    designs = explore_uniform(builder(), params,
                              _interconnect(args.interconnect),
                              time_bound=args.time_bound)
    named = {}
    for d in designs:
        label = classify_design(d.flows)
        if label and label not in named:
            named[label] = d
    print(design_table(
        sorted(named.items()),
        f"designs from the {args.recurrence} recurrence ({params})"))
    print(f"\n{len(designs)} designs explored; named: {sorted(named)}")
    return 0


def cmd_sweep(args) -> int:
    problems = _csv(args.problems)
    for prob in problems:
        if prob not in PROBLEMS:
            raise SystemExit(f"unknown problem {prob!r}; choose from "
                             f"{sorted(PROBLEMS)}")
    interconnects = tuple(_interconnect(name)
                          for name in _csv(args.interconnects))
    try:
        ns = [int(v) for v in _csv(args.n)]
        ss = [int(v) for v in _csv(args.s)]
    except ValueError as exc:
        raise SystemExit(f"bad --n/--s value: {exc}")
    if not problems or not interconnects or not ns or not ss:
        raise SystemExit("sweep needs at least one problem, interconnect "
                         "and parameter value")
    grid = tuple({"n": n, "s": s} for n in ns for s in ss)
    options = SynthesisOptions(time_bound=args.time_bound,
                               space_bound=args.space_bound)
    spec = SweepSpec(problems=tuple(problems), interconnects=interconnects,
                     param_grid=grid, options=options)
    report = run_sweep(
        spec,
        workers=0 if args.serial else args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cross_check=not args.no_cross_check)
    print(sweep_table(
        report.results,
        f"sweep: {len(problems)} problem(s) x {len(interconnects)} "
        f"interconnect(s) x {len(grid)} binding(s)"))
    print()
    print(sweep_pareto_table(
        report.pareto(), "Pareto front (completion time vs. cells)"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
        print(f"\nwrote {args.json}")
    if args.stats:
        print()
        print(report.summary())
    return 0 if report.ok_results else 1


def cmd_figures(args) -> int:
    params = {"n": args.n}
    for alias in ("fig1", "fig2"):
        design = synthesize(dp_system(), params, _interconnect(alias))
        print(f"== {alias} (n={args.n}): {design.cell_count} cells, "
              f"completion {design.completion_time} ==")
        print(render_array(design))
        print()
    return 0


def cmd_cell(args) -> int:
    design = synthesize(dp_system(), {"n": args.n},
                        _interconnect(args.interconnect))
    print(render_cell_actions(design, (args.x, args.y)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesize non-uniform systolic designs "
                    "(Guerra & Melhem, 1986)")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--stats", action="store_true",
                        help="print solver instrumentation (candidates "
                             "examined, cache hits, stage wall times)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="synthesize one design",
                       parents=[common])
    p.add_argument("--problem", choices=sorted(PROBLEMS), default="dp")
    p.add_argument("--interconnect", default="fig1")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--s", type=int, default=4)
    p.add_argument("--verify", action="store_true",
                   help="run the design on the systolic machine")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the random verification inputs")
    p.add_argument("--engine", choices=["compiled", "interpreted"],
                   default="compiled",
                   help="machine execution engine for --verify: 'compiled' "
                        "lowers microcode to integer-indexed form (fast), "
                        "'interpreted' is the cycle-by-cycle oracle")
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("explore", help="enumerate convolution designs",
                       parents=[common])
    p.add_argument("--recurrence", choices=["backward", "forward"],
                   default="backward")
    p.add_argument("--interconnect", default="linear")
    p.add_argument("--n", type=int, default=12)
    p.add_argument("--s", type=int, default=4)
    p.add_argument("--time-bound", type=int, default=2)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "sweep", parents=[common],
        help="batch-synthesize a (problems x interconnects x params) grid "
             "in parallel, with a persistent design cache")
    p.add_argument("--problems", default="dp,conv-backward,conv-forward",
                   help="comma-separated problem names")
    p.add_argument("--interconnects", default="fig1,fig2,linear",
                   help="comma-separated interconnect names/aliases")
    p.add_argument("--n", default="8", help="comma-separated n values")
    p.add_argument("--s", default="4", help="comma-separated s values "
                                            "(problems that use s)")
    p.add_argument("--time-bound", type=int, default=3)
    p.add_argument("--space-bound", type=int, default=1)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: cpu_count-1, min 1)")
    p.add_argument("--serial", action="store_true",
                   help="run in-process without a worker pool (debugging)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the persistent design cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_DESIGN_CACHE or "
                        "~/.cache/repro-designs)")
    p.add_argument("--no-cross-check", action="store_true",
                   help="skip re-synthesizing one cached entry as a "
                        "consistency check")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full sweep report as JSON")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("figures", help="print both DP arrays",
                       parents=[common])
    p.add_argument("--n", type=int, default=8)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("cell", help="one cell's action timetable",
                       parents=[common])
    p.add_argument("--interconnect", default="fig2")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--x", type=int, required=True)
    p.add_argument("--y", type=int, required=True)
    p.set_defaults(fn=cmd_cell)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rc = args.fn(args)
    if getattr(args, "stats", False):
        print()
        print(STATS.report())
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
