"""Command-line interface: synthesize and inspect designs without code.

All synthesis entry points come from :mod:`repro.api`, the blessed public
surface.

Examples::

    python -m repro synthesize --problem dp --interconnect fig2 --n 8
    python -m repro synthesize --problem conv-backward --n 12 --s 4 --verify
    python -m repro explore --recurrence forward --n 12 --s 4
    python -m repro sweep --problems dp,conv-backward --interconnects \
fig1,linear --n 6,8 --stats
    python -m repro trace --problem dp --interconnect fig1 --n 8
    python -m repro figures --n 8
    python -m repro cell --n 8 --x 3 --y 2
    python -m repro profile --problem dp --n 10 --verify
    python -m repro report ./metrics --baseline BENCH_sweep_scaling.json
    python -m repro fuzz --examples 200 --budget 120 --seed 1
    python -m repro fuzz --replay

Observability: every command accepts ``--stats`` (hierarchical span report)
and ``--metrics-dir`` (persist a :class:`~repro.obs.metrics.RunRecord`;
defaults to ``$REPRO_METRICS_DIR`` when set).  ``trace`` additionally
exports cycle-level machine event logs as JSON-lines and Chrome
``trace_event`` JSON for Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.api import (
    ENGINES,
    DesignCache,
    SweepSpec,
    SynthesisOptions,
    available_passes,
    default_pipeline,
    engine_help,
    explore_uniform,
    read_manifest,
    resolve_interconnect,
    run_sweep,
    synthesize,
    verify_design,
)
from repro.problems import (
    classify_design,
    convolution_backward,
    convolution_forward,
    dp_system,
    input_factory,
    matmul_system,
    random_inputs,
)
from repro.ir import trace_execution
from repro.machine import cell_utilization, compile_design, run
from repro.obs import (
    CLIProgress,
    EventLog,
    JsonlHeartbeat,
    RunRecord,
    Span,
    TRACER,
    canonical_order,
    collapsed_stacks,
    git_sha,
    load_run_record,
    metrics_dir,
    spans_to_chrome_trace,
    write_run_record,
)
from repro.report import (
    cell_utilization_table,
    design_table,
    load_records,
    module_table,
    render_array,
    render_cell_actions,
    render_report,
    report_dict,
    sweep_pareto_table,
    sweep_table,
)
from repro.util.instrument import STATS

#: Per-invocation extras commands may stash for the run record
#: (machine stats, event counts, exported file paths).
RUN_EXTRA: dict = {}

PROBLEMS = {
    "dp": (dp_system, ("n",)),
    "conv-backward": (convolution_backward, ("n", "s")),
    "conv-forward": (convolution_forward, ("n", "s")),
    "matmul": (matmul_system, ("n",)),
}


def _interconnect(name: str):
    try:
        return resolve_interconnect(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0])


def _random_inputs(problem: str, params, seed: int = 0):
    try:
        return random_inputs(problem, params, seed)
    except KeyError as exc:
        raise SystemExit(exc.args[0])


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def cmd_synthesize(args) -> int:
    builder, needed = PROBLEMS[args.problem]
    params = {"n": args.n}
    if "s" in needed:
        params["s"] = args.s
    system = builder()
    options = SynthesisOptions(engine=args.engine)
    pipeline = None
    if args.print_ir_after:
        pipeline = default_pipeline(print_ir_after=_csv(args.print_ir_after))
    design = synthesize(system, params, _interconnect(args.interconnect),
                        options, pipeline=pipeline)
    RUN_EXTRA["workload"] = {"problem": args.problem, "params": params,
                             "interconnect": args.interconnect,
                             "engine": options.engine}
    print(module_table(design, f"{args.problem} on {args.interconnect} "
                               f"({params})"))
    print()
    print(render_array(design))
    if args.verify:
        if args.seeds > 1:
            report = verify_design(
                design, input_factory(args.problem, params),
                engine=options.engine,
                seeds=range(args.seed, args.seed + args.seeds))
            print(f"\nverification: {report}  "
                  f"(seeds={args.seed}..{args.seed + args.seeds - 1}, "
                  f"engine={options.engine})")
        else:
            report = verify_design(
                design, _random_inputs(args.problem, params, args.seed),
                engine=options.engine)
            print(f"\nverification: {report}  (seed={args.seed}, "
                  f"engine={options.engine})")
        if report.machine_stats:
            s = report.machine_stats
            RUN_EXTRA["machine_stats"] = asdict(s)
            print(f"machine: {s.cycles} cycles, {s.cells_used} cells, "
                  f"{s.operations} ops, utilization {s.utilization:.0%}")
        return 0 if report.ok else 1
    return 0


def cmd_explore(args) -> int:
    builder = (convolution_backward if args.recurrence == "backward"
               else convolution_forward)
    params = {"n": args.n, "s": args.s}
    designs = explore_uniform(builder(), params,
                              _interconnect(args.interconnect),
                              time_bound=args.time_bound)
    named = {}
    for d in designs:
        label = classify_design(d.flows)
        if label and label not in named:
            named[label] = d
    print(design_table(
        sorted(named.items()),
        f"designs from the {args.recurrence} recurrence ({params})"))
    print(f"\n{len(designs)} designs explored; named: {sorted(named)}")
    return 0


def cmd_sweep(args) -> int:
    problems = _csv(args.problems)
    for prob in problems:
        if prob not in PROBLEMS:
            raise SystemExit(f"unknown problem {prob!r}; choose from "
                             f"{sorted(PROBLEMS)}")
    interconnects = tuple(_interconnect(name)
                          for name in _csv(args.interconnects))
    try:
        ns = [int(v) for v in _csv(args.n)]
        ss = [int(v) for v in _csv(args.s)]
    except ValueError as exc:
        raise SystemExit(f"bad --n/--s value: {exc}")
    if not problems or not interconnects or not ns or not ss:
        raise SystemExit("sweep needs at least one problem, interconnect "
                         "and parameter value")
    grid = tuple({"n": n, "s": s} for n in ns for s in ss)
    options = SynthesisOptions(time_bound=args.time_bound,
                               space_bound=args.space_bound,
                               engine=args.engine)
    spec = SweepSpec(problems=tuple(problems), interconnects=interconnects,
                     param_grid=grid, options=options,
                     verify_seeds=args.verify_seeds)
    sinks = []
    if args.progress:
        sinks.append(CLIProgress(sys.stderr))
    if args.heartbeat:
        sinks.append(JsonlHeartbeat(args.heartbeat))
    report = run_sweep(
        spec,
        workers=0 if args.serial else args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cross_check=not args.no_cross_check,
        progress=sinks or None,
        manifest=args.manifest)
    RUN_EXTRA["jobs"] = [
        {"problem": r.problem, "params": dict(r.params),
         "interconnect": r.interconnect, "engine": options.engine,
         "ok": r.ok, "cache_hit": r.cache_hit, "wall_time": r.wall_time}
        for r in report.results]
    print(sweep_table(
        report.results,
        f"sweep: {len(problems)} problem(s) x {len(interconnects)} "
        f"interconnect(s) x {len(grid)} binding(s)"))
    print()
    print(sweep_pareto_table(
        report.pareto(), "Pareto front (completion time vs. cells)"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
        print(f"\nwrote {args.json}")
    if args.heartbeat:
        print(f"heartbeat: {args.heartbeat}")
    if args.manifest:
        resumed = int(STATS.metrics.gauges.get("sweep.jobs_resumed", 0))
        info = read_manifest(args.manifest)
        print(f"manifest: {args.manifest} "
              f"({len(info['completed'])}/{info['total']} journaled, "
              f"{resumed} restored this run)")
    if args.stats:
        print()
        print(report.summary())
    return 0 if report.ok_results else 1


def cmd_cache(args) -> int:
    """Inspect and maintain the persistent design cache."""
    cache = DesignCache(args.cache_dir)
    if args.action == "info":
        entries = cache.entries()
        ok = sum(1 for e in entries if e.get("status") == "ok")
        size = sum(e.get("bytes") or 0 for e in entries)
        print(f"cache: {cache.root}")
        print(f"entries: {len(entries)} ({ok} ok, {len(entries) - ok} "
              f"negative), {size / 1024:.1f} KiB")
        front = cache.pareto()
        if front:
            rows = [[str(e["completion_time"]), str(e["cells"]),
                     e["key"][:12]] for e in front]
            from repro.report import format_grid
            print(format_grid(["completion", "cells", "key"], rows))
        RUN_EXTRA["cache"] = {"entries": len(entries), "bytes": size}
        return 0
    if args.action == "migrate":
        moved = cache.migrate()
        print(f"migrated {moved} flat entr{'y' if moved == 1 else 'ies'} "
              f"into shards under {cache.root}")
        RUN_EXTRA["cache"] = {"migrated": moved}
        return 0
    if args.action == "prune":
        if args.max_age_days is None and args.max_bytes is None:
            raise SystemExit("cache prune needs --max-age-days and/or "
                             "--max-bytes")
        report = cache.prune(max_age_days=args.max_age_days,
                             max_bytes=args.max_bytes)
        print(f"{report} under {cache.root}")
        RUN_EXTRA["cache"] = {"examined": report.examined,
                              "removed": report.removed,
                              "freed_bytes": report.freed_bytes}
        return 0
    removed = cache.clear()                              # action == "clear"
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from "
          f"{cache.root}")
    RUN_EXTRA["cache"] = {"cleared": removed}
    return 0


def cmd_trace(args) -> int:
    """Record or replay a cycle-level execution trace.

    Default mode synthesizes the requested design, executes it with an
    event sink attached and exports the log twice: ``<out>.events.jsonl``
    (one event per line) and ``<out>.trace.json`` (Chrome ``trace_event``
    format — open in Perfetto or ``chrome://tracing``).  With
    ``--from-record`` it instead replays a persisted
    :class:`~repro.obs.metrics.RunRecord` in the terminal.
    """
    if args.from_record:
        try:
            record = load_run_record(args.from_record)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read run record "
                             f"{args.from_record!r}: {exc}")
        print(record.render())
        return 0

    builder, needed = PROBLEMS[args.problem]
    params = {"n": args.n}
    if "s" in needed:
        params["s"] = args.s
    system = builder()
    design = synthesize(system, params, _interconnect(args.interconnect))
    inputs = _random_inputs(args.problem, params, args.seed)
    trace = trace_execution(system, params, inputs)
    mc = compile_design(trace, design.schedules, design.space_maps,
                        design.interconnect.decomposer())
    log = EventLog()
    machine = run(mc, trace, inputs, engine=args.engine, sink=log)

    # Canonical order makes the exports byte-identical across engines.
    log.events = canonical_order(log.events)

    out = args.out or f"trace-{args.problem}-n{args.n}"
    jsonl_path = f"{out}.events.jsonl"
    chrome_path = f"{out}.trace.json"
    log.write_jsonl(jsonl_path)
    log.write_chrome_trace(chrome_path)

    s = machine.stats
    lo, hi = log.cycle_range()
    counts = log.counts_by_kind()
    print(f"trace: {args.problem} on {args.interconnect} ({params}), "
          f"engine={args.engine}")
    print(f"machine: {s.cycles} cycles [{lo}, {hi}], {s.cells_used} cells, "
          f"{s.operations} ops, {s.hops} hops, "
          f"utilization {s.utilization:.0%}")
    print("events: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    print()
    print(cell_utilization_table(cell_utilization(mc),
                                 "per-cell utilization",
                                 limit=args.cells))
    print(f"\nwrote {jsonl_path}")
    print(f"wrote {chrome_path}  (load in Perfetto / chrome://tracing)")
    RUN_EXTRA["machine_stats"] = asdict(s)
    RUN_EXTRA["event_counts"] = counts
    RUN_EXTRA["exports"] = [jsonl_path, chrome_path]
    RUN_EXTRA["workload"] = {"problem": args.problem, "params": params,
                             "interconnect": args.interconnect,
                             "engine": args.engine}
    return 0


def cmd_profile(args) -> int:
    """Profile the synthesis side and export standard profile formats.

    Default mode force-enables the span tracer, synthesizes the requested
    design (verifying it too with ``--verify``, which adds the machine-side
    spans) and writes the span forest twice: ``<out>.collapsed`` (folded
    stacks — feed to flamegraph.pl or drop into speedscope) and
    ``<out>.profile.json`` (Chrome ``trace_event`` — open in Perfetto).
    With ``--from-record`` it re-exports the span tree of a persisted
    RunRecord instead of running anything.
    """
    if args.from_record:
        try:
            record = load_run_record(args.from_record)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read run record "
                             f"{args.from_record!r}: {exc}")
        spans = [Span.from_dict(s) for s in record.spans]
        if not spans:
            raise SystemExit(f"run record {args.from_record!r} carries no "
                             f"spans (was it recorded with --stats or a "
                             f"metrics dir?)")
        out = args.out or f"profile-{record.command}"
    else:
        TRACER.enable()      # regardless of --stats: spans ARE the output
        builder, needed = PROBLEMS[args.problem]
        params = {"n": args.n}
        if "s" in needed:
            params["s"] = args.s
        system = builder()
        options = SynthesisOptions(engine=args.engine)
        design = synthesize(system, params,
                            _interconnect(args.interconnect), options)
        if args.verify:
            verify_design(design, _random_inputs(args.problem, params,
                                                 args.seed),
                          engine=options.engine)
        RUN_EXTRA["workload"] = {"problem": args.problem, "params": params,
                                 "interconnect": args.interconnect,
                                 "engine": options.engine}
        spans = TRACER.spans()
        out = args.out or f"profile-{args.problem}-n{args.n}"

    collapsed_path = f"{out}.collapsed"
    chrome_path = f"{out}.profile.json"
    folded = collapsed_stacks(spans)
    with open(collapsed_path, "w", encoding="utf-8") as fh:
        fh.write(folded + ("\n" if folded else ""))
    with open(chrome_path, "w", encoding="utf-8") as fh:
        json.dump(spans_to_chrome_trace(spans), fh, indent=1, sort_keys=True)
    total_ms = sum(s.duration for s in spans) * 1000
    print(f"profiled {len(spans)} root span(s), {total_ms:.1f} ms total")
    print(f"wrote {collapsed_path}  (collapsed stacks: flamegraph.pl, "
          f"speedscope)")
    print(f"wrote {chrome_path}  (load in Perfetto / chrome://tracing)")
    RUN_EXTRA["exports"] = [collapsed_path, chrome_path]
    return 0


def cmd_report(args) -> int:
    """Aggregate run-record stores into the operator's analytics tables."""
    sources = list(args.records)
    if not sources:
        default = metrics_dir()
        if default is None:
            raise SystemExit(
                "repro report: give one or more record directories/files, "
                "or set $REPRO_METRICS_DIR")
        sources = [str(default)]
    records = load_records(sources)
    if not records:
        print(f"no run records under: {', '.join(sources)}")
        return 1
    print(render_report(records, baseline=args.baseline))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report_dict(records, baseline=args.baseline), fh,
                      indent=1, sort_keys=True)
        print(f"\nwrote {args.json}")
    RUN_EXTRA["report"] = {"records": len(records), "sources": sources}
    return 0


def cmd_figures(args) -> int:
    params = {"n": args.n}
    for alias in ("fig1", "fig2"):
        design = synthesize(dp_system(), params, _interconnect(alias))
        print(f"== {alias} (n={args.n}): {design.cell_count} cells, "
              f"completion {design.completion_time} ==")
        print(render_array(design))
        print()
    return 0


def cmd_cell(args) -> int:
    design = synthesize(dp_system(), {"n": args.n},
                        _interconnect(args.interconnect))
    print(render_cell_actions(design, (args.x, args.y)))
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import fuzz, load_corpus, replay_corpus

    if args.replay:
        results = replay_corpus(args.corpus_dir,
                                pipeline=not args.no_pipeline,
                                native=args.native)
        if not results:
            print(f"no corpus artifacts under {args.corpus_dir}")
            return 0
        failed = 0
        for artifact, outcome, ok in results:
            mark = "ok" if ok else "FAIL"
            want = artifact["expect"] or "not-a-bug"
            print(f"{mark:4} {artifact['path'].name}: {outcome.status} "
                  f"(expect {want})")
            if not ok:
                failed += 1
                detail = outcome.detail.strip()
                if detail:
                    print("     " + detail.splitlines()[-1])
        print(f"replayed {len(results)} artifacts, {failed} failing")
        RUN_EXTRA["fuzz"] = {"replayed": len(results), "failed": failed}
        return 1 if failed else 0

    report = fuzz(max_examples=args.examples, budget=args.budget,
                  seed=args.seed, corpus_dir=args.corpus_dir,
                  max_failures=args.max_failures, db_dir=args.db,
                  log=print, pipeline=not args.no_pipeline,
                  native=args.native)
    print(report.summary())
    known = len(load_corpus(args.corpus_dir))
    print(f"corpus: {known} artifacts under {args.corpus_dir}")
    RUN_EXTRA["fuzz"] = {"examples_run": report.examples_run,
                         "counts": report.counts,
                         "failures": len(report.failures),
                         "seed": report.seed}
    return 1 if report.failures else 0


def cmd_passes(args) -> int:
    rows = available_passes()
    width = max(len(name) for name, _, _ in rows)
    print("passes of the synthesis pipeline "
          "(* = part of the default pipeline):")
    for name, description, in_default in rows:
        marker = "*" if in_default else " "
        print(f"  {marker} {name:<{width}}  {description}")
    print("\ncompose custom pipelines with repro.api.default_pipeline() "
          "+ .with_pass(make_pass(name), before=/after=)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesize non-uniform systolic designs "
                    "(Guerra & Melhem, 1986)")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--stats", action="store_true",
                        help="print solver instrumentation (candidates "
                             "examined, cache hits, stage wall times and "
                             "the hierarchical span tree)")
    common.add_argument("--metrics-dir", default=None, metavar="DIR",
                        help="persist a structured RunRecord of this run "
                             "(default: $REPRO_METRICS_DIR when set)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="synthesize one design",
                       parents=[common])
    p.add_argument("--problem", choices=sorted(PROBLEMS), default="dp")
    p.add_argument("--interconnect", default="fig1")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--s", type=int, default=4)
    p.add_argument("--verify", action="store_true",
                   help="run the design on the systolic machine")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the random verification inputs")
    p.add_argument("--seeds", type=int, default=1, metavar="S",
                   help="verify S seeded random instances (seed..seed+S-1); "
                        "with --engine vector all S run in one batched "
                        "kernel pass")
    p.add_argument("--engine", choices=list(ENGINES),
                   default="compiled",
                   help=engine_help("machine execution engine for --verify"))
    p.add_argument("--print-ir-after", default=None, metavar="PASSES",
                   help="print the system IR after the named passes "
                        "(comma-separated; 'all' dumps after every pass; "
                        "see 'repro passes' for names)")
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("explore", help="enumerate convolution designs",
                       parents=[common])
    p.add_argument("--recurrence", choices=["backward", "forward"],
                   default="backward")
    p.add_argument("--interconnect", default="linear")
    p.add_argument("--n", type=int, default=12)
    p.add_argument("--s", type=int, default=4)
    p.add_argument("--time-bound", type=int, default=2)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "sweep", parents=[common],
        help="batch-synthesize a (problems x interconnects x params) grid "
             "in parallel, with a persistent design cache")
    p.add_argument("--problems", default="dp,conv-backward,conv-forward",
                   help="comma-separated problem names")
    p.add_argument("--interconnects", default="fig1,fig2,linear",
                   help="comma-separated interconnect names/aliases")
    p.add_argument("--n", default="8", help="comma-separated n values")
    p.add_argument("--s", default="4", help="comma-separated s values "
                                            "(problems that use s)")
    p.add_argument("--time-bound", type=int, default=3)
    p.add_argument("--space-bound", type=int, default=1)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: cpu_count-1, min 1)")
    p.add_argument("--serial", action="store_true",
                   help="run in-process without a worker pool (debugging)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the persistent design cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_DESIGN_CACHE or "
                        "~/.cache/repro-designs)")
    p.add_argument("--no-cross-check", action="store_true",
                   help="skip re-synthesizing one cached entry as a "
                        "consistency check")
    p.add_argument("--verify-seeds", type=int, default=0, metavar="S",
                   help="verify every solved design on S seeded random "
                        "instances (0 = skip)")
    p.add_argument("--engine", choices=list(ENGINES),
                   default="vector",
                   help=engine_help(
                       "execution engine for --verify-seeds"))
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full sweep report as JSON")
    p.add_argument("--progress", action="store_true",
                   help="live progress line on stderr (jobs done/failed/"
                        "cached, throughput, ETA)")
    p.add_argument("--heartbeat", default=None, metavar="FILE",
                   help="append every progress event as one JSON line to "
                        "FILE (tail-able; survives an interrupted sweep)")
    p.add_argument("--manifest", default=None, metavar="FILE",
                   help="journal completions to FILE and resume from it: "
                        "a re-run with the same grid skips every job "
                        "already recorded (survives kill -9 mid-sweep)")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "cache", parents=[common],
        help="inspect and maintain the persistent design cache "
             "(info / prune / migrate / clear)")
    p.add_argument("action", choices=["info", "prune", "migrate", "clear"],
                   help="info: entry counts, size and the cache-wide "
                        "Pareto front; prune: evict by age/size; migrate: "
                        "move flat-layout entries into shards; clear: "
                        "delete everything")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_DESIGN_CACHE or "
                        "~/.cache/repro-designs)")
    p.add_argument("--max-age-days", type=float, default=None, metavar="D",
                   help="prune: evict entries older than D days")
    p.add_argument("--max-bytes", type=int, default=None, metavar="B",
                   help="prune: evict oldest-first until the cache fits "
                        "B bytes")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "trace", parents=[common],
        help="export a cycle-level machine event trace (JSON-lines + "
             "Chrome trace_event for Perfetto), or replay a run record")
    p.add_argument("--problem", choices=sorted(PROBLEMS), default="dp")
    p.add_argument("--interconnect", default="fig1")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--s", type=int, default=4)
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the machine's host inputs")
    p.add_argument("--engine", choices=list(ENGINES),
                   default="compiled",
                   help=engine_help("execution engine emitting the events "
                                    "(every engine produces the identical "
                                    "stream)"))
    p.add_argument("--out", default=None, metavar="PREFIX",
                   help="output prefix (default: trace-<problem>-n<n>)")
    p.add_argument("--cells", type=int, default=12, metavar="N",
                   help="rows of the per-cell utilization table (busiest "
                        "first; default 12)")
    p.add_argument("--from-record", default=None, metavar="FILE",
                   help="replay a persisted RunRecord instead of tracing")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile", parents=[common],
        help="profile a synthesis run: export the span tree as collapsed "
             "stacks (flamegraph) and Chrome trace_event JSON (Perfetto)")
    p.add_argument("--problem", choices=sorted(PROBLEMS), default="dp")
    p.add_argument("--interconnect", default="fig1")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--s", type=int, default=4)
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the --verify inputs")
    p.add_argument("--engine", choices=list(ENGINES),
                   default="compiled",
                   help=engine_help("execution engine for --verify"))
    p.add_argument("--verify", action="store_true",
                   help="also run the design on the machine, adding the "
                        "verify/compile/machine spans to the profile")
    p.add_argument("--out", default=None, metavar="PREFIX",
                   help="output prefix (default: profile-<problem>-n<n>)")
    p.add_argument("--from-record", default=None, metavar="FILE",
                   help="re-export the span tree of a persisted RunRecord "
                        "instead of profiling a fresh run")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "report", parents=[common],
        help="aggregate RunRecord stores into latency (engine x problem "
             "p50/p95/max), cache hit-rate and stage tables, with an "
             "optional delta against a baseline store or BENCH_*.json")
    p.add_argument("records", nargs="*", metavar="DIR_OR_FILE",
                   help="record directories or files (default: "
                        "$REPRO_METRICS_DIR)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="a baseline record directory (p50 delta per "
                        "engine x problem) or a BENCH_<name>.json "
                        "trajectory file (newest vs previous entry)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the report as JSON")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "passes", parents=[common],
        help="list the synthesis pipeline's passes (default and opt-in)")
    p.set_defaults(fn=cmd_passes)

    p = sub.add_parser("figures", help="print both DP arrays",
                       parents=[common])
    p.add_argument("--n", type=int, default=8)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("cell", help="one cell's action timetable",
                       parents=[common])
    p.add_argument("--interconnect", default="fig2")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--x", type=int, required=True)
    p.add_argument("--y", type=int, required=True)
    p.set_defaults(fn=cmd_cell)

    p = sub.add_parser(
        "fuzz", parents=[common],
        help="property-fuzz the nonuniform pipeline: random recurrence "
             "systems through restructure/synthesize/every engine, "
             "cross-checked against a direct evaluation; shrunk failures "
             "are saved as corpus artifacts")
    p.add_argument("--examples", type=int, default=100, metavar="N",
                   help="example budget (default 100)")
    p.add_argument("--budget", type=float, default=60.0, metavar="SEC",
                   help="time budget in seconds (default 60)")
    p.add_argument("--seed", type=int, default=0,
                   help="generation seed (a run is reproducible from "
                        "seed + budgets)")
    p.add_argument("--corpus-dir", default=str(Path("tests") / "corpus"),
                   metavar="DIR",
                   help="where shrunk failing artifacts are saved and "
                        "replayed from (default tests/corpus)")
    p.add_argument("--max-failures", type=int, default=3, metavar="K",
                   help="stop after K distinct failure signatures")
    p.add_argument("--db", default=None, metavar="DIR",
                   help="persistent hypothesis example database (CI keeps "
                        "shrunk examples across runs)")
    p.add_argument("--replay", action="store_true",
                   help="re-run every corpus artifact instead of "
                        "generating new examples")
    p.add_argument("--no-pipeline", action="store_true",
                   help="skip the pass-pipeline fourth comparison point "
                        "of each case (faster, less coverage)")
    p.add_argument("--native", action="store_true",
                   help="add the native C-kernel engine as a comparison "
                        "point of each case (skipped with a note when no "
                        "C toolchain is available)")
    p.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    record_root = metrics_dir(getattr(args, "metrics_dir", None))
    want_stats = getattr(args, "stats", False)
    was_enabled = TRACER.enabled
    if want_stats or record_root is not None:
        TRACER.enable()        # build span trees for the report/record
    RUN_EXTRA.clear()
    started = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    t0 = time.perf_counter()
    try:
        rc = args.fn(args)
    finally:
        TRACER.enabled = was_enabled
    wall = time.perf_counter() - t0
    if want_stats:
        print()
        print(STATS.report())
    if record_root is not None:
        extra = {k: v for k, v in RUN_EXTRA.items() if k != "machine_stats"}
        wire = TRACER.metrics.to_wire()
        if wire["counters"] or wire["gauges"] or wire["histograms"]:
            # The typed registry travels with the record so `repro report`
            # can merge stage histograms across a whole campaign.
            extra["telemetry"] = wire
        record = RunRecord(
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            started_at=started, wall_time=wall, git_sha=git_sha(),
            stats=TRACER.snapshot(), spans=TRACER.span_dicts(),
            machine_stats=RUN_EXTRA.get("machine_stats"),
            extra=extra)
        path = write_run_record(record, record_root)
        print(f"\nrun record: {path}")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
