"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Piping into `head` closes stdout early; die quietly like other CLIs
    # (devnull dup avoids a second BrokenPipeError during interpreter
    # shutdown when the buffered stream flushes).
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(1)
