"""Minimum chain decomposition of a finite poset (Dilworth's theorem).

The paper notes that "minimal chain decompositions can be found by network
flow techniques [Ford & Fulkerson]".  We implement the standard reduction:
min #chains = n - |maximum matching| in the bipartite comparability graph,
solved with networkx's Hopcroft–Karp.  Used as the ablation baseline against
the constructive :func:`repro.chains.decompose.greedy_chains`.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.util.lazyimport import lazy_import

nx = lazy_import("networkx")


def minimum_chain_decomposition(elements: Sequence[Hashable],
                                less_than: Callable[[Hashable, Hashable], bool]
                                ) -> list[list[Hashable]]:
    """Partition ``elements`` into the minimum number of chains of the strict
    partial order ``less_than``.

    The order must be transitive and irreflexive; this is assumed, not
    checked (callers pass availability comparisons, which are induced by
    integer values and hence automatically transitive).
    """
    elems = list(elements)
    n = len(elems)
    if n == 0:
        return []
    g = nx.Graph()
    left = [("L", i) for i in range(n)]
    right = [("R", i) for i in range(n)]
    g.add_nodes_from(left, bipartite=0)
    g.add_nodes_from(right, bipartite=1)
    for i in range(n):
        for j in range(n):
            if i != j and less_than(elems[i], elems[j]):
                g.add_edge(("L", i), ("R", j))
    matching = nx.bipartite.hopcroft_karp_matching(g, top_nodes=left)
    # successor[i] = j  when the matching pairs L_i with R_j.
    successor: dict[int, int] = {}
    has_predecessor: set[int] = set()
    for node, mate in matching.items():
        if node[0] == "L":
            i, j = node[1], mate[1]
            successor[i] = j
            has_predecessor.add(j)
    chains: list[list[Hashable]] = []
    for i in range(n):
        if i in has_predecessor:
            continue
        chain = [elems[i]]
        cur = i
        while cur in successor:
            cur = successor[cur]
            chain.append(elems[cur])
        chains.append(chain)
    return chains


def width(elements: Sequence[Hashable],
          less_than: Callable[[Hashable, Hashable], bool]) -> int:
    """The poset's width = size of a maximum antichain = minimum #chains."""
    return len(minimum_chain_decomposition(elements, less_than))
