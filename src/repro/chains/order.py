"""The operand-availability preorder ``>_T`` of Section III.

Given the coarse timing function ``T : I^s -> Z`` and a point ``i^s``, the
computations ``(i^s, i_n)`` for the reduction values ``i_n`` are compared by
when their operands become available::

    (i^s, k') >_T (i^s, k'')  <=>
        max_j T(i^s - d_j(k')) > max_j T(i^s - d_j(k''))

Ties (equal availability) are incomparable — that is what forces several
chains and, ultimately, the non-uniform design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.ir.program import HighLevelSpec
from repro.schedule.linear import LinearSchedule


@dataclass(frozen=True)
class AvailabilityOrder:
    """``>_T`` restricted to one domain point's reduction range."""

    spec: HighLevelSpec
    coarse: LinearSchedule
    point: tuple[int, ...]
    _availability_cache: dict = field(default_factory=dict, repr=False,
                                      compare=False)

    def availability(self, k: int) -> int:
        """``max_j T(operand_j(point, k))`` — when the last operand of the
        computation ``(point, k)`` is ready under the coarse timing.

        Memoised per ``k``: the chain-splitting loops
        (:func:`minimal_elements`, ``greedy_chains``) ask for the same
        availability O(k²) times while peeling minima."""
        cached = self._availability_cache.get(k)
        if cached is None:
            cached = self._availability_cache[k] = max(
                self.coarse.time(arg.operand_point(self.point, k))
                for arg in self.spec.args)
        return cached

    def k_values(self) -> list[int]:
        binding = dict(zip(self.spec.dims, self.point))
        return list(self.spec.k_range(binding))

    def greater(self, k1: int, k2: int) -> bool:
        """``(point, k1) >_T (point, k2)``."""
        return self.availability(k1) > self.availability(k2)

    def comparable(self, k1: int, k2: int) -> bool:
        return self.availability(k1) != self.availability(k2)

    def minimal_elements(self, among: Sequence[int] | None = None) -> list[int]:
        """The ``k`` values of minimal availability (the paper derives the
        chain split by repeatedly peeling these)."""
        ks = list(among) if among is not None else self.k_values()
        if not ks:
            return []
        best = min(self.availability(k) for k in ks)
        return [k for k in ks if self.availability(k) == best]

    def sorted_by_availability(self) -> list[tuple[int, int]]:
        """(availability, k) pairs sorted by availability then k."""
        return sorted((self.availability(k), k) for k in self.k_values())
