"""Chain decomposition of the reduction range (Section III).

"We are interested ... in finding a chain decomposition of >_T such that the
computations in a chain are also sorted (either in increasing or decreasing
order) according to the index i_n."

Two decomposers are provided:

* :func:`greedy_chains` — the paper's constructive method: repeatedly peel
  minimal elements, appending each to the first chain that keeps both the
  strict availability order and monotonicity in ``i_n``;
* :func:`symbolic_chains` — the closed-form version used by the restructurer:
  for specs whose per-argument availabilities are affine in ``i_n`` with
  mixed slopes, the split point is the crossing of the two envelopes — for
  dynamic programming ``k* = (i+j)/2`` — yielding a descending chain
  ``floor(k*) .. lo`` and an ascending chain ``floor(k*)+1 .. hi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Literal

from repro.chains.order import AvailabilityOrder
from repro.ir.affine import AffineExpr, QuasiAffineExpr
from repro.ir.program import HighLevelSpec
from repro.schedule.linear import LinearSchedule


@dataclass
class Chain:
    """A concrete chain: ``k`` values in execution order."""

    ks: list[int]

    @property
    def direction(self) -> Literal["asc", "desc", "single", "empty"]:
        if not self.ks:
            return "empty"
        if len(self.ks) == 1:
            return "single"
        return "asc" if self.ks[1] > self.ks[0] else "desc"

    def __len__(self) -> int:
        return len(self.ks)

    def __iter__(self):
        return iter(self.ks)


def greedy_chains(order: AvailabilityOrder) -> list[Chain]:
    """The paper's peeling construction, made deterministic.

    Process computations by increasing availability (ties: smaller ``k``
    first); append each to the first existing chain it extends — strictly
    later availability than the chain's tail and consistent ``k`` direction —
    else open a new chain.
    """
    chains: list[Chain] = []
    tails: list[tuple[int, int]] = []  # (availability, k) of each chain's tail
    for avail, k in order.sorted_by_availability():
        placed = False
        for idx, chain in enumerate(chains):
            tail_avail, tail_k = tails[idx]
            if avail <= tail_avail:
                continue
            direction = chain.direction
            if direction in ("single",):
                chain.ks.append(k)
                tails[idx] = (avail, k)
                placed = True
                break
            if direction == "asc" and k > tail_k:
                chain.ks.append(k)
                tails[idx] = (avail, k)
                placed = True
                break
            if direction == "desc" and k < tail_k:
                chain.ks.append(k)
                tails[idx] = (avail, k)
                placed = True
                break
        if not placed:
            chains.append(Chain([k]))
            tails.append((avail, k))
    return chains


@dataclass(frozen=True)
class ChainSpec:
    """A symbolic chain: the ``k`` traversal of one recurrence module.

    ``first``/``last`` are (quasi-)affine in the outer indices; ``order`` is
    the traversal direction ("desc" runs ``first`` down to ``last``).
    """

    name: str
    order: Literal["asc", "desc"]
    first: AffineExpr | QuasiAffineExpr
    last: AffineExpr

    def concrete(self, binding) -> list[int]:
        f = self.first.evaluate_int(binding)
        l = self.last.evaluate_int(binding)
        if self.order == "desc":
            return list(range(f, l - 1, -1))
        return list(range(f, l + 1))


class ChainDecompositionError(Exception):
    """The spec's availability structure is not supported symbolically."""


def _argument_slope(spec: HighLevelSpec, coarse: LinearSchedule,
                    arg_index: int) -> tuple[Fraction, AffineExpr]:
    """Availability of argument ``j`` as an affine function of ``k``:
    returns (slope, value-at-k=0 as an expression in the outer dims)."""
    arg = spec.args[arg_index]
    t = arg.replaced_coord
    coeffs = dict(zip(coarse.dims, coarse.coeffs))
    slope = Fraction(coeffs[spec.dims[t]])
    base = AffineExpr.const(coarse.offset)
    for pos, dim in enumerate(spec.dims):
        if pos == t:
            continue
        base = base + (AffineExpr.var(dim) - arg.offsets[pos]) * coeffs[dim]
    return slope, base


def symbolic_chains(spec: HighLevelSpec,
                    coarse: LinearSchedule) -> list[ChainSpec]:
    """Closed-form chain decomposition from the coarse timing function.

    * All argument availabilities share the sign of their ``k`` slope →
      a single chain (ascending for negative slopes: larger ``k`` available
      earlier; descending for positive).
    * One positive- and one negative-slope argument (the dynamic-programming
      shape) → two chains split where the envelopes cross.
    """
    slopes = [
        _argument_slope(spec, coarse, j) for j in range(len(spec.args))]
    positive = [(s, b) for s, b in slopes if s > 0]
    negative = [(s, b) for s, b in slopes if s < 0]
    flat = [(s, b) for s, b in slopes if s == 0]
    if flat and (positive or negative):
        raise ChainDecompositionError(
            "mixed flat and sloped availabilities are not supported")
    if not positive and not negative:
        # Availability independent of k: any order works; use ascending.
        return [ChainSpec("chain0", "asc", spec.k_lower, spec.k_upper)]
    if not negative:
        # All availabilities grow with k: smallest k first.
        return [ChainSpec("chain0", "asc", spec.k_lower, spec.k_upper)]
    if not positive:
        # All availabilities shrink with k: largest k first.
        return [ChainSpec("chain0", "desc", spec.k_upper, spec.k_lower)]
    if len(positive) != 1 or len(negative) != 1:
        raise ChainDecompositionError(
            "more than two crossing availability envelopes; use greedy_chains")
    (s_up, b_up), (s_down, b_down) = positive[0], negative[0]
    # Crossing of  s_up * k + b_up  and  s_down * k + b_down :
    #   k* = (b_down - b_up) / (s_up - s_down).
    denom = s_up - s_down
    numer = b_down - b_up
    # Both DP-style inputs give integer-coefficient numer and denom.
    if denom.denominator != 1 or not numer.is_integer_form():
        raise ChainDecompositionError(
            "non-integral envelope crossing; use greedy_chains")
    split = numer.floordiv(int(denom))
    # Descending chain: k = floor(k*) down to k_lower (the positive-slope
    # argument makes *small* k available late, so start at the valley).
    descending = ChainSpec("chain0", "desc", split, spec.k_lower)
    # Ascending chain: k = floor(k*) + 1 up to k_upper.
    split_plus = QuasiAffineExpr(split.numerator + split.divisor,
                                 split.divisor)
    ascending = ChainSpec("chain1", "asc", split_plus, spec.k_upper)
    return [descending, ascending]
