"""Chain machinery: the availability preorder >_T, the paper's greedy chain
decomposition, the symbolic (closed-form) split, and a Dilworth-minimal
baseline."""

from repro.chains.decompose import (
    Chain,
    ChainDecompositionError,
    ChainSpec,
    greedy_chains,
    symbolic_chains,
)
from repro.chains.dilworth import minimum_chain_decomposition, width
from repro.chains.order import AvailabilityOrder

__all__ = [
    "AvailabilityOrder",
    "Chain",
    "ChainDecompositionError",
    "ChainSpec",
    "greedy_chains",
    "minimum_chain_decomposition",
    "symbolic_chains",
    "width",
]
