"""Corpus artifacts: shrunk fuzz failures persisted as regression tests.

One artifact is one JSON file, ``fuzz-<sha12>.json``::

    {
      "format": 1,
      "descriptor": { ... CaseDescriptor.to_dict() ... },
      "expect": "ok" | "infeasible" | null,
      "note": "why this artifact exists",
      "found": {"stage": ..., "detail": ...}     # failure evidence, optional
    }

``expect`` is the contract the replay test enforces: the recorded status
must match exactly.  A *fresh* failure is saved with ``expect: null`` —
the replay then only requires "not a bug", and whoever fixes the bug
upgrades ``expect`` to the now-correct status, turning the artifact into a
pinned regression.  The file name is content-addressed on the descriptor,
so re-finding the same shrunk example never duplicates an artifact.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fuzz.cases import CaseDescriptor

ARTIFACT_FORMAT = 1

#: Repo-relative default, shared by the CLI and the replay test.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"


def artifact_name(desc: CaseDescriptor) -> str:
    canonical = json.dumps(desc.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return f"fuzz-{digest}.json"


def save_artifact(corpus_dir, desc: CaseDescriptor, *,
                  expect: "str | None" = None, note: str = "",
                  found: "dict | None" = None) -> Path:
    """Write (or overwrite) the artifact for ``desc``; returns its path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": ARTIFACT_FORMAT,
        "descriptor": desc.to_dict(),
        "expect": expect,
        "note": note,
    }
    if found is not None:
        payload["found"] = found
    path = corpus_dir / artifact_name(desc)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_artifact(path) -> dict:
    """The parsed artifact with ``descriptor`` decoded.

    Returns ``{"descriptor": CaseDescriptor, "expect": ..., "note": ...,
    "found": ..., "path": Path}``.
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"{path}: unknown artifact format "
                         f"{payload.get('format')!r}")
    return {
        "descriptor": CaseDescriptor.from_dict(payload["descriptor"]),
        "expect": payload.get("expect"),
        "note": payload.get("note", ""),
        "found": payload.get("found"),
        "path": path,
    }


def load_corpus(corpus_dir) -> list[dict]:
    """Every artifact under ``corpus_dir``, sorted by file name."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return [load_artifact(p) for p in sorted(corpus_dir.glob("fuzz-*.json"))]
