"""The fuzzing loop: hypothesis generation, shrinking, corpus persistence.

:func:`fuzz` drives :func:`~repro.fuzz.harness.run_case` over random
:class:`~repro.fuzz.cases.CaseDescriptor`\\ s under a joint example/time
budget.  Failures go through hypothesis's shrinker — the *minimal* failing
descriptor is what gets persisted to the corpus (``expect: null``, see
:mod:`repro.fuzz.corpus`) — and duplicate failure signatures within one run
are collapsed so a single bug cannot flood the corpus.

Determinism: generation is seeded (``--seed``); batch ``b`` of a run uses
``seed + b``, so a failure is reproducible by rerunning with the same seed
and budget.  Hypothesis's on-disk example database is off by default
(``db_dir`` opts in — useful in CI to resume shrinking across runs).

Hypothesis is an optional dependency of the *library* (it is a test
requirement of the repo): importing this module works without it,
:func:`fuzz` raises cleanly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path

from repro.fuzz.cases import BODY1_OPS, BODY2_OPS, COMBINE_OPS, CaseDescriptor
from repro.fuzz.corpus import save_artifact
from repro.fuzz.harness import CaseOutcome, run_case

try:
    from hypothesis import HealthCheck, assume, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings
    from hypothesis import strategies as st
    from hypothesis.database import DirectoryBasedExampleDatabase
    from hypothesis.errors import Unsatisfiable

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the repo's test env has hypothesis
    HAVE_HYPOTHESIS = False

INT64_MIN = -(2 ** 63)

#: Values chosen to straddle every representation boundary the vector
#: engine cares about: comfortable int64, the exact int64 edges, bignums
#: beyond int64, and exact rationals.
BOUNDARY_INTS = (INT64_MIN, INT64_MIN + 1, 2 ** 63 - 1, 2 ** 62, -1,
                 10 ** 25, -(10 ** 25))

#: Argument shapes, simplest first (hypothesis shrinks toward the front).
#: The first three pick the chain structure — two chains (the paper's
#: Section IV shape), single descending, single ascending; then the unary
#: families; the offset-carrying tails are usually unclosed and exercise
#: the reject paths.
ARG_SHAPES = (
    ((1, (0, 0)), (0, (0, 0))),
    ((1, (0, 0)), (1, (0, 0))),
    ((0, (0, 0)), (0, (0, 0))),
    ((1, (0, 0)),),
    ((0, (0, 0)),),
    ((1, (0, 0)), (1, (1, 0))),
    ((0, (0, 0)), (0, (0, 1))),
)

INTERCONNECTS = ("fig1", "fig2", "mesh", "hex")


def _require_hypothesis() -> None:
    if not HAVE_HYPOTHESIS:
        raise RuntimeError(
            "fuzzing needs the 'hypothesis' package (a test dependency of "
            "this repo); install it or run the corpus replay tests instead")


if HAVE_HYPOTHESIS:

    def _values():
        return st.one_of(
            st.integers(-9, 9),
            st.sampled_from(BOUNDARY_INTS),
            st.builds(Fraction, st.integers(-9, 9), st.integers(1, 9)),
        )

    @st.composite
    def descriptors(draw) -> CaseDescriptor:
        """Strategy over the whole case family of :mod:`repro.fuzz.cases`."""
        args = draw(st.sampled_from(ARG_SHAPES))
        body_table = BODY1_OPS if len(args) == 1 else BODY2_OPS
        lo = draw(st.sampled_from((1, 2)))
        hi = draw(st.sampled_from((1, 2)))
        return CaseDescriptor(
            # The domain needs n >= lo + hi + 1 to be non-empty.
            n=draw(st.integers(lo + hi + 1, 7)),
            lo=lo,
            hi=hi,
            args=args,
            body=draw(st.sampled_from(sorted(body_table))),
            combine=draw(st.sampled_from(sorted(COMBINE_OPS))),
            pool=tuple(draw(st.lists(_values(), min_size=1, max_size=5))),
            interconnect=draw(st.sampled_from(INTERCONNECTS)),
            time_bound=draw(st.sampled_from((3, 2))),
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz` run."""

    seed: int
    examples_run: int = 0                      # includes shrink replays
    counts: dict = field(default_factory=dict)  # status -> count
    #: Deduplicated shrunk failures: ``(descriptor, outcome, artifact path
    #: or None)``.
    failures: list = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = [f"{self.examples_run} cases in {self.elapsed:.1f}s "
                 f"(seed {self.seed})"]
        for status in ("ok", "infeasible", "reject", "bug"):
            if status in self.counts:
                parts.append(f"{status}={self.counts[status]}")
        lines = ["fuzz: " + "  ".join(parts)]
        if self.budget_exhausted:
            lines.append("fuzz: time budget exhausted")
        for desc, outcome, path in self.failures:
            where = f" -> {path}" if path else ""
            lines.append(f"FAILURE [{outcome.stage}]{where}")
            detail = outcome.detail.strip()
            if detail:
                lines.append("  " + detail.splitlines()[-1])
        return "\n".join(lines)


class _FuzzFailure(Exception):
    """Raised inside the hypothesis probe so the shrinker minimises the
    failing descriptor before the loop persists it."""


def _signature(outcome: CaseOutcome) -> tuple:
    tail = outcome.detail.strip().splitlines()
    return (outcome.stage, tail[-1][:160] if tail else "")


def fuzz(max_examples: int = 100, budget: float = 60.0, seed: int = 0,
         corpus_dir=None, max_failures: int = 3, batch_size: int = 20,
         db_dir=None, log=None, pipeline: bool = True,
         native: bool = False) -> FuzzReport:
    """Fuzz the nonuniform pipeline until a budget is hit.

    Stops when ``max_examples`` cases ran, ``budget`` seconds elapsed or
    ``max_failures`` distinct failure signatures were collected.  Each
    failure is shrunk by hypothesis; the minimal descriptor is saved under
    ``corpus_dir`` (unless ``None``) and reported in the returned
    :class:`FuzzReport`.  ``pipeline=False`` skips the pass-pipeline
    fourth comparison point of each case (faster, less coverage);
    ``native=True`` adds the C-kernel engine to every case's engine
    cross-check (slower per case — a ``cc`` run per distinct design).
    """
    _require_hypothesis()
    started = time.monotonic()
    report = FuzzReport(seed=seed)
    seen_signatures: set[tuple] = set()
    database = (DirectoryBasedExampleDatabase(str(db_dir))
                if db_dir is not None else None)
    batch = 0
    while (report.examples_run < max_examples
           and time.monotonic() - started < budget
           and len(report.failures) < max_failures):
        count = min(batch_size, max_examples - report.examples_run)
        state: dict = {}

        @hypothesis_seed(seed + batch)
        @settings(max_examples=count, deadline=None, database=database,
                  suppress_health_check=list(HealthCheck),
                  print_blob=False)
        @given(descriptors())
        def probe(desc: CaseDescriptor) -> None:
            if time.monotonic() - started > budget:
                report.budget_exhausted = True
                assume(False)
            outcome = run_case(desc, pipeline=pipeline, native=native)
            report.examples_run += 1
            report.counts[outcome.status] = (
                report.counts.get(outcome.status, 0) + 1)
            if outcome.is_bug:
                # Track the latest failure: hypothesis reruns the *minimal*
                # shrunk example last, so this is what gets persisted.
                state["last"] = (desc, outcome)
                raise _FuzzFailure(outcome.stage)

        try:
            probe()
        except _FuzzFailure:
            desc, outcome = state["last"]
            sig = _signature(outcome)
            if sig not in seen_signatures:
                seen_signatures.add(sig)
                path = None
                if corpus_dir is not None:
                    path = save_artifact(
                        corpus_dir, desc, expect=None,
                        note="auto-saved by 'repro fuzz' (shrunk failing "
                             "example); set 'expect' after fixing",
                        found={"stage": outcome.stage,
                               "detail": outcome.detail[-2000:]})
                report.failures.append((desc, outcome, path))
                if log is not None:
                    log(f"fuzz: new failure [{outcome.stage}] "
                        f"{'-> ' + str(path) if path else '(not saved)'}")
        except Unsatisfiable:
            # Every generated example was discarded — the time budget ran
            # out mid-batch.
            break
        else:
            if log is not None and report.examples_run:
                log(f"fuzz: batch {batch} clean "
                    f"({report.examples_run}/{max_examples} cases)")
        batch += 1
    report.elapsed = time.monotonic() - started
    return report


def replay_corpus(corpus_dir, pipeline: bool = True,
                  native: bool = False) -> list[tuple]:
    """Re-run every corpus artifact; returns ``(artifact, outcome, ok)``
    triples (``ok`` per the artifact's ``expect`` contract)."""
    from repro.fuzz.corpus import load_corpus

    results = []
    for artifact in load_corpus(corpus_dir):
        outcome = run_case(artifact["descriptor"], pipeline=pipeline,
                           native=native)
        expect = artifact["expect"]
        ok = (not outcome.is_bug if expect is None
              else outcome.status == expect)
        results.append((artifact, outcome, ok))
    return results
