"""Round-trip one fuzz case through the full nonuniform pipeline.

Stages, in order, with the outcome taxonomy each can produce:

1. **oracle** — direct dumb evaluation (:mod:`repro.fuzz.oracle`).
   Unclosed or cyclic descriptors are ``reject`` — they denote no
   computation, so the pipeline never sees them.
2. **restructure** — chain decomposition + system construction.  Documented
   spec-shape errors (:class:`RestructureError`,
   :class:`ChainDecompositionError`, ``ValueError``) are ``reject``;
   an unschedulable coarse timing is ``infeasible``.
3. **reference** — the IR evaluator must equal the oracle (``bug`` when it
   differs or crashes).
4. **synthesize** — schedule + space mapping on the descriptor's
   interconnect; :class:`NoScheduleExists` / :class:`NoSpaceMapExists` are
   ``infeasible`` (honest: the array cannot host the instance).
5. **verify** — :func:`verify_design`'s symbolic + physical checks.
6. **engines** — every engine runs the compiled design; each must
   reproduce the oracle's values exactly *and* emit the byte-identical
   canonical event stream (``canonical_order`` then JSONL).
   ``native=True`` adds the C-kernel engine to the comparison set (off by
   default so fuzz throughput does not pay a per-case ``cc`` invocation;
   a missing toolchain degrades it to the vector paths, which still
   cross-checks dispatch).
7. **pipeline** (on by default, ``pipeline=False`` opts out) — the fourth
   comparison point: the case is round-tripped *again* through the pass
   pipeline from its high-level spec (exercising the ``decompose-chains``
   ingest pass), and the resulting design dict, machine values and
   canonical compiled event stream must match the system-entry run byte
   for byte.

Any unexpected exception anywhere is a ``bug`` — error-path hygiene is
part of the contract being fuzzed.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

from repro.arrays.interconnect import resolve_interconnect
from repro.chains.decompose import ChainDecompositionError
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.core.restructure import RestructureError, restructure
from repro.core.verify import verify_design
from repro.fuzz.cases import CaseDescriptor, build_inputs, build_spec
from repro.fuzz.oracle import OracleReject, evaluate
from repro.ir.evaluate import run_system, trace_execution
from repro.machine.microcode import compile_design
from repro.machine.simulator import run
from repro.obs.events import EventLog, canonical_order
from repro.rewrite.pipeline import run_pipeline
from repro.schedule.solver import NoScheduleExists
from repro.space.multimodule import NoSpaceMapExists

#: Engine order for the cross-check (the interpreter is the oracle of the
#: event stream; the other two must match it byte for byte).
ENGINE_ORDER = ("interpreted", "compiled", "vector")


@dataclass(frozen=True)
class CaseOutcome:
    """What happened to one descriptor.

    ``status`` is one of ``ok`` (full round-trip, all engines agree),
    ``reject`` (the descriptor denotes no well-formed computation, or the
    restructurer refused its shape with a documented error),
    ``infeasible`` (no schedule / space map on the chosen interconnect) and
    ``bug`` (anything else — a value divergence, a stream divergence, an
    undocumented exception).  ``stage`` names where it happened; ``detail``
    is human-readable evidence.
    """

    status: str
    stage: str = ""
    detail: str = ""

    @property
    def is_bug(self) -> bool:
        return self.status == "bug"


def _diff(results, oracle, limit: int = 3) -> str:
    keys = [k for k in oracle if results.get(k) != oracle[k]][:limit]
    pairs = [(k, results.get(k), oracle[k]) for k in keys]
    return f"first diffs (key, got, want): {pairs}"


def run_case(desc: CaseDescriptor, pipeline: bool = True,
             native: bool = False) -> CaseOutcome:
    """Round-trip ``desc``; never raises — failures become outcomes."""
    try:
        oracle = evaluate(desc)
    except OracleReject as exc:
        return CaseOutcome("reject", "oracle", str(exc))

    spec = build_spec(desc)
    params = {"n": desc.n}
    try:
        system = restructure(spec, params=params)
    except (RestructureError, ChainDecompositionError, ValueError) as exc:
        return CaseOutcome("reject", "restructure",
                           f"{type(exc).__name__}: {exc}")
    except NoScheduleExists as exc:
        return CaseOutcome("infeasible", "coarse", str(exc))
    except Exception:
        return CaseOutcome("bug", "restructure", traceback.format_exc())

    inputs = build_inputs(desc)
    try:
        reference = run_system(system, params, inputs)
    except Exception:
        return CaseOutcome("bug", "reference", traceback.format_exc())
    if reference != oracle:
        return CaseOutcome("bug", "reference", _diff(reference, oracle))

    interconnect = resolve_interconnect(desc.interconnect)
    options = SynthesisOptions(time_bound=desc.time_bound)
    try:
        design = synthesize(system, params, interconnect, options)
    except (NoScheduleExists, NoSpaceMapExists) as exc:
        return CaseOutcome("infeasible", "synthesize",
                           f"{type(exc).__name__}: {exc}")
    except Exception:
        return CaseOutcome("bug", "synthesize", traceback.format_exc())

    try:
        report = verify_design(design, inputs, engine="compiled")
    except Exception:
        return CaseOutcome("bug", "verify", traceback.format_exc())
    if not report.ok:
        return CaseOutcome("bug", "verify", "; ".join(report.failures))

    engines = ENGINE_ORDER + ("native",) if native else ENGINE_ORDER
    streams: dict[str, str] = {}
    try:
        trace = trace_execution(system, params, inputs)
        mc = compile_design(trace, design.schedules, design.space_maps,
                            interconnect.decomposer())
        for engine in engines:
            log = EventLog()
            machine = run(mc, trace, inputs, strict=True, engine=engine,
                          sink=log)
            if machine.results != oracle:
                return CaseOutcome("bug", f"engine:{engine}",
                                   _diff(machine.results, oracle))
            log.events = canonical_order(log.events)
            streams[engine] = log.to_jsonl()
    except Exception:
        return CaseOutcome("bug", "engines", traceback.format_exc())

    if len(set(streams.values())) != 1:
        sizes = {name: len(body.splitlines())
                 for name, body in streams.items()}
        return CaseOutcome("bug", "events",
                           f"canonical event streams differ across engines "
                           f"(lines per engine: {sizes})")

    if pipeline:
        # Fourth comparison point: the same case again, through the pass
        # pipeline from its *spec* (decompose-chains does the restructuring
        # this time).  The one-shot path above already restructured the
        # same spec, so any infeasibility here is a divergence, not an
        # honest reject.
        try:
            state = run_pipeline(spec, params, interconnect, options)
            pdesign = state.design
            if pdesign.to_dict() != design.to_dict():
                return CaseOutcome(
                    "bug", "pipeline",
                    "pass-pipeline design differs from the system-entry "
                    "design")
            ptrace = trace_execution(pdesign.system, params, inputs)
            pmc = compile_design(ptrace, pdesign.schedules,
                                 pdesign.space_maps,
                                 interconnect.decomposer())
            log = EventLog()
            machine = run(pmc, ptrace, inputs, strict=True,
                          engine="compiled", sink=log)
            if machine.results != oracle:
                return CaseOutcome("bug", "pipeline",
                                   _diff(machine.results, oracle))
            log.events = canonical_order(log.events)
            if log.to_jsonl() != streams["compiled"]:
                return CaseOutcome(
                    "bug", "pipeline",
                    "pass-pipeline canonical event stream differs from the "
                    "system-entry compiled stream")
        except Exception:
            return CaseOutcome("bug", "pipeline", traceback.format_exc())
    return CaseOutcome("ok")
