"""Direct dumb evaluation of a fuzz case — the independent ground truth.

Plain memoised recursion over the descriptor: no ``HighLevelSpec``, no
polyhedra, no evaluation plan — nothing the pipeline under test could
share a bug with.  The reduction folds ``k`` ascending, which is only
comparable to the restructured system's per-chain folds because
:data:`~repro.fuzz.cases.COMBINE_OPS` is restricted to associative and
commutative ops.
"""

from __future__ import annotations

from repro.fuzz.cases import (
    BODY1_OPS,
    BODY2_OPS,
    COMBINE_OPS,
    CaseDescriptor,
    seed_value,
)


class OracleReject(Exception):
    """The descriptor does not denote a well-formed computation: a
    reference escapes the domain/init band (unclosed) or the recursion is
    cyclic.  Such cases never reach the pipeline."""


def evaluate(desc: CaseDescriptor) -> dict[tuple[int, int], object]:
    """``{(i, j): value}`` over the full domain, or :class:`OracleReject`."""
    lo, hi, n, pool = desc.lo, desc.hi, desc.n, desc.pool
    table = BODY1_OPS if len(desc.args) == 1 else BODY2_OPS
    body = table[desc.body].fn
    combine = COMBINE_OPS[desc.combine].fn
    bmin = min(lo, hi)

    def in_init(i: int, j: int) -> bool:
        return 1 <= i and j <= n and bmin <= j - i <= lo + hi - 1

    def in_domain(i: int, j: int) -> bool:
        return 1 <= i and j <= n and j - i >= lo + hi

    cache: dict[tuple[int, int], object] = {}
    visiting: set[tuple[int, int]] = set()

    def value(i: int, j: int):
        if (i, j) in cache:
            return cache[(i, j)]
        if in_init(i, j):
            v = seed_value(pool, i, j)
            cache[(i, j)] = v
            return v
        if not in_domain(i, j):
            raise OracleReject(f"reference to ({i}, {j}) escapes the domain")
        if (i, j) in visiting:
            raise OracleReject(f"cyclic dependence through ({i}, {j})")
        visiting.add(i_j := (i, j))
        acc = None
        for k in range(i + lo, j - hi + 1):
            operands = []
            for rc, (oi, oj) in desc.args:
                point = [i, j]
                if rc != 0:
                    point[0] -= oi
                if rc != 1:
                    point[1] -= oj
                point[rc] = k
                operands.append(value(*point))
            term = body(*operands)
            acc = term if acc is None else combine(acc, term)
        visiting.discard(i_j)
        cache[i_j] = acc
        return acc

    results = {}
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            if in_domain(i, j):
                results[(i, j)] = value(i, j)
    if not results:
        raise OracleReject("empty domain")
    return results
