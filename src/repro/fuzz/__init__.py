"""Property-based fuzzing of the full nonuniform pipeline.

The paper's worked figures exercise one recurrence shape; this package
round-trips *random* canonic-form reduction systems — random chain
structures, reduction bounds, op tables and value pools — through chain
decomposition, restructuring, scheduling, space mapping and all three
execution engines, comparing values and canonical event streams against a
direct dumb evaluation (:mod:`repro.fuzz.oracle`).

Entry points: :func:`fuzz` (budgeted hypothesis run, CLI ``repro fuzz``),
:func:`run_case` (one descriptor end to end), :func:`replay_corpus` /
:func:`load_corpus` (the persisted regression artifacts under
``tests/corpus/``).
"""

from repro.fuzz.cases import (
    BODY1_OPS,
    BODY2_OPS,
    COMBINE_OPS,
    CaseDescriptor,
    build_inputs,
    build_spec,
    seed_value,
)
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    artifact_name,
    load_artifact,
    load_corpus,
    save_artifact,
)
from repro.fuzz.harness import ENGINE_ORDER, CaseOutcome, run_case
from repro.fuzz.oracle import OracleReject, evaluate
from repro.fuzz.runner import (
    ARG_SHAPES,
    BOUNDARY_INTS,
    HAVE_HYPOTHESIS,
    FuzzReport,
    fuzz,
    replay_corpus,
)

__all__ = [
    "ARG_SHAPES",
    "BODY1_OPS",
    "BODY2_OPS",
    "BOUNDARY_INTS",
    "COMBINE_OPS",
    "CaseDescriptor",
    "CaseOutcome",
    "DEFAULT_CORPUS_DIR",
    "ENGINE_ORDER",
    "FuzzReport",
    "HAVE_HYPOTHESIS",
    "OracleReject",
    "artifact_name",
    "build_inputs",
    "build_spec",
    "evaluate",
    "fuzz",
    "load_artifact",
    "load_corpus",
    "replay_corpus",
    "run_case",
    "save_artifact",
    "seed_value",
]
