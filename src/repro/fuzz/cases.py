"""Random canonic-form recurrence cases for the nonuniform pipeline.

A :class:`CaseDescriptor` is a small, JSON-serialisable recipe for one
fuzzing example: a generalised "triangle" reduction family

.. math::

    c_{i,j} = \\bigoplus_{k=i+lo}^{j-hi} f(\\text{args at } k),
    \\qquad j - i \\ge lo + hi

with seed values on the init band ``min(lo, hi) <= j - i <= lo + hi - 1``.
The family subsumes the paper's recurrence (6)/(8) (``lo = hi = 1``, args
``c(i,k), c(k,j)``) and deliberately exceeds its figures:

* **chain structure** — argument lists where both replaced coordinates
  differ (two chains, ascending + descending, the Section IV shape), where
  both coincide (a single chain of either direction) and unary bodies
  (one-argument reductions);
* **non-uniform offsets** — args may carry an extra constant offset in a
  non-replaced coordinate, giving dependence shapes the restructurer must
  either close over or cleanly reject;
* **reduction bounds** — ``lo``/``hi`` vary, moving the init band and the
  envelope-crossing split point;
* **op tables** — stock ops (exact int64 kernels) and custom ops without
  ``int_kernel`` (object path), with ``combine`` restricted to
  associative + commutative ops so a fold order change cannot alter the
  value (the chains fold the reduction in a different order than a direct
  evaluation);
* **value pools** — small ints, int64-boundary values (``±2**63``),
  bignums beyond int64 and exact ``Fraction`` values, so every example
  stresses the vector engine's fast-path/fallback decision.

Seed values are deterministic in the descriptor: the init point ``(i, j)``
takes ``pool[(3*i + 5*j) % len(pool)]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping

from repro.ir.affine import var
from repro.ir.indexset import Polyhedron, ge, le
from repro.ir.ops import ADD, IDENTITY, MAX, MIN, MIN_PLUS, MUL, Op, make_op
from repro.ir.program import ArgSpec, HighLevelSpec

_I, _J, _N = var("i"), var("j"), var("n")

#: Binary body ops: arbitrary semantics allowed (the body is applied once
#: per reduction term, so it needs no algebraic properties).  The last two
#: are custom ops *without* ``int_kernel`` — they keep the vector engine on
#: the object path by construction.
BODY2_OPS: dict[str, Op] = {
    "min_plus": MIN_PLUS,
    "mul": MUL,
    "min": MIN,
    "max": MAX,
    "affmix": make_op("affmix", 2, lambda a, b: a + 2 * b),
    "mixmul": make_op("mixmul", 2, lambda a, b: a + b + a * b),
}

#: Unary body ops for one-argument reductions.
BODY1_OPS: dict[str, Op] = {
    "id": IDENTITY,
    "dbl": make_op("dbl", 1, lambda a: 2 * a),
    "neg": make_op("neg", 1, lambda a: -a),
}

#: Combine ops must be associative and commutative: the restructured system
#: folds each chain separately (descending chain, then ascending chain,
#: then one join), while the dumb oracle folds k ascending — only
#: reassociation-invariant ops make the two comparable.
COMBINE_OPS: dict[str, Op] = {
    "min": MIN,
    "max": MAX,
    "add": ADD,
    "mul": MUL,
}

Value = "int | Fraction"


@dataclass(frozen=True)
class CaseDescriptor:
    """One fuzzing example, fully determined and JSON-serialisable.

    ``args`` is a tuple of ``(replaced_coord, (off_i, off_j))`` pairs; the
    offset applies to the *non*-replaced coordinates (the replaced one is
    substituted by the reduction index).  ``pool`` is the seed value pool
    indexed per init point (see module docstring).
    """

    n: int
    lo: int
    hi: int
    args: tuple  # tuple[tuple[int, tuple[int, int]], ...]
    body: str
    combine: str
    pool: tuple  # tuple[int | Fraction, ...]
    interconnect: str = "fig1"
    time_bound: int = 3

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < 1:
            raise ValueError("reduction bounds lo/hi must be >= 1")
        if self.n < self.lo + self.hi + 1:
            raise ValueError(
                f"n={self.n} leaves the computation domain empty "
                f"(needs n >= lo + hi + 1 = {self.lo + self.hi + 1})")
        table = BODY1_OPS if len(self.args) == 1 else BODY2_OPS
        if self.body not in table:
            raise ValueError(f"unknown {len(self.args)}-ary body {self.body!r}")
        if self.combine not in COMBINE_OPS:
            raise ValueError(f"unknown combine {self.combine!r} "
                             "(must be associative + commutative)")
        if not self.pool:
            raise ValueError("empty seed value pool")

    @property
    def body_op(self) -> Op:
        table = BODY1_OPS if len(self.args) == 1 else BODY2_OPS
        return table[self.body]

    @property
    def combine_op(self) -> Op:
        return COMBINE_OPS[self.combine]

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "n": self.n, "lo": self.lo, "hi": self.hi,
            "args": [[rc, list(off)] for rc, off in self.args],
            "body": self.body, "combine": self.combine,
            "pool": [_encode_value(v) for v in self.pool],
            "interconnect": self.interconnect,
            "time_bound": self.time_bound,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CaseDescriptor":
        return cls(
            n=int(data["n"]), lo=int(data["lo"]), hi=int(data["hi"]),
            args=tuple((int(rc), (int(off[0]), int(off[1])))
                       for rc, off in data["args"]),
            body=data["body"], combine=data["combine"],
            pool=tuple(_decode_value(v) for v in data["pool"]),
            interconnect=data.get("interconnect", "fig1"),
            time_bound=int(data.get("time_bound", 3)),
        )


def _encode_value(value):
    if isinstance(value, Fraction):
        return {"frac": [value.numerator, value.denominator]}
    return value


def _decode_value(value):
    if isinstance(value, dict):
        num, den = value["frac"]
        return Fraction(num, den)
    return value


def seed_value(pool, i: int, j: int):
    """The deterministic seed value of init point ``(i, j)``."""
    return pool[(3 * i + 5 * j) % len(pool)]


def build_inputs(desc: CaseDescriptor) -> dict[str, Callable]:
    """Host input binding for the spec built from ``desc``."""
    pool = desc.pool
    return {"c0": lambda i, j: seed_value(pool, i, j)}


def build_spec(desc: CaseDescriptor) -> HighLevelSpec:
    """The :class:`HighLevelSpec` the descriptor denotes.

    Domain: ``1 <= i``, ``j <= n``, ``j - i >= lo + hi``; init band:
    ``min(lo, hi) <= j - i <= lo + hi - 1``.  Whether the spec is *closed*
    (every referenced point lands in domain or init band) depends on the
    argument offsets — the oracle rejects unclosed descriptors before the
    pipeline ever sees them.
    """
    args = tuple(ArgSpec(rc, tuple(off)) for rc, off in desc.args)
    bmin = min(desc.lo, desc.hi)
    domain = Polyhedron(
        ("i", "j"),
        [ge(_I, 1), le(_J, _N), ge(_J - _I, desc.lo + desc.hi)],
        params=("n",))
    init = Polyhedron(
        ("i", "j"),
        [ge(_I, 1), le(_J, _N), ge(_J - _I, bmin),
         le(_J - _I, desc.lo + desc.hi - 1)],
        params=("n",))
    return HighLevelSpec(
        name="fuzz", dims=("i", "j"), domain=domain, target="c",
        reduction_index="k",
        k_lower=_I + desc.lo, k_upper=_J - desc.hi,
        body=desc.body_op, combine=desc.combine_op, args=args,
        init_domain=init, init_input="c0", params=("n",))
