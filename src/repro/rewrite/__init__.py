"""Typed rewrite IR and pass manager over the synthesis middle-end.

The paper's flow — canonic-form recurrence → restructured non-uniform
system → scheduled/allocated design → cell program — historically lowered
in one shot inside :func:`repro.core.nonuniform.synthesize`.  This package
re-expresses that middle as staged, inspectable compilation:

* :mod:`repro.rewrite.ir` — an immutable, hashable op/region IR
  (``design.system`` / ``design.module`` / ``design.equation`` /
  ``rule.*`` ops) with def-use helpers, a structural verifier and a
  textual printer, convertible losslessly to and from
  :class:`~repro.ir.program.RecurrenceSystem`;
* :mod:`repro.rewrite.patterns` — :class:`RewritePattern` and a greedy
  fixpoint driver, plus the stock patterns (accumulator-kernel fusion,
  cross-chain CSE);
* :mod:`repro.rewrite.passes` — :class:`Pass`, :class:`PassPipeline` and
  the immutable :class:`PipelineState` threaded through them, with
  per-pass span tracing and ``print-ir-after`` debugging;
* :mod:`repro.rewrite.pipeline` — the named passes of the default
  lowering (``decompose-chains``, ``fuse-accumulators``, ``schedule``,
  ``allocate``, ``lower-microcode``) plus the opt-in ``cse`` pass, the
  pass registry and :func:`default_pipeline`.

Every pass boundary is verifiable against the three execution engines'
bit-identical canonical event streams; the default pipeline is
behavior-identical to the historical one-shot lowering.
"""

from repro.rewrite.ir import (
    IROp,
    IRVerificationError,
    Region,
    ir_to_system,
    print_ir,
    system_to_ir,
    verify_ir,
    walk,
)
from repro.rewrite.passes import (
    Pass,
    PassError,
    PassPipeline,
    PipelineState,
)
from repro.rewrite.patterns import (
    CrossChainCSE,
    FuseAccumulatorKernels,
    RewritePattern,
    apply_patterns,
)
from repro.rewrite.pipeline import (
    PASS_REGISTRY,
    available_passes,
    default_pipeline,
    make_pass,
    run_pipeline,
)

__all__ = [
    "CrossChainCSE",
    "FuseAccumulatorKernels",
    "IROp",
    "IRVerificationError",
    "PASS_REGISTRY",
    "Pass",
    "PassError",
    "PassPipeline",
    "PipelineState",
    "Region",
    "RewritePattern",
    "apply_patterns",
    "available_passes",
    "default_pipeline",
    "ir_to_system",
    "make_pass",
    "print_ir",
    "run_pipeline",
    "system_to_ir",
    "verify_ir",
    "walk",
]
