"""The typed rewrite IR: immutable, hashable op nodes with regions.

A :class:`RecurrenceSystem` is a mutable container built for evaluation;
rewriting wants the opposite — a value-semantic tree that can be hashed,
compared, pattern-matched and functionally updated without aliasing
surprises.  This module provides that tree, in the op/region style of
MLIR-like IRs:

* an :class:`IROp` is a named node with an attribute dictionary and zero
  or more :class:`Region`\\ s of child ops;
* ops and regions are deeply immutable; equality and hashing are
  structural, with attribute values identified by their value-based
  ``repr`` (the same identity the design cache fingerprints through, so
  two ops are equal exactly when the cache could not tell them apart);
* def-use is symbolic: each op declares the qualified symbols
  (``module::var``) it defines and uses, and :func:`verify_ir` checks the
  whole tree resolves.

The op set covers the chain → module → microcode middle of the pipeline:

==================  ========================================================
op name             meaning
==================  ========================================================
``design.system``   root; regions = (modules, outputs)
``design.module``   one recurrence module; region = equations
``design.equation`` one variable's defining rules; region = rules
``rule.compute``    ``op(operands...)`` under a guard (canonic-form body)
``rule.link``       inter-module transfer (the paper's A1–A5 statements)
``rule.input``      host boundary value
``design.output``   declares a result of the system
==================  ========================================================

Attribute leaves are the existing frozen value objects of :mod:`repro.ir`
(:class:`~repro.ir.indexset.Polyhedron`, predicates, ops, references), so
:func:`system_to_ir` / :func:`ir_to_system` round-trip losslessly.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

from repro.ir.ops import Op
from repro.ir.program import Module, OutputSpec, RecurrenceSystem
from repro.ir.statements import ComputeRule, Equation, InputRule, LinkRule
from repro.ir.variables import ExternalRef, Ref


def _attr_identity(value: object) -> tuple[str, str]:
    """Value identity of an attribute: type name + value-based repr.

    Every IR leaf in this codebase carries a value-faithful ``repr`` (the
    persistent design cache fingerprints whole systems through reprs), so
    this is a sound structural identity even for objects that do not
    implement ``__hash__``/``__eq__`` themselves (e.g. ``Polyhedron``).
    """
    return (type(value).__name__, repr(value))


class Region:
    """An ordered, immutable sequence of child ops."""

    __slots__ = ("ops", "_hash")

    def __init__(self, ops: Sequence["IROp"] = ()) -> None:
        object.__setattr__(self, "ops", tuple(ops))
        object.__setattr__(self, "_hash", hash(self.ops))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Region is immutable")

    def __iter__(self) -> Iterator["IROp"]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __eq__(self, other) -> bool:
        return isinstance(other, Region) and self.ops == other.ops

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Region({len(self.ops)} ops)"


class IROp:
    """One immutable op node: ``name`` + attributes + regions.

    ``attrs`` is exposed as a read-only mapping; updates go through
    :meth:`with_attrs` / :meth:`with_regions`, which return new nodes and
    share all untouched structure.
    """

    __slots__ = ("name", "_attrs", "regions", "_key", "_hash")

    def __init__(self, name: str, attrs: Mapping[str, object] | None = None,
                 regions: Sequence[Region] = ()) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_attrs",
                           tuple(sorted((attrs or {}).items())))
        object.__setattr__(self, "regions", tuple(regions))
        key = (name,
               tuple((k, _attr_identity(v)) for k, v in self._attrs),
               self.regions)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("IROp is immutable")

    # -- attributes ----------------------------------------------------------

    @property
    def attrs(self) -> dict[str, object]:
        return dict(self._attrs)

    def attr(self, key: str, default: object = None) -> object:
        for k, v in self._attrs:
            if k == key:
                return v
        return default

    def with_attrs(self, **updates: object) -> "IROp":
        attrs = self.attrs
        attrs.update(updates)
        return IROp(self.name, attrs, self.regions)

    def with_regions(self, regions: Sequence[Region]) -> "IROp":
        return IROp(self.name, self.attrs, regions)

    # -- structural identity -------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, IROp) and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        label = self.attr("name") or self.attr("var") or ""
        tag = f" @{label}" if label else ""
        return (f"IROp({self.name}{tag}, {len(self._attrs)} attrs, "
                f"{sum(len(r) for r in self.regions)} children)")

    # -- def-use -------------------------------------------------------------

    def defined_symbols(self) -> tuple[str, ...]:
        """Qualified ``module::var`` symbols this subtree defines."""
        if self.name == "design.system":
            out: list[str] = []
            for module in self.regions[0]:
                out.extend(module.defined_symbols())
            return tuple(out)
        if self.name == "design.module":
            mod = self.attr("name")
            return tuple(f"{mod}::{eqn.attr('var')}"
                         for eqn in self.regions[0])
        return ()

    def used_symbols(self, module: str = "") -> tuple[str, ...]:
        """Qualified symbols this op reads (rules and outputs only).

        ``module`` qualifies module-local references of compute rules.
        """
        if self.name == "rule.compute":
            return tuple(f"{module}::{ref.var}"
                         for ref in self.attr("operands"))
        if self.name == "rule.link":
            src = self.attr("source")
            return (f"{src.module}::{src.var}",)
        if self.name == "design.output":
            return (f"{self.attr('module')}::{self.attr('var')}",)
        return ()


def walk(op: IROp) -> Iterator[IROp]:
    """Pre-order traversal of the op tree."""
    yield op
    for region in op.regions:
        for child in region:
            yield from walk(child)


# -- typed builders ----------------------------------------------------------

def compute_op(rule: ComputeRule) -> IROp:
    return IROp("rule.compute", {"op": rule.op, "operands": rule.operands,
                                 "guard": rule.guard})


def link_op(rule: LinkRule) -> IROp:
    return IROp("rule.link", {"source": rule.source, "guard": rule.guard,
                              "label": rule.label, "min_gap": rule.min_gap})


def input_op(rule: InputRule) -> IROp:
    return IROp("rule.input", {"input_name": rule.input_name,
                               "index": rule.index, "guard": rule.guard})


def equation_op(eqn: Equation) -> IROp:
    rules = []
    for rule in eqn.rules:
        if isinstance(rule, ComputeRule):
            rules.append(compute_op(rule))
        elif isinstance(rule, LinkRule):
            rules.append(link_op(rule))
        elif isinstance(rule, InputRule):
            rules.append(input_op(rule))
        else:  # pragma: no cover - closed rule union
            raise TypeError(f"unknown rule type {type(rule).__name__}")
    return IROp("design.equation", {"var": eqn.var, "where": eqn.where},
                (Region(rules),))


def module_op(module: Module) -> IROp:
    body = Region([equation_op(module.equations[var])
                   for var in module.equations])
    return IROp("design.module",
                {"name": module.name, "dims": module.dims,
                 "domain": module.domain},
                (body,))


def output_op(out: OutputSpec) -> IROp:
    return IROp("design.output", {"module": out.module, "var": out.var,
                                  "domain": out.domain, "key": out.key})


def system_to_ir(system: RecurrenceSystem) -> IROp:
    """Lift a recurrence system into the rewrite IR (lossless)."""
    modules = Region([module_op(m) for m in system.modules.values()])
    outputs = Region([output_op(o) for o in system.outputs])
    return IROp("design.system",
                {"name": system.name, "input_names": system.input_names,
                 "params": system.params},
                (modules, outputs))


# -- lowering back to the evaluation containers ------------------------------

def _rule_from_op(op: IROp):
    if op.name == "rule.compute":
        return ComputeRule(op.attr("op"), op.attr("operands"),
                           guard=op.attr("guard"))
    if op.name == "rule.link":
        return LinkRule(op.attr("source"), guard=op.attr("guard"),
                        label=op.attr("label"), min_gap=op.attr("min_gap"))
    if op.name == "rule.input":
        return InputRule(op.attr("input_name"), op.attr("index"),
                         guard=op.attr("guard"))
    raise IRVerificationError(f"expected a rule op, got {op.name!r}")


def ir_to_system(root: IROp) -> RecurrenceSystem:
    """Materialize the evaluation-side :class:`RecurrenceSystem`.

    Inverse of :func:`system_to_ir`: attribute leaves are carried through
    unchanged, so a round trip reproduces the original system exactly
    (same fingerprint, same behaviour on all engines).
    """
    if root.name != "design.system":
        raise IRVerificationError(
            f"root must be design.system, got {root.name!r}")
    modules = []
    for mop in root.regions[0]:
        equations = []
        for eop in mop.regions[0]:
            rules = tuple(_rule_from_op(rop) for rop in eop.regions[0])
            equations.append(Equation(eop.attr("var"), rules,
                                      where=eop.attr("where")))
        modules.append(Module(mop.attr("name"), mop.attr("dims"),
                              mop.attr("domain"), equations))
    outputs = [OutputSpec(oop.attr("module"), oop.attr("var"),
                          oop.attr("domain"), oop.attr("key"))
               for oop in root.regions[1]]
    return RecurrenceSystem(root.attr("name"), modules, outputs,
                            input_names=root.attr("input_names"),
                            params=root.attr("params"))


# -- structural verification -------------------------------------------------

class IRVerificationError(Exception):
    """The op tree is structurally invalid (unknown op, broken def-use)."""


#: op name -> (required attribute names, required region count)
OP_SIGNATURES: dict[str, tuple[tuple[str, ...], int]] = {
    "design.system": (("name", "input_names", "params"), 2),
    "design.module": (("name", "dims", "domain"), 1),
    "design.equation": (("var", "where"), 1),
    "rule.compute": (("op", "operands", "guard"), 0),
    "rule.link": (("source", "guard", "label", "min_gap"), 0),
    "rule.input": (("input_name", "index", "guard"), 0),
    "design.output": (("module", "var", "domain", "key"), 0),
}

#: op name -> op names allowed in its regions
_ALLOWED_CHILDREN = {
    "design.system": {"design.module", "design.output"},
    "design.module": {"design.equation"},
    "design.equation": {"rule.compute", "rule.link", "rule.input"},
}


def verify_ir(root: IROp) -> None:
    """Check op signatures, region nesting and symbolic def-use.

    Raises :class:`IRVerificationError` on the first problem; a verified
    tree is guaranteed to lower through :func:`ir_to_system`.
    """
    if root.name != "design.system":
        raise IRVerificationError(
            f"root must be design.system, got {root.name!r}")
    if len(root.regions) != OP_SIGNATURES["design.system"][1]:
        raise IRVerificationError(
            f"design.system expects {OP_SIGNATURES['design.system'][1]} "
            f"region(s), has {len(root.regions)}")
    defined = set(root.defined_symbols())

    def check(op: IROp, module: str) -> None:
        sig = OP_SIGNATURES.get(op.name)
        if sig is None:
            raise IRVerificationError(f"unknown op {op.name!r}")
        required, nregions = sig
        for key in required:
            if op.attr(key, _MISSING) is _MISSING:
                raise IRVerificationError(
                    f"{op.name} is missing attribute {key!r}")
        if len(op.regions) != nregions:
            raise IRVerificationError(
                f"{op.name} expects {nregions} region(s), "
                f"has {len(op.regions)}")
        allowed = _ALLOWED_CHILDREN.get(op.name, set())
        for region in op.regions:
            for child in region:
                if child.name not in allowed:
                    raise IRVerificationError(
                        f"{child.name} may not appear inside {op.name}")
        scope = op.attr("name") if op.name == "design.module" else module
        for sym in op.used_symbols(scope):
            if sym not in defined:
                raise IRVerificationError(
                    f"{op.name} in module {scope or '<root>'!s} uses "
                    f"undefined symbol {sym}")
        for region in op.regions:
            for child in region:
                check(child, scope)

    check(root, "")


_MISSING = object()


# -- textual form ------------------------------------------------------------

def print_ir(root: IROp) -> str:
    """Readable, deterministic textual form of an op tree.

    Meant for ``--print-ir-after`` debugging, not parsing; attribute
    leaves print through their value-based reprs.
    """
    lines: list[str] = []

    def fmt_attrs(op: IROp, skip: tuple[str, ...]) -> str:
        parts = []
        for k, v in sorted(op.attrs.items()):
            if k in skip:
                continue
            if k in ("guard", "where") and repr(v) in ("true", "TRUE"):
                continue
            if k == "label" and not v:
                continue
            if k == "min_gap" and v == 1:
                continue
            parts.append(f"{k}={v!r}")
        return (" " + " ".join(parts)) if parts else ""

    def emit(op: IROp, depth: int) -> None:
        pad = "  " * depth
        label = op.attr("name") or op.attr("var")
        head = f"{pad}{op.name}"
        if label:
            head += f" @{label}"
        head += fmt_attrs(op, ("name", "var"))
        if op.regions:
            lines.append(head + " {")
            for region in op.regions:
                for child in region:
                    emit(child, depth + 1)
            lines.append(pad + "}")
        else:
            lines.append(head)

    emit(root, 0)
    return "\n".join(lines)
