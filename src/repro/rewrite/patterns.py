"""Rewrite patterns and the greedy fixpoint driver.

A :class:`RewritePattern` is a local transformation over the typed IR of
:mod:`repro.rewrite.ir`: given one op it either returns a replacement op
(and thereby claims a rewrite) or ``None``.  :func:`apply_patterns` drives
a set of patterns to a fixpoint, bottom-up, greedily — the standard
worklist-free driver for confluent pattern sets.

Because op equality deliberately ignores executable payloads (``Op.fn`` /
``Op.int_kernel`` compare by name and arity only, exactly like the design
cache), the driver trusts a non-``None`` return: a pattern must return
``None`` for ops it does not change, and every rewrite must extinguish its
own match condition, or the driver reports non-convergence.

Stock patterns:

* :class:`FuseAccumulatorKernels` — attaches the composed exact int64
  kernel to accumulator composites built by
  :func:`repro.ir.ops.compose_accumulate`.  This is the rewrite-pattern
  form of what used to be hard-wired into the restructurer; it changes
  only the vector engine's fast-path eligibility, never values or event
  streams.
* :class:`CrossChainCSE` — merges structurally identical equations within
  each module (duplicated carrier chains arise whenever a spec repeats an
  argument) and redirects every local, cross-module and output reference
  to the surviving variable.  This genuinely changes the synthesized
  design (fewer values, fewer links), so it is opt-in, not part of the
  default pipeline.
"""

from __future__ import annotations

import abc

from repro.ir.statements import ComputeRule
from repro.ir.variables import ExternalRef, Ref
from repro.ir.vector import fused_int_kernel
from repro.rewrite.ir import IROp, Region
from repro.util.instrument import STATS


class RewritePattern(abc.ABC):
    """One local rewrite; stateless and reusable across drivers."""

    #: short kebab-case identifier used in trace counters and reports
    name: str = "pattern"

    @abc.abstractmethod
    def match_and_rewrite(self, op: IROp) -> IROp | None:
        """Return the replacement for ``op``, or ``None`` if no match.

        A returned op is taken as-is (the driver does not re-compare); the
        rewrite must make the pattern no longer match the result.
        """


class PatternConvergenceError(Exception):
    """A pattern set kept rewriting past the iteration bound."""


def _rewrite_once(op: IROp, patterns, counts: dict[str, int]
                  ) -> tuple[IROp, bool]:
    changed = False
    if op.regions:
        regions = []
        for region in op.regions:
            ops = []
            for child in region:
                new_child, child_changed = _rewrite_once(
                    child, patterns, counts)
                changed = changed or child_changed
                ops.append(new_child)
            regions.append(Region(ops))
        if changed:
            op = op.with_regions(regions)
    for pattern in patterns:
        replacement = pattern.match_and_rewrite(op)
        if replacement is not None:
            counts[pattern.name] = counts.get(pattern.name, 0) + 1
            return replacement, True
    return op, changed


def apply_patterns(root: IROp, patterns, max_iterations: int = 32
                   ) -> tuple[IROp, dict[str, int]]:
    """Greedily apply ``patterns`` bottom-up until fixpoint.

    Returns the rewritten root and per-pattern rewrite counts (also pushed
    into the span tracer as ``rewrite.<pattern>`` counters).  Raises
    :class:`PatternConvergenceError` after ``max_iterations`` full sweeps
    that each still rewrote something.
    """
    counts: dict[str, int] = {}
    for _ in range(max_iterations):
        root, changed = _rewrite_once(root, tuple(patterns), counts)
        if not changed:
            break
    else:
        raise PatternConvergenceError(
            f"patterns did not converge after {max_iterations} sweeps: "
            f"{counts}")
    for name, n in counts.items():
        STATS.count(f"rewrite.{name}", n)
    return root, counts


# -- stock patterns ----------------------------------------------------------

class FuseAccumulatorKernels(RewritePattern):
    """Attach the composed exact int64 kernel to accumulator composites.

    Matches ``rule.compute`` ops whose :class:`~repro.ir.ops.Op` records
    ``components=(h, f)`` but carries no ``int_kernel`` yet, and for which
    :func:`~repro.ir.vector.fused_int_kernel` can derive an exact kernel
    (both components stock).  Custom components stay on the object path —
    the pattern simply never matches them.
    """

    name = "fuse-accumulator-kernels"

    def match_and_rewrite(self, op: IROp) -> IROp | None:
        if op.name != "rule.compute":
            return None
        body = op.attr("op")
        if body.components is None or body.int_kernel is not None:
            return None
        kernel = fused_int_kernel(*body.components)
        if kernel is None:
            return None
        fused = type(body)(body.name, body.arity, body.fn,
                           int_kernel=kernel, components=body.components)
        return op.with_attrs(op=fused)


class CrossChainCSE(RewritePattern):
    """Merge structurally identical equations within each module.

    Two equations of one module are common subexpressions when their rule
    lists and ``where`` predicates are structurally equal — for a
    restructured system this happens exactly when the spec repeats an
    argument, duplicating a carrier pipeline in *both* chain modules.  The
    first (in declaration order) survives; every :class:`Ref`,
    :class:`ExternalRef` and output referring to a dropped variable is
    redirected to the survivor.
    """

    name = "cross-chain-cse"

    def match_and_rewrite(self, op: IROp) -> IROp | None:
        if op.name != "design.system":
            return None
        renames: dict[tuple[str, str], str] = {}
        for module in op.regions[0]:
            seen: dict[IROp, str] = {}
            mod = module.attr("name")
            for eqn in module.regions[0]:
                var = eqn.attr("var")
                survivor = seen.setdefault(_alpha_body(eqn), var)
                if survivor != var:
                    renames[(mod, var)] = survivor
        if not renames:
            return None
        return _apply_renames(op, renames)


def _alpha_body(eqn: IROp) -> IROp:
    """The equation's identity modulo its own name.

    Self-references (a carrier propagating itself) are rewritten to the
    placeholder ``%self`` so two equations that differ only in what they
    call themselves compare equal.  Link labels are scrubbed too: the
    restructurer derives them from the variable name
    (``m1.ap<-comb``), and a label is bookkeeping, not semantics.
    """
    var = eqn.attr("var")

    def scrub(op: IROp) -> IROp:
        if op.name == "rule.link":
            return op.with_attrs(label="%self")
        if op.name != "rule.compute":
            return op
        operands = tuple(Ref("%self", ref.index) if ref.var == var else ref
                         for ref in op.attr("operands"))
        return op.with_attrs(operands=operands)

    rules = Region([scrub(rop) for rop in eqn.regions[0]])
    return eqn.with_attrs(var="%self").with_regions((rules,))


def _apply_renames(root: IROp,
                   renames: dict[tuple[str, str], str]) -> IROp:
    """Drop renamed equations and redirect every reference to them."""

    def rename_rule(op: IROp, module: str) -> IROp:
        if op.name == "rule.compute":
            operands = tuple(
                Ref(renames.get((module, ref.var), ref.var), ref.index)
                for ref in op.attr("operands"))
            return op.with_attrs(operands=operands)
        if op.name == "rule.link":
            src = op.attr("source")
            new_var = renames.get((src.module, src.var))
            if new_var is None:
                return op
            return op.with_attrs(
                source=ExternalRef(src.module, new_var, src.index))
        return op

    modules = []
    for module in root.regions[0]:
        mod = module.attr("name")
        equations = []
        for eqn in module.regions[0]:
            if (mod, eqn.attr("var")) in renames:
                continue
            rules = Region([rename_rule(rop, mod)
                            for rop in eqn.regions[0]])
            equations.append(eqn.with_regions((rules,)))
        modules.append(module.with_regions((Region(equations),)))
    outputs = []
    for out in root.regions[1]:
        new_var = renames.get((out.attr("module"), out.attr("var")))
        outputs.append(out if new_var is None
                       else out.with_attrs(var=new_var))
    return root.with_regions((Region(modules), Region(outputs)))
