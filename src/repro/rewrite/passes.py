"""Pass manager: :class:`Pass`, :class:`PassPipeline`, :class:`PipelineState`.

A pipeline threads one immutable :class:`PipelineState` value through a
sequence of named passes.  Each pass consumes the fields it needs and
returns a new state with its products filled in; the pipeline runs every
pass under a ``pass.<name>`` span of the global tracer
(:data:`repro.obs.TRACER`), so ``--stats`` and persisted run records show
per-pass wall time and rewrite counters without any caller plumbing.

Misordered pipelines fail fast: a pass whose inputs are missing raises
:class:`PassError` naming the missing product and the pass that should
have produced it.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.util.instrument import STATS


class PassError(RuntimeError):
    """A pass ran against a state missing its inputs (misordered pipeline)."""


@dataclass(frozen=True)
class PipelineState:
    """Everything the passes of one synthesis run read and produce.

    The front half mirrors the paper's artifacts: a
    :class:`~repro.ir.program.HighLevelSpec` (optional entry point), the
    restructured :class:`~repro.ir.program.RecurrenceSystem` and its typed
    rewrite-IR view (kept in sync by the passes that rewrite it).  The
    back half is filled in stage by stage: link constraints and schedules,
    space maps, the value-free microcode skeleton, and finally the
    packaged :class:`~repro.core.design.Design`.
    """

    params: Mapping[str, int]
    interconnect: object                 # arrays.interconnect.Interconnect
    options: object                      # core.options.SynthesisOptions
    spec: object | None = None           # ir.program.HighLevelSpec
    system: object | None = None         # ir.program.RecurrenceSystem
    ir: object | None = None             # rewrite.ir.IROp (design.system)
    deps: Mapping[str, object] | None = None
    constraints: Sequence[object] | None = None
    schedules: Mapping[str, object] | None = None
    space_maps: Mapping[str, object] | None = None
    microcode: object | None = None      # machine.microcode.Microcode
    design: object | None = None         # core.design.Design

    def replace(self, **updates) -> "PipelineState":
        """Functional update (the only way state ever changes)."""
        return dataclasses.replace(self, **updates)

    def require(self, field: str, producer: str) -> object:
        """Fetch a product, failing with a pipeline-ordering diagnostic."""
        value = getattr(self, field)
        if value is None:
            raise PassError(
                f"state has no {field!r}; run the {producer!r} pass first")
        return value


class Pass(abc.ABC):
    """One named stage of the pipeline.

    Subclasses set ``name`` (kebab-case, unique within a pipeline) and
    ``description`` (one line, shown by ``repro passes``) and implement
    :meth:`run` as a pure ``state -> state`` function.
    """

    name: str = "pass"
    description: str = ""

    @abc.abstractmethod
    def run(self, state: PipelineState) -> PipelineState:
        """Produce the successor state; must not mutate ``state``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class PassPipeline:
    """An ordered, immutable sequence of passes.

    ``print_ir_after`` opts into IR dumps for debugging: pass names (or
    ``"all"``) after which the current system IR is printed through
    ``emit`` (default: ``print``).
    """

    def __init__(self, passes: Sequence[Pass],
                 print_ir_after: Sequence[str] = (),
                 emit: Callable[[str], None] = print) -> None:
        self.passes: tuple[Pass, ...] = tuple(passes)
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")
        self.print_ir_after: tuple[str, ...] = tuple(print_ir_after)
        unknown = [n for n in self.print_ir_after
                   if n != "all" and n not in names]
        if unknown:
            raise ValueError(
                f"print_ir_after names unknown passes {unknown}; "
                f"pipeline has {names}")
        self._emit = emit

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def __iter__(self) -> Iterator[Pass]:
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:
        return f"PassPipeline({' -> '.join(self.names)})"

    # -- composition ---------------------------------------------------------

    def with_pass(self, new: Pass, *, before: str | None = None,
                  after: str | None = None) -> "PassPipeline":
        """A new pipeline with ``new`` inserted (at the end by default)."""
        if before is not None and after is not None:
            raise ValueError("pass either before= or after=, not both")
        anchor = before or after
        passes = list(self.passes)
        if anchor is None:
            passes.append(new)
        else:
            if anchor not in self.names:
                raise ValueError(f"no pass named {anchor!r} in {self.names}")
            at = self.names.index(anchor) + (0 if before else 1)
            passes.insert(at, new)
        return PassPipeline(passes, self.print_ir_after, self._emit)

    def without_pass(self, name: str) -> "PassPipeline":
        if name not in self.names:
            raise ValueError(f"no pass named {name!r} in {self.names}")
        return PassPipeline([p for p in self.passes if p.name != name],
                            [n for n in self.print_ir_after if n != name],
                            self._emit)

    # -- execution -----------------------------------------------------------

    def run(self, state: PipelineState) -> PipelineState:
        """Run every pass in order under per-pass tracer spans."""
        from repro.rewrite.ir import print_ir

        dump_all = "all" in self.print_ir_after
        with STATS.stage("pipeline", passes=len(self.passes)):
            for p in self.passes:
                with STATS.stage(f"pass.{p.name}"):
                    state = p.run(state)
                if (dump_all or p.name in self.print_ir_after):
                    header = f"// -- IR after pass {p.name} --"
                    if state.ir is not None:
                        self._emit(f"{header}\n{print_ir(state.ir)}")
                    else:
                        self._emit(f"{header}\n// (no system IR in state)")
        return state
