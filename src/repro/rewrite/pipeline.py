"""The default lowering, as named passes over :class:`PipelineState`.

The historical one-shot ``synthesize`` body is re-expressed as:

1. ``decompose-chains`` — ingest: restructure a
   :class:`~repro.ir.program.HighLevelSpec` into the system of mutually
   dependent recurrences (chain decomposition + coarse timing), or accept
   an already-canonic :class:`~repro.ir.program.RecurrenceSystem`; lift it
   into the typed rewrite IR.
2. ``fuse-accumulators`` — pattern pass attaching composed exact int64
   kernels to accumulator composites (vector-engine fast path); replaces
   the fused-kernel wiring the restructurer used to hard-code.
3. ``schedule`` — per-module dependence matrices, global link
   constraints, joint linear time functions (with the paper's offset
   escalation), normalised to start at cycle 0.
4. ``allocate`` — joint space maps under flow realisability,
   conflict-freedom and adjacency, with plan escalation; every candidate
   is compile-checked on a value-free trace (link bandwidth is outside
   the solvers' model) and the winning candidate's microcode skeleton is
   kept on the state.
5. ``lower-microcode`` — package the :class:`~repro.core.design.Design`
   and guarantee the cell program exists (compiling it if a custom
   pipeline skipped the allocate-time check).

``cse`` (cross-chain common-subexpression elimination) is available from
the registry but *not* part of :func:`default_pipeline`: merging duplicate
carrier chains changes the synthesized design, which callers opt into via
``default_pipeline().with_pass(make_pass("cse"), after="fuse-accumulators")``.
``lower-native`` is likewise registry-only: it pre-builds the design's
native C kernel (``engine="native"``) through the content-addressed
artifact cache so later verification starts warm — a deployment step, not
part of the synthesis contract, and a no-op fallback without a C
toolchain.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.design import Design
from repro.core.globals import link_constraints
from repro.core.restructure import restructure
from repro.deps.extract import system_dependence_matrices
from repro.ir.evaluate import structural_trace
from repro.ir.program import HighLevelSpec, RecurrenceSystem
from repro.machine.errors import MachineError
from repro.machine.microcode import compile_design
from repro.rewrite.ir import ir_to_system, system_to_ir, verify_ir
from repro.rewrite.passes import Pass, PassError, PassPipeline, PipelineState
from repro.rewrite.patterns import (
    CrossChainCSE,
    FuseAccumulatorKernels,
    apply_patterns,
)
from repro.schedule.multimodule import (
    ModuleSchedulingProblem,
    normalise_start,
    solve_multimodule,
)
from repro.schedule.solver import NoScheduleExists
from repro.space.multimodule import (
    ModuleSpaceProblem,
    NoSpaceMapExists,
    solve_multimodule_space,
)
from repro.util.instrument import STATS


class DecomposeChainsPass(Pass):
    name = "decompose-chains"
    description = ("restructure a high-level spec into mutually dependent "
                   "chain recurrences (no-op for canonic systems) and lift "
                   "it into the rewrite IR")

    def run(self, state: PipelineState) -> PipelineState:
        if state.system is None:
            if state.spec is None:
                raise PassError(
                    "state has neither a spec nor a system; pass one of "
                    "them to the pipeline entry point")
            state = state.replace(
                system=restructure(state.spec, params=dict(state.params)))
        if state.ir is None:
            state = state.replace(ir=system_to_ir(state.system))
        return state


class PatternPass(Pass):
    """A pass that drives rewrite patterns to fixpoint over the system IR.

    Subclasses set ``patterns``.  The evaluation-side system is rebuilt
    only when something was actually rewritten, so a no-op pattern pass
    keeps the caller's system object untouched.
    """

    patterns: tuple = ()

    def run(self, state: PipelineState) -> PipelineState:
        ir = state.ir
        if ir is None:
            system = state.require("system", "decompose-chains")
            ir = system_to_ir(system)
        new_ir, counts = apply_patterns(ir, self.patterns)
        if not counts:
            return state.replace(ir=ir)
        verify_ir(new_ir)
        return state.replace(ir=new_ir, system=ir_to_system(new_ir))


class FuseAccumulatorsPass(PatternPass):
    name = "fuse-accumulators"
    description = ("attach composed exact int64 kernels to accumulator "
                   "composites (vector-engine fast path; values and event "
                   "streams unchanged)")
    patterns = (FuseAccumulatorKernels(),)


class CrossChainCSEPass(PatternPass):
    name = "cse"
    description = ("merge structurally identical equations within each "
                   "module and redirect references (changes the design; "
                   "opt-in)")
    patterns = (CrossChainCSE(),)


class SchedulePass(Pass):
    name = "schedule"
    description = ("extract dependence matrices and link constraints, "
                   "jointly solve linear time functions (offset escalation "
                   "on demand), normalise start to cycle 0")

    def run(self, state: PipelineState) -> PipelineState:
        system: RecurrenceSystem = state.require("system", "decompose-chains")
        opts = state.options
        params = dict(state.params)
        deps = system_dependence_matrices(system)
        constraints = link_constraints(system, params)

        problems = []
        with STATS.stage("synthesize.enumerate"):
            for name, module in system.modules.items():
                arr = module.domain.points_array(params)
                problems.append(ModuleSchedulingProblem(
                    name, module.dims, deps[name], arr))

        with STATS.stage("synthesize.schedule"):
            try:
                time_solution = solve_multimodule(
                    problems, constraints, bound=opts.time_bound,
                    offsets=opts.schedule_offsets)
            except NoScheduleExists:
                if tuple(opts.schedule_offsets) == (0,):
                    time_solution = solve_multimodule(
                        problems, constraints, bound=opts.time_bound,
                        offsets=range(-opts.time_bound, opts.time_bound + 1))
                else:
                    raise
        schedules = normalise_start(time_solution.schedules, problems,
                                    start=0)
        return state.replace(deps=deps, constraints=tuple(constraints),
                             schedules=schedules)


class AllocatePass(Pass):
    name = "allocate"
    description = ("jointly solve space maps (adjacency, conflict-freedom, "
                   "flow realisability; plan escalation), compile-checking "
                   "every candidate's placement and routing on a value-free "
                   "trace")

    def run(self, state: PipelineState) -> PipelineState:
        system: RecurrenceSystem = state.require("system", "decompose-chains")
        schedules = state.require("schedules", "schedule")
        deps = state.require("deps", "schedule")
        constraints = state.require("constraints", "schedule")
        opts = state.options
        params = dict(state.params)
        interconnect = state.interconnect
        space_bound = opts.space_bound
        space_offsets = opts.space_offsets
        decomposer = interconnect.decomposer()
        points = {name: module.domain.points_array(params)
                  for name, module in system.modules.items()}

        def offsets_for(name: str, plan: str) -> Sequence[int]:
            if space_offsets is not None:
                return space_offsets
            if plan == "plain":
                return (0,)
            # "translated" plan: allow small offsets for low-dimensional
            # modules (combine statements) where a translation can fold
            # their cells onto another module's region — the Section VI
            # design maps A5 to cell (i+1, i).  High-dimensional modules
            # keep offset 0: a common translation never reduces their own
            # cell count.
            module = system.modules[name]
            if len(module.dims) <= interconnect.label_dim:
                return (-1, 0, 1)
            return (0,)

        plans = (["plain"] if space_offsets is not None
                 else ["plain", "translated"])
        best = None
        best_mc = None
        last_error: NoSpaceMapExists | None = None
        check_trace = None

        def lowering(candidate):
            """Physical feasibility of a candidate beyond the solvers'
            model.

            The space solver enforces adjacency and conflict-freedom but
            not link *bandwidth*: a minimal-cells solution can still need
            one physical channel twice in the same cycle.  Compile the
            candidate's placement and routing over a value-free trace;
            returns ``(microcode, None)`` or ``(None, failure)``."""
            nonlocal check_trace
            if check_trace is None:
                check_trace = structural_trace(system, params)
            try:
                mc = compile_design(check_trace, schedules, candidate.maps,
                                    decomposer)
            except MachineError as exc:
                return None, NoSpaceMapExists(
                    f"space solution does not lower: "
                    f"{type(exc).__name__}: {exc}")
            return mc, None

        with STATS.stage("synthesize.space"):
            for plan in plans:
                space_problems = [
                    ModuleSpaceProblem(name, system.modules[name].dims,
                                       deps[name], points[name],
                                       schedules[name], bound=space_bound,
                                       offsets=offsets_for(name, plan))
                    for name in system.modules]
                try:
                    candidate = solve_multimodule_space(
                        space_problems, constraints, decomposer,
                        interconnect.label_dim)
                except NoSpaceMapExists as exc:
                    last_error = exc
                    continue
                mc, failure = lowering(candidate)
                if failure is not None:
                    last_error = failure
                    continue
                if best is None or candidate.total_cells < best.total_cells:
                    best, best_mc = candidate, mc
            if best is None:
                # Final escalation: offsets everywhere.
                space_problems = [
                    ModuleSpaceProblem(name, system.modules[name].dims,
                                       deps[name], points[name],
                                       schedules[name], bound=space_bound,
                                       offsets=(-1, 0, 1))
                    for name in system.modules]
                try:
                    best = solve_multimodule_space(
                        space_problems, constraints, decomposer,
                        interconnect.label_dim)
                except NoSpaceMapExists as exc:
                    error = last_error if last_error is not None else exc
                    raise error from exc
                best_mc, failure = lowering(best)
                if failure is not None:
                    raise failure
        return state.replace(space_maps=best.maps, microcode=best_mc)


class LowerMicrocodePass(Pass):
    name = "lower-microcode"
    description = ("package the Design and guarantee the value-free cell "
                   "program (injections, operations, hops) exists for the "
                   "chosen placement")

    def run(self, state: PipelineState) -> PipelineState:
        system: RecurrenceSystem = state.require("system", "decompose-chains")
        schedules = state.require("schedules", "schedule")
        space_maps = state.require("space_maps", "allocate")
        params = dict(state.params)
        microcode = state.microcode
        if microcode is None:
            # A custom pipeline skipped the allocate-time compile check.
            trace = structural_trace(system, params)
            microcode = compile_design(trace, schedules, space_maps,
                                       state.interconnect.decomposer())
        design = Design(system=system, params=params,
                        interconnect=state.interconnect,
                        schedules=dict(schedules),
                        space_maps=dict(space_maps),
                        constraints=list(state.constraints or ()))
        return state.replace(microcode=microcode, design=design)


class LowerNativePass(Pass):
    name = "lower-native"
    description = ("emit, compile and cache the design's native C kernel "
                   "(content-addressed by design token; degrades to the "
                   "vector engine without a C toolchain; opt-in)")

    def run(self, state: PipelineState) -> PipelineState:
        design = state.require("design", "lower-microcode")
        microcode = state.require("microcode", "lower-microcode")
        # Local imports: core.verify imports this module's package at
        # load time, so the dependency must stay run-time only.
        from repro.core.verify import design_token
        from repro.machine.compiled import lower
        from repro.machine.native import nativize

        cache = design._exec_cache
        lowered = cache.get("machine")
        if lowered is None:
            trace = structural_trace(design.system, dict(design.params))
            lowered = cache["machine"] = lower(microcode, trace)
        # Primes the same slot verify_design(engine="native") reads, so
        # verification after this pass starts warm — kernel already
        # compiled (or its .so already on disk from an earlier process).
        cache["nmachine"] = nativize(lowered,
                                     cache_token=design_token(design))
        return state


#: Every pass the CLI and callers can name, in presentation order.
PASS_REGISTRY: dict[str, type[Pass]] = {
    DecomposeChainsPass.name: DecomposeChainsPass,
    FuseAccumulatorsPass.name: FuseAccumulatorsPass,
    CrossChainCSEPass.name: CrossChainCSEPass,
    SchedulePass.name: SchedulePass,
    AllocatePass.name: AllocatePass,
    LowerMicrocodePass.name: LowerMicrocodePass,
    LowerNativePass.name: LowerNativePass,
}

#: Pass names of the default lowering, in order.
DEFAULT_PASS_NAMES: tuple[str, ...] = (
    DecomposeChainsPass.name,
    FuseAccumulatorsPass.name,
    SchedulePass.name,
    AllocatePass.name,
    LowerMicrocodePass.name,
)


def make_pass(name: str) -> Pass:
    """Instantiate a registered pass by name."""
    try:
        return PASS_REGISTRY[name]()
    except KeyError:
        raise KeyError(f"unknown pass {name!r}; available: "
                       f"{sorted(PASS_REGISTRY)}") from None


def available_passes() -> list[tuple[str, str, bool]]:
    """``(name, description, in_default_pipeline)`` for every pass."""
    return [(name, cls.description, name in DEFAULT_PASS_NAMES)
            for name, cls in PASS_REGISTRY.items()]


def default_pipeline(print_ir_after: Sequence[str] = (),
                     emit=print) -> PassPipeline:
    """The pipeline equivalent to the historical one-shot lowering.

    Byte-identical contract: on every input the resulting design and the
    canonical event streams of all three engines match the pre-pipeline
    ``synthesize`` exactly.
    """
    return PassPipeline([make_pass(name) for name in DEFAULT_PASS_NAMES],
                        print_ir_after=print_ir_after, emit=emit)


def run_pipeline(source: "RecurrenceSystem | HighLevelSpec",
                 params: Mapping[str, int], interconnect,
                 options, pipeline: PassPipeline | None = None
                 ) -> PipelineState:
    """Thread ``source`` through ``pipeline`` (default: the full lowering).

    ``source`` may be a canonic :class:`RecurrenceSystem` (the historical
    entry point) or a :class:`HighLevelSpec`, in which case the
    ``decompose-chains`` pass performs the Section III restructuring
    first.  Returns the final state; the packaged design (if the pipeline
    lowered that far) is ``state.design``.
    """
    if pipeline is None:
        pipeline = default_pipeline()
    state = PipelineState(params=dict(params), interconnect=interconnect,
                          options=options)
    if isinstance(source, HighLevelSpec):
        state = state.replace(spec=source)
    elif isinstance(source, RecurrenceSystem):
        state = state.replace(system=source)
    else:
        raise TypeError(
            f"source must be a RecurrenceSystem or HighLevelSpec, "
            f"got {type(source).__name__}")
    return pipeline.run(state)
