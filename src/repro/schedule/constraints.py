"""Constraint objects shared by the multi-module time and space solvers.

A *global constraint* stems from a link statement (the paper's A1–A5): for
every instance of the link, the destination computation must happen at least
``min_gap`` cycles after the source (Section V.A), and — for the space
mapping — the two cells must be within link-distance of the time difference
(Section V.B, constraint (10)).

Instances are stored extensionally as parallel point arrays: row ``r`` of
``dst_points`` / ``src_points`` is one (destination point, source point) pair
in the respective modules' index spaces.  Enumerating instances keeps the
solvers exact and is cheap at synthesis-time problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GlobalConstraint:
    """One link statement's timing/adjacency requirements, enumerated."""

    name: str
    dst_module: str
    src_module: str
    dst_points: np.ndarray
    src_points: np.ndarray
    min_gap: int = 1

    def __post_init__(self) -> None:
        self.dst_points = np.asarray(self.dst_points, dtype=np.int64)
        self.src_points = np.asarray(self.src_points, dtype=np.int64)
        if self.dst_points.shape[0] != self.src_points.shape[0]:
            raise ValueError(
                f"constraint {self.name}: instance count mismatch "
                f"({self.dst_points.shape[0]} vs {self.src_points.shape[0]})")

    @property
    def instances(self) -> int:
        return self.dst_points.shape[0]

    def gaps(self, dst_times: np.ndarray, src_times: np.ndarray) -> np.ndarray:
        """Per-instance time differences ``t_dst - t_src``."""
        return dst_times - src_times

    def timing_ok(self, dst_times: np.ndarray, src_times: np.ndarray) -> bool:
        if self.instances == 0:
            return True
        return bool(np.all(self.gaps(dst_times, src_times) >= self.min_gap))

    def __repr__(self) -> str:
        return (f"GlobalConstraint({self.name}: {self.src_module} -> "
                f"{self.dst_module}, {self.instances} instances, "
                f"gap >= {self.min_gap})")
