"""Optimal linear schedule search for a single canonic-form module.

System (1) — ``T(d) > 0`` for every dependence — "may have no solution or
several solutions.  In this latter case, the one which minimizes the total
execution time ... is chosen."  We solve it exactly by bounded enumeration of
integer coefficient vectors with a deterministic tie-break, and cross-check
optimality against an LP relaxation (:func:`lp_lower_bound`) built with
scipy.  Bounded enumeration is exact for the coefficient magnitudes that
matter: an optimal schedule of a system with unit-ish dependence vectors has
small coefficients, and the bound is a caller-visible parameter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np
from scipy.optimize import linprog

from repro.deps.vectors import DependenceMatrix
from repro.ir.indexset import Polyhedron
from repro.schedule.linear import LinearSchedule


class NoScheduleExists(Exception):
    """System (1) has no solution within the search bound (or at all)."""


@dataclass(frozen=True)
class ScheduleSolution:
    """The chosen schedule plus the quality landscape found by the search."""

    schedule: LinearSchedule
    makespan: int
    optima: tuple[LinearSchedule, ...]      # all schedules achieving it
    candidates_examined: int


def valid_coefficient_vectors(deps: DependenceMatrix, dim: int,
                              bound: int) -> Iterator[tuple[int, ...]]:
    """All integer vectors in ``[-bound, bound]^dim`` with ``t . d >= 1`` for
    every dependence vector ``d`` (excluding the zero vector trivially)."""
    vectors = [v.vector for v in deps.vectors]
    for coeffs in itertools.product(range(-bound, bound + 1), repeat=dim):
        if all(sum(c * x for c, x in zip(coeffs, d)) >= 1 for d in vectors):
            yield coeffs


def optimal_schedule(deps: DependenceMatrix, domain: Polyhedron,
                     params: Mapping[str, int], bound: int = 3
                     ) -> ScheduleSolution:
    """Exhaustively find the valid schedule minimising the makespan.

    Ties are broken by smaller coefficient L1 norm, then lexicographically —
    so the result is deterministic and matches the paper's "least integer
    values" convention.
    """
    dims = domain.dims
    points = np.array(list(domain.points(params)), dtype=np.int64)
    if points.size == 0:
        raise ValueError("cannot schedule an empty domain")
    best: tuple | None = None
    optima: list[LinearSchedule] = []
    best_span: int | None = None
    examined = 0
    for coeffs in valid_coefficient_vectors(deps, len(dims), bound):
        examined += 1
        times = points @ np.array(coeffs, dtype=np.int64)
        span = int(times.max() - times.min())
        sched = LinearSchedule(dims, coeffs)
        key = (span, sum(abs(c) for c in coeffs), coeffs)
        if best is None or key < best:
            best = key
            if best_span is None or span < best_span:
                optima = [sched]
                best_span = span
            else:
                optima.insert(0, sched)
        elif span == best_span:
            optima.append(sched)
    if best is None:
        raise NoScheduleExists(
            f"no valid schedule with coefficients in [-{bound}, {bound}] "
            f"for dependencies {deps}")
    chosen = LinearSchedule(dims, best[2])
    return ScheduleSolution(chosen, best[0], tuple(optima), examined)


def lp_lower_bound(deps: DependenceMatrix, domain: Polyhedron,
                   params: Mapping[str, int]) -> float:
    """LP-relaxation lower bound on the optimal makespan.

    Variables: real coefficients ``t``, scalars ``M`` (max) and ``m`` (min).
    Constraints: ``t . d >= 1`` for each dependence; ``m <= t . p <= M`` for
    every lattice point ``p``.  Objective: minimise ``M - m``.  The integer
    optimum found by :func:`optimal_schedule` can never beat this bound.
    """
    dims = domain.dims
    ndim = len(dims)
    points = np.array(list(domain.points(params)), dtype=np.float64)
    n_pts = points.shape[0]
    if n_pts == 0:
        raise ValueError("empty domain")
    # Variable layout: [t_1..t_ndim, M, m].
    n_var = ndim + 2
    c = np.zeros(n_var)
    c[ndim] = 1.0      # +M
    c[ndim + 1] = -1.0  # -m
    A_ub = []
    b_ub = []
    for v in deps.vectors:
        row = np.zeros(n_var)
        row[:ndim] = -np.array(v.vector, dtype=np.float64)
        A_ub.append(row)      # -t.d <= -1
        b_ub.append(-1.0)
    for p in points:
        row = np.zeros(n_var)
        row[:ndim] = p
        row[ndim] = -1.0      # t.p - M <= 0
        A_ub.append(row)
        b_ub.append(0.0)
        row2 = np.zeros(n_var)
        row2[:ndim] = -p
        row2[ndim + 1] = 1.0  # m - t.p <= 0
        A_ub.append(row2)
        b_ub.append(0.0)
    res = linprog(c, A_ub=np.array(A_ub), b_ub=np.array(b_ub),
                  bounds=[(None, None)] * n_var, method="highs")
    if not res.success:
        raise NoScheduleExists(f"LP relaxation infeasible: {res.message}")
    return float(res.fun)


def fastest_free_schedule(deps: DependenceMatrix, domain: Polyhedron,
                          params: Mapping[str, int]) -> int:
    """Data-flow-limited completion time (longest dependence chain length),
    a lower bound no schedule — linear or not — can beat."""
    from repro.deps.graph import critical_path_length, dependence_dag

    dag = dependence_dag(domain, deps, params)
    return critical_path_length(dag)
