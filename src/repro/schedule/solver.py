"""Optimal linear schedule search for a single canonic-form module.

System (1) — ``T(d) > 0`` for every dependence — "may have no solution or
several solutions.  In this latter case, the one which minimizes the total
execution time ... is chosen."  We solve it exactly by bounded enumeration of
integer coefficient vectors with a deterministic tie-break, and cross-check
optimality against an LP relaxation (:func:`lp_lower_bound`) built with
scipy.  Bounded enumeration is exact for the coefficient magnitudes that
matter: an optimal schedule of a system with unit-ish dependence vectors has
small coefficients, and the bound is a caller-visible parameter.

The search is vectorised: the full ``(2*bound+1)^dim`` candidate grid is
materialised once (and memoized per ``(dim, bound)``), validity ``C @ D >= 1``
is one matrix comparison, and all makespans come from a single
``C @ points.T`` product.  With ``use_lp_bound=True`` the scan walks the
valid candidates in ``(L1, lex)`` order and stops as soon as the running
optimum meets the LP lower bound — the chosen schedule and makespan are
provably identical to the exhaustive scan (any unscanned candidate has a
makespan no smaller and a strictly worse tie-break), but ``optima`` may then
be a subset and ``candidates_examined`` smaller.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.ir.indexset import Polyhedron
from repro.schedule.linear import LinearSchedule
from repro.util.errors import SynthesisError
from repro.util.instrument import STATS


class NoScheduleExists(SynthesisError):
    """System (1) has no solution within the search bound (or at all)."""


@dataclass(frozen=True)
class ScheduleSolution:
    """The chosen schedule plus the quality landscape found by the search."""

    schedule: LinearSchedule
    makespan: int
    optima: tuple[LinearSchedule, ...]      # all schedules achieving it
    candidates_examined: int


_grid_cache: dict[tuple[int, int], np.ndarray] = {}


def coefficient_grid(dim: int, bound: int) -> np.ndarray:
    """All integer vectors of ``[-bound, bound]^dim`` as a read-only
    ``((2*bound+1)^dim, dim)`` array, rows in the same lexicographic order as
    ``itertools.product(range(-bound, bound + 1), repeat=dim)``.  Memoized —
    every solver invocation at the same (dim, bound) reuses the grid."""
    key = (dim, bound)
    grid = _grid_cache.get(key)
    if grid is None:
        if dim == 0:
            grid = np.zeros((1, 0), dtype=np.int64)
        else:
            side = np.arange(-bound, bound + 1, dtype=np.int64)
            mesh = np.meshgrid(*([side] * dim), indexing="ij")
            grid = np.stack([m.ravel() for m in mesh], axis=1)
        grid.setflags(write=False)
        _grid_cache[key] = grid
    return grid


def valid_candidates(deps: DependenceMatrix, dim: int,
                     bound: int) -> np.ndarray:
    """Rows of the candidate grid satisfying ``t . d >= 1`` for every
    dependence, zero vector excluded, order preserved.

    This is the raw ``(k, dim)`` integer array the vectorised solver scans;
    :func:`valid_coefficient_vectors` yields the same rows as tuples.
    """
    grid = coefficient_grid(dim, bound)
    mask = np.any(grid != 0, axis=1)
    D = deps.matrix() if deps is not None and len(deps) > 0 else None
    if D is not None and D.size > 0:
        mask &= np.all(grid @ D >= 1, axis=1)
    return grid[mask]


#: Backwards-compatible private alias (pre-1.1 name).
_valid_candidates = valid_candidates


def valid_coefficient_vectors(deps: DependenceMatrix, dim: int,
                              bound: int) -> Iterator[tuple[int, ...]]:
    """All integer vectors in ``[-bound, bound]^dim`` with ``t . d >= 1`` for
    every dependence vector ``d``.

    The all-zero vector is rejected explicitly: with a non-empty dependence
    matrix it can never satisfy ``t . d >= 1``, and with an *empty* one it
    would otherwise slip through and produce a singular transformation,
    violating the nonsingularity requirement of eq. (2).
    """
    for row in valid_candidates(deps, dim, bound):
        yield tuple(int(c) for c in row)


def optimal_schedule(deps: DependenceMatrix, domain: Polyhedron,
                     params: Mapping[str, int], bound: int = 3,
                     use_lp_bound: bool = False) -> ScheduleSolution:
    """Exhaustively find the valid schedule minimising the makespan.

    Ties are broken by smaller coefficient L1 norm, then lexicographically —
    so the result is deterministic and matches the paper's "least integer
    values" convention.
    """
    dims = domain.dims
    points = domain.points_array(params)
    if points.size == 0:
        raise ValueError("cannot schedule an empty domain")
    candidates = valid_candidates(deps, len(dims), bound)
    if candidates.shape[0] == 0:
        raise NoScheduleExists(
            f"no valid schedule with coefficients in [-{bound}, {bound}] "
            f"for dependencies {deps}", bounds=bound)
    if use_lp_bound:
        solution = _bounded_scan(dims, candidates, points, deps, domain,
                                 params)
    else:
        solution = _full_scan(dims, candidates, points)
    STATS.count("solver.searches")
    STATS.count("solver.candidates_examined", solution.candidates_examined)
    return solution


def _assemble(dims: tuple[str, ...], candidates: np.ndarray,
              spans: np.ndarray, examined: int) -> ScheduleSolution:
    """Pick the optimum and rebuild the ``optima`` sequence exactly as the
    historical per-candidate loop did: first minimum-makespan candidate
    seeds the list, subsequent ones are inserted at the front whenever they
    improve the running (L1, lex) tie-break and appended otherwise."""
    best_span = int(spans.min())
    where = np.flatnonzero(spans == best_span)
    l1s = np.abs(candidates[where]).sum(axis=1)
    optima: list[LinearSchedule] = []
    best_l1: int | None = None
    chosen: LinearSchedule | None = None
    for pos, idx in enumerate(where):
        coeffs = tuple(int(c) for c in candidates[idx])
        sched = LinearSchedule(dims, coeffs)
        l1 = int(l1s[pos])
        if best_l1 is None or l1 < best_l1:
            optima.insert(0, sched)
            best_l1 = l1
            chosen = sched
        else:
            optima.append(sched)
    assert chosen is not None
    return ScheduleSolution(chosen, best_span, tuple(optima), examined)


def _full_scan(dims: tuple[str, ...], candidates: np.ndarray,
               points: np.ndarray) -> ScheduleSolution:
    times = candidates @ points.T
    spans = times.max(axis=1) - times.min(axis=1)
    return _assemble(dims, candidates, spans, int(candidates.shape[0]))


_SCAN_CHUNK = 64


def _bounded_scan(dims: tuple[str, ...], candidates: np.ndarray,
                  points: np.ndarray, deps: DependenceMatrix,
                  domain: Polyhedron, params: Mapping[str, int]
                  ) -> ScheduleSolution:
    """Scan candidates in (L1, lex) order, chunk by chunk, stopping once the
    best makespan so far meets the LP lower bound.  Unscanned candidates all
    carry a strictly worse (makespan, L1, lex) key, so the chosen schedule
    and its makespan match the exhaustive scan exactly."""
    target = math.ceil(lp_lower_bound(deps, domain, params) - 1e-9)
    l1s = np.abs(candidates).sum(axis=1)
    keys = tuple(candidates[:, k] for k in range(candidates.shape[1] - 1,
                                                 -1, -1)) + (l1s,)
    order = np.lexsort(keys)
    ranked = candidates[order]
    best_span: int | None = None
    kept: list[np.ndarray] = []
    kept_spans: list[np.ndarray] = []
    examined = 0
    for start in range(0, ranked.shape[0], _SCAN_CHUNK):
        chunk = ranked[start:start + _SCAN_CHUNK]
        times = chunk @ points.T
        spans = times.max(axis=1) - times.min(axis=1)
        kept.append(chunk)
        kept_spans.append(spans)
        examined += int(chunk.shape[0])
        chunk_best = int(spans.min())
        if best_span is None or chunk_best < best_span:
            best_span = chunk_best
        if best_span <= target:
            STATS.count("solver.lp_early_exits")
            STATS.count("solver.candidates_skipped",
                        int(ranked.shape[0]) - examined)
            break
    scanned = np.concatenate(kept, axis=0)
    scanned_spans = np.concatenate(kept_spans)
    # Restore grid (lex) order among the scanned candidates so the optima
    # replay sees them in the same sequence as the exhaustive scan.
    scanned_order = np.lexsort(
        tuple(scanned[:, k] for k in range(scanned.shape[1] - 1, -1, -1)))
    return _assemble(dims, scanned[scanned_order],
                     scanned_spans[scanned_order], examined)


def optimal_schedule_reference(deps: DependenceMatrix, domain: Polyhedron,
                               params: Mapping[str, int], bound: int = 3
                               ) -> ScheduleSolution:
    """The original per-candidate pure-Python search, kept as the oracle the
    vectorised solver is cross-checked (and benchmarked) against.  Requires a
    non-empty dependence matrix — the historical loop predates the explicit
    zero-vector rejection."""
    dims = domain.dims
    vectors = [v.vector for v in deps.vectors]
    points = np.array(list(domain.points(params)), dtype=np.int64)
    if points.size == 0:
        raise ValueError("cannot schedule an empty domain")
    best: tuple | None = None
    optima: list[LinearSchedule] = []
    best_span: int | None = None
    examined = 0
    for coeffs in itertools.product(range(-bound, bound + 1),
                                    repeat=len(dims)):
        if not all(sum(c * x for c, x in zip(coeffs, d)) >= 1
                   for d in vectors):
            continue
        examined += 1
        times = points @ np.array(coeffs, dtype=np.int64)
        span = int(times.max() - times.min())
        sched = LinearSchedule(dims, coeffs)
        key = (span, sum(abs(c) for c in coeffs), coeffs)
        if best is None or key < best:
            best = key
            if best_span is None or span < best_span:
                optima = [sched]
                best_span = span
            else:
                optima.insert(0, sched)
        elif span == best_span:
            optima.append(sched)
    if best is None:
        raise NoScheduleExists(
            f"no valid schedule with coefficients in [-{bound}, {bound}] "
            f"for dependencies {deps}", bounds=bound)
    chosen = LinearSchedule(dims, best[2])
    return ScheduleSolution(chosen, best[0], tuple(optima), examined)


def lp_lower_bound(deps: DependenceMatrix, domain: Polyhedron,
                   params: Mapping[str, int]) -> float:
    """LP-relaxation lower bound on the optimal makespan.

    Variables: real coefficients ``t``, scalars ``M`` (max) and ``m`` (min).
    Constraints: ``t . d >= 1`` for each dependence; ``m <= t . p <= M`` for
    every lattice point ``p``.  Objective: minimise ``M - m``.  The integer
    optimum found by :func:`optimal_schedule` can never beat this bound.
    """
    dims = domain.dims
    ndim = len(dims)
    points = domain.points_array(params).astype(np.float64)
    n_pts = points.shape[0]
    if n_pts == 0:
        raise ValueError("empty domain")
    # Variable layout: [t_1..t_ndim, M, m].
    n_var = ndim + 2
    c = np.zeros(n_var)
    c[ndim] = 1.0      # +M
    c[ndim + 1] = -1.0  # -m
    A_ub = []
    b_ub = []
    for v in deps.vectors:
        row = np.zeros(n_var)
        row[:ndim] = -np.array(v.vector, dtype=np.float64)
        A_ub.append(row)      # -t.d <= -1
        b_ub.append(-1.0)
    for p in points:
        row = np.zeros(n_var)
        row[:ndim] = p
        row[ndim] = -1.0      # t.p - M <= 0
        A_ub.append(row)
        b_ub.append(0.0)
        row2 = np.zeros(n_var)
        row2[:ndim] = -p
        row2[ndim + 1] = 1.0  # m - t.p <= 0
        A_ub.append(row2)
        b_ub.append(0.0)
    from scipy.optimize import linprog  # deferred: scipy costs ~0.5 s
    res = linprog(c, A_ub=np.array(A_ub), b_ub=np.array(b_ub),
                  bounds=[(None, None)] * n_var, method="highs")
    if not res.success:
        raise NoScheduleExists(f"LP relaxation infeasible: {res.message}")
    return float(res.fun)


def fastest_free_schedule(deps: DependenceMatrix, domain: Polyhedron,
                          params: Mapping[str, int]) -> int:
    """Data-flow-limited completion time (longest dependence chain length),
    a lower bound no schedule — linear or not — can beat."""
    from repro.deps.graph import critical_path_length, dependence_dag

    dag = dependence_dag(domain, deps, params)
    return critical_path_length(dag)
