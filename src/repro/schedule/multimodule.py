"""Joint scheduling of a system of mutually dependent recurrences.

Section V.A: "Finding for each individual module in the algorithm
representation a separate time function which is compatible with the local
data dependencies and also satisfies the constraints imposed by the global
dependencies."

The solver enumerates, per module, the locally valid coefficient vectors
(exactly as the single-module solver does), then backtracks over modules
checking every global constraint as soon as both of its endpoints are
assigned.  The objective is the *global* makespan — the spread between the
earliest and latest event across all modules — with deterministic
tie-breaking, so the paper's optimal ``λ = (-1, 2, -1)``, ``μ = (-2, 1, 1)``,
``σ = (-2, 2)`` is reproduced exactly.

All per-candidate arithmetic is hoisted out of the backtracking loop: each
module's candidate times are one ``points @ C.T`` product (only the per
-candidate min/max survive), and each global constraint's endpoint times are
one ``instance_points @ C.T`` product per side, so the inner loop reduces to
integer comparisons over precomputed columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.schedule.constraints import GlobalConstraint
from repro.schedule.linear import LinearSchedule
from repro.schedule.solver import (
    NoScheduleExists,
    coefficient_grid,
    valid_coefficient_vectors,
)
from repro.util.instrument import STATS


@dataclass
class ModuleSchedulingProblem:
    """Scheduling view of one module: dims, local deps, enumerated points."""

    name: str
    dims: tuple[str, ...]
    deps: DependenceMatrix | None
    points: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.int64)
        if self.points.ndim != 2 or self.points.shape[1] != len(self.dims):
            raise ValueError(
                f"module {self.name}: points must be (N, {len(self.dims)})")

    def candidates(self, bound: int, offsets: Sequence[int]
                   ) -> list[tuple[tuple[int, ...], int]]:
        """Locally valid (coeffs, offset) pairs, deterministically ordered.

        A module without local dependences accepts *every* coefficient
        vector (including zero — the global constraints are what pin such a
        module down); with dependences the vectorised validity filter of the
        single-module solver applies.
        """
        dim = len(self.dims)
        if self.deps is None or len(self.deps) == 0:
            coeff_list = [tuple(int(c) for c in row)
                          for row in coefficient_grid(dim, bound)]
        else:
            coeff_list = list(valid_coefficient_vectors(self.deps, dim, bound))
        return [(c, o) for c in coeff_list for o in offsets]


@dataclass(frozen=True)
class MultiScheduleSolution:
    schedules: dict[str, LinearSchedule]
    makespan: int
    candidates_examined: int


def _candidate_arrays(candidates: Sequence[tuple[tuple[int, ...], int]]
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Split (coeffs, offset) pairs into a coefficient matrix and an offset
    vector (both int64)."""
    coeffs = np.array([c for c, _ in candidates], dtype=np.int64)
    offsets = np.array([o for _, o in candidates], dtype=np.int64)
    return coeffs, offsets


def solve_multimodule(problems: Sequence[ModuleSchedulingProblem],
                      constraints: Sequence[GlobalConstraint],
                      bound: int = 3,
                      offsets: Sequence[int] = (0,)) -> MultiScheduleSolution:
    """Find jointly optimal linear schedules for all modules.

    Empty modules (no points) are allowed and contribute nothing to the
    makespan.  Raises :class:`NoScheduleExists` when no assignment within the
    bound satisfies every local and global constraint.
    """
    order = list(problems)
    by_name = {p.name: p for p in order}
    for gc in constraints:
        if gc.dst_module not in by_name or gc.src_module not in by_name:
            raise KeyError(f"constraint {gc.name} references unknown module")

    candidate_lists = {
        p.name: p.candidates(bound, offsets) for p in order}
    for p in order:
        if not candidate_lists[p.name]:
            raise NoScheduleExists(
                f"module {p.name}: no locally valid schedule within bound "
                f"{bound}", module=p.name, bounds=bound)

    # Group constraints by the *latest* (in search order) module they touch,
    # so each is checked as soon as it becomes decidable.
    position = {p.name: idx for idx, p in enumerate(order)}
    check_at: dict[int, list[GlobalConstraint]] = {}
    for gc in constraints:
        at = max(position[gc.dst_module], position[gc.src_module])
        check_at.setdefault(at, []).append(gc)

    # Hoisted candidate arithmetic: per-candidate (min, max) event times per
    # module, and per-constraint endpoint time columns, each from a single
    # matrix product.
    cand_coeffs: dict[str, np.ndarray] = {}
    cand_offsets: dict[str, np.ndarray] = {}
    cand_tmin: dict[str, np.ndarray] = {}
    cand_tmax: dict[str, np.ndarray] = {}
    for p in order:
        C, O = _candidate_arrays(candidate_lists[p.name])
        cand_coeffs[p.name], cand_offsets[p.name] = C, O
        if p.points.shape[0]:
            times = p.points @ C.T
            cand_tmin[p.name] = times.min(axis=0) + O
            cand_tmax[p.name] = times.max(axis=0) + O

    def endpoint_times(points: np.ndarray, name: str) -> np.ndarray:
        """(instances, n_candidates) times of constraint endpoints under
        every candidate of ``name``."""
        if points.shape[0] == 0:
            return np.zeros((0, len(candidate_lists[name])), dtype=np.int64)
        return points @ cand_coeffs[name].T + cand_offsets[name]

    gc_dst_times = {id(gc): endpoint_times(gc.dst_points, gc.dst_module)
                    for gc in constraints}
    gc_src_times = {id(gc): endpoint_times(gc.src_points, gc.src_module)
                    for gc in constraints}

    best_key: tuple | None = None
    best_assignment: dict[str, int] | None = None
    examined = 0

    assignment: dict[str, int] = {}     # module name -> candidate index

    def global_span() -> int:
        lo = None
        hi = None
        for name, ci in assignment.items():
            if name not in cand_tmin:
                continue
            tmin = int(cand_tmin[name][ci])
            tmax = int(cand_tmax[name][ci])
            lo = tmin if lo is None else min(lo, tmin)
            hi = tmax if hi is None else max(hi, tmax)
        if lo is None:
            return 0
        return hi - lo

    def recurse(idx: int) -> None:
        nonlocal best_key, best_assignment, examined
        if idx == len(order):
            examined += 1
            total = global_span()
            flat_coeffs = tuple(
                c for name in (p.name for p in order)
                for c in (candidate_lists[name][assignment[name]][0]
                          + (candidate_lists[name][assignment[name]][1],)))
            l1 = sum(abs(c) for c in flat_coeffs)
            key = (total, l1, flat_coeffs)
            if best_key is None or key < best_key:
                best_key = key
                best_assignment = dict(assignment)
            return
        prob = order[idx]
        checks = check_at.get(idx, [])
        for ci in range(len(candidate_lists[prob.name])):
            assignment[prob.name] = ci
            feasible = True
            for gc in checks:
                dst_t = gc_dst_times[id(gc)][:, assignment[gc.dst_module]]
                src_t = gc_src_times[id(gc)][:, assignment[gc.src_module]]
                if not gc.timing_ok(dst_t, src_t):
                    feasible = False
                    break
            if feasible:
                recurse(idx + 1)
        assignment.pop(prob.name, None)

    recurse(0)
    STATS.count("multimodule.assignments_examined", examined)
    if best_assignment is None:
        raise NoScheduleExists(
            "no joint schedule satisfies the global constraints "
            f"within bound {bound}", bounds=bound)
    schedules = {}
    for name, ci in best_assignment.items():
        coeffs, offset = candidate_lists[name][ci]
        schedules[name] = LinearSchedule(by_name[name].dims, coeffs, offset)
    return MultiScheduleSolution(schedules, best_key[0], examined)


def normalise_start(schedules: Mapping[str, LinearSchedule],
                    problems: Sequence[ModuleSchedulingProblem],
                    start: int = 0) -> dict[str, LinearSchedule]:
    """Shift all schedules by one common constant so the earliest event
    lands at ``start``.  A common shift never disturbs constraint gaps."""
    lo = None
    for p in problems:
        if p.points.shape[0] == 0:
            continue
        t = schedules[p.name].times(p.points)
        tmin = int(t.min())
        lo = tmin if lo is None else min(lo, tmin)
    if lo is None:
        return dict(schedules)
    delta = start - lo
    return {name: s.shifted(delta) for name, s in schedules.items()}
