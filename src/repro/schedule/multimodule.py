"""Joint scheduling of a system of mutually dependent recurrences.

Section V.A: "Finding for each individual module in the algorithm
representation a separate time function which is compatible with the local
data dependencies and also satisfies the constraints imposed by the global
dependencies."

The solver enumerates, per module, the locally valid coefficient vectors
(exactly as the single-module solver does), then backtracks over modules
checking every global constraint as soon as both of its endpoints are
assigned.  The objective is the *global* makespan — the spread between the
earliest and latest event across all modules — with deterministic
tie-breaking, so the paper's optimal ``λ = (-1, 2, -1)``, ``μ = (-2, 1, 1)``,
``σ = (-2, 2)`` is reproduced exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.schedule.constraints import GlobalConstraint
from repro.schedule.linear import LinearSchedule
from repro.schedule.solver import NoScheduleExists, valid_coefficient_vectors


@dataclass
class ModuleSchedulingProblem:
    """Scheduling view of one module: dims, local deps, enumerated points."""

    name: str
    dims: tuple[str, ...]
    deps: DependenceMatrix | None
    points: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.int64)
        if self.points.ndim != 2 or self.points.shape[1] != len(self.dims):
            raise ValueError(
                f"module {self.name}: points must be (N, {len(self.dims)})")

    def candidates(self, bound: int, offsets: Sequence[int]
                   ) -> list[tuple[tuple[int, ...], int]]:
        """Locally valid (coeffs, offset) pairs, deterministically ordered."""
        dim = len(self.dims)
        if self.deps is None or len(self.deps) == 0:
            coeff_iter = itertools.product(range(-bound, bound + 1), repeat=dim)
            coeff_list = list(coeff_iter)
        else:
            coeff_list = list(valid_coefficient_vectors(self.deps, dim, bound))
        return [(c, o) for c in coeff_list for o in offsets]


@dataclass(frozen=True)
class MultiScheduleSolution:
    schedules: dict[str, LinearSchedule]
    makespan: int
    candidates_examined: int


def _times_for(problem: ModuleSchedulingProblem, coeffs: tuple[int, ...],
               offset: int) -> np.ndarray:
    return problem.points @ np.array(coeffs, dtype=np.int64) + offset


def solve_multimodule(problems: Sequence[ModuleSchedulingProblem],
                      constraints: Sequence[GlobalConstraint],
                      bound: int = 3,
                      offsets: Sequence[int] = (0,)) -> MultiScheduleSolution:
    """Find jointly optimal linear schedules for all modules.

    Empty modules (no points) are allowed and contribute nothing to the
    makespan.  Raises :class:`NoScheduleExists` when no assignment within the
    bound satisfies every local and global constraint.
    """
    order = list(problems)
    by_name = {p.name: p for p in order}
    for gc in constraints:
        if gc.dst_module not in by_name or gc.src_module not in by_name:
            raise KeyError(f"constraint {gc.name} references unknown module")

    candidate_lists = {
        p.name: p.candidates(bound, offsets) for p in order}
    for p in order:
        if not candidate_lists[p.name]:
            raise NoScheduleExists(
                f"module {p.name}: no locally valid schedule within bound {bound}")

    # Group constraints by the *latest* (in search order) module they touch,
    # so each is checked as soon as it becomes decidable.
    position = {p.name: idx for idx, p in enumerate(order)}
    check_at: dict[int, list[GlobalConstraint]] = {}
    for gc in constraints:
        at = max(position[gc.dst_module], position[gc.src_module])
        check_at.setdefault(at, []).append(gc)

    # Precompute constraint-instance times lazily per (module, candidate).
    times_cache: dict[tuple[str, tuple, int], np.ndarray] = {}

    def times(name: str, coeffs: tuple[int, ...], offset: int) -> np.ndarray:
        key = (name, coeffs, offset)
        if key not in times_cache:
            times_cache[key] = _times_for(by_name[name], coeffs, offset)
        return times_cache[key]

    # Per-constraint endpoint times also need caching; compute on the fly
    # from the instance point arrays (cheap matrix-vector products).
    def instance_times(points: np.ndarray, coeffs: tuple[int, ...],
                       offset: int) -> np.ndarray:
        if points.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return points @ np.array(coeffs, dtype=np.int64) + offset

    best_key: tuple | None = None
    best_assignment: dict[str, tuple[tuple[int, ...], int]] | None = None
    examined = 0

    assignment: dict[str, tuple[tuple[int, ...], int]] = {}

    def global_span(assigned: dict[str, tuple[tuple[int, ...], int]]) -> tuple[int, int] | None:
        lo = None
        hi = None
        for name, (coeffs, offset) in assigned.items():
            prob = by_name[name]
            if prob.points.shape[0] == 0:
                continue
            t = times(name, coeffs, offset)
            tmin, tmax = int(t.min()), int(t.max())
            lo = tmin if lo is None else min(lo, tmin)
            hi = tmax if hi is None else max(hi, tmax)
        if lo is None:
            return None
        return lo, hi

    def recurse(idx: int) -> None:
        nonlocal best_key, best_assignment, examined
        if idx == len(order):
            examined += 1
            span = global_span(assignment)
            total = 0 if span is None else span[1] - span[0]
            flat_coeffs = tuple(
                c for name in (p.name for p in order)
                for c in assignment[name][0] + (assignment[name][1],))
            l1 = sum(abs(c) for c in flat_coeffs)
            key = (total, l1, flat_coeffs)
            if best_key is None or key < best_key:
                best_key = key
                best_assignment = dict(assignment)
            return
        prob = order[idx]
        for coeffs, offset in candidate_lists[prob.name]:
            assignment[prob.name] = (coeffs, offset)
            feasible = True
            for gc in check_at.get(idx, []):
                d_coeffs, d_off = assignment[gc.dst_module]
                s_coeffs, s_off = assignment[gc.src_module]
                dst_t = instance_times(gc.dst_points, d_coeffs, d_off)
                src_t = instance_times(gc.src_points, s_coeffs, s_off)
                if not gc.timing_ok(dst_t, src_t):
                    feasible = False
                    break
            if feasible:
                recurse(idx + 1)
        assignment.pop(prob.name, None)

    recurse(0)
    if best_assignment is None:
        raise NoScheduleExists(
            "no joint schedule satisfies the global constraints "
            f"within bound {bound}")
    schedules = {
        name: LinearSchedule(by_name[name].dims, coeffs, offset)
        for name, (coeffs, offset) in best_assignment.items()}
    return MultiScheduleSolution(schedules, best_key[0], examined)


def normalise_start(schedules: Mapping[str, LinearSchedule],
                    problems: Sequence[ModuleSchedulingProblem],
                    start: int = 0) -> dict[str, LinearSchedule]:
    """Shift all schedules by one common constant so the earliest event
    lands at ``start``.  A common shift never disturbs constraint gaps."""
    lo = None
    for p in problems:
        if p.points.shape[0] == 0:
            continue
        t = schedules[p.name].times(p.points)
        tmin = int(t.min())
        lo = tmin if lo is None else min(lo, tmin)
    if lo is None:
        return dict(schedules)
    delta = start - lo
    return {name: s.shifted(delta) for name, s in schedules.items()}
