"""Time functions: single-module optimal linear schedules (condition (1)) and
joint multi-module scheduling under global constraints (Section V.A)."""

from repro.schedule.constraints import GlobalConstraint
from repro.schedule.linear import LinearSchedule
from repro.schedule.multimodule import (
    ModuleSchedulingProblem,
    MultiScheduleSolution,
    normalise_start,
    solve_multimodule,
)
from repro.schedule.solver import (
    NoScheduleExists,
    ScheduleSolution,
    fastest_free_schedule,
    lp_lower_bound,
    optimal_schedule,
    valid_candidates,
    valid_coefficient_vectors,
)

__all__ = [
    "GlobalConstraint",
    "LinearSchedule",
    "ModuleSchedulingProblem",
    "MultiScheduleSolution",
    "NoScheduleExists",
    "ScheduleSolution",
    "fastest_free_schedule",
    "lp_lower_bound",
    "normalise_start",
    "optimal_schedule",
    "solve_multimodule",
    "valid_candidates",
    "valid_coefficient_vectors",
]
