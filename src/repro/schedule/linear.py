"""Linear (affine) time functions.

A :class:`LinearSchedule` is the paper's ``T : I^n -> Z`` restricted to the
affine form ``T(x) = t . x + offset`` with integer coefficients.  Validity is
condition (1): ``T(d) > 0`` for every dependence vector ``d`` — with integer
data this is ``T(d) >= 1``.  The quality measure is the *total execution
time*, "the difference between the maximum and minimum value of T" over the
index set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.ir.affine import AffineExpr, Number
from repro.ir.indexset import Polyhedron


@dataclass(frozen=True)
class LinearSchedule:
    """``T(x) = sum coeffs[k] * x[k] + offset`` over named dimensions."""

    dims: tuple[str, ...]
    coeffs: tuple[int, ...]
    offset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", tuple(self.dims))
        object.__setattr__(self, "coeffs", tuple(int(c) for c in self.coeffs))
        object.__setattr__(self, "offset", int(self.offset))
        if len(self.dims) != len(self.coeffs):
            raise ValueError("dims and coeffs must have equal length")

    # -- evaluation ---------------------------------------------------------
    def time(self, point: Sequence[int] | Mapping[str, Number]) -> int:
        """Execution time of the computation at ``point``."""
        if isinstance(point, Mapping):
            values = [point[d] for d in self.dims]
        else:
            values = list(point)
            if len(values) != len(self.dims):
                raise ValueError(
                    f"point arity {len(values)} != dims {len(self.dims)}")
        return sum(c * int(v) for c, v in zip(self.coeffs, values)) + self.offset

    def times(self, points: np.ndarray) -> np.ndarray:
        """Vectorised times for an (N, dim) integer array of points."""
        pts = np.asarray(points, dtype=np.int64)
        return pts @ np.array(self.coeffs, dtype=np.int64) + self.offset

    def of_vector(self, d: Sequence[int]) -> int:
        """``T(d)`` for a dependence vector (offset does not apply)."""
        return sum(c * int(v) for c, v in zip(self.coeffs, d))

    def as_expr(self) -> AffineExpr:
        return AffineExpr.from_vector(self.dims, self.coeffs, self.offset)

    def shifted(self, delta: int) -> "LinearSchedule":
        return LinearSchedule(self.dims, self.coeffs, self.offset + delta)

    # -- validity and quality -------------------------------------------------
    def satisfies(self, deps: DependenceMatrix) -> bool:
        """Condition (1): ``T(d) >= 1`` for every dependence vector."""
        return all(self.of_vector(v.vector) >= 1 for v in deps.vectors)

    def violated(self, deps: DependenceMatrix) -> list:
        return [v for v in deps.vectors if self.of_vector(v.vector) < 1]

    def makespan(self, domain: Polyhedron,
                 params: Mapping[str, int]) -> int:
        """Exact total execution time ``max T - min T`` over lattice points."""
        lo, hi = self.time_range(domain, params)
        return hi - lo

    def time_range(self, domain: Polyhedron,
                   params: Mapping[str, int]) -> tuple[int, int]:
        """Exact (min, max) of T over the lattice points of the domain."""
        times = [self.time(p) for p in domain.points(params)]
        if not times:
            raise ValueError("empty domain has no time range")
        return min(times), max(times)

    def __repr__(self) -> str:
        return f"T{self.dims}={self.as_expr()}"
