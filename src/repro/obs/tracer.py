"""Hierarchical span tracer — the engine's structured timing substrate.

The synthesis pipeline is a tree of stages (a sweep contains jobs, a job
contains schedule/space solves, a verification contains compile and machine
passes), but the historical :data:`~repro.util.instrument.STATS` registry
flattened all of it into two dicts.  The :class:`Tracer` keeps that flat
view — every existing ``--stats`` consumer and the sweep stat-merge protocol
still read ``counters``/``timers`` exactly as before — and additionally
builds a tree of :class:`Span` nodes when tracing is *enabled*:

* :meth:`Tracer.span` is a re-entrant context manager.  Nested spans become
  children of the active span; re-entering the *same* stage name only
  charges the outermost frame to the flat timer, so recursive stages
  (``verify.compile`` under a warm-cache path) no longer double-count.
* When tracing is disabled the fast path allocates no span nodes — one dict
  bump for the re-entrancy depth and one for the timer, same cost profile
  the flat registry always had.
* Span trees serialise to plain dicts (:meth:`Span.to_dict`) and merge back
  with :meth:`Tracer.graft`, which is how ``core.batch`` workers ship their
  trees across process boundaries alongside the counter deltas.

The process-wide instance is :data:`TRACER`; ``repro.util.instrument.STATS``
is the same object under its historical name.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.telemetry import MetricsRegistry


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attrs", "counters", "children", "start", "duration")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = attrs or {}
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.start: float = 0.0
        self.duration: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (stable keys; children in execution order)."""
        out: dict = {"name": self.name,
                     "duration_ms": round(self.duration * 1000, 3)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"], dict(data.get("attrs", {})))
        span.duration = data.get("duration_ms", 0.0) / 1000
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def total(self, name: str) -> int:
        """Counter ``name`` summed over this span and its subtree."""
        return (self.counters.get(name, 0)
                + sum(c.total(name) for c in self.children))

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1000:.1f} ms, "
                f"{len(self.children)} children)")


def render_spans(spans: "list[Span]", indent: str = "  ") -> str:
    """ASCII tree of a span forest (durations in ms, counters inline)."""
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        extras = ""
        if span.counters:
            extras = "  [" + ", ".join(
                f"{k}={v}" for k, v in sorted(span.counters.items())) + "]"
        attrs = ""
        if span.attrs:
            attrs = "  {" + ", ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())) + "}"
        lines.append(f"{indent * depth}{span.name:<{max(1, 40 - depth * 2)}} "
                     f"{span.duration * 1000:>9.1f} ms{extras}{attrs}")
        for child in span.children:
            walk(child, depth + 1)

    for span in spans:
        walk(span, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


class Tracer:
    """Flat counters/timers plus an optional hierarchical span tree.

    The flat ``counters``/``timers`` dicts are always maintained — they are
    the backward-compatible :class:`~repro.util.instrument.Instrumentation`
    surface.  The span tree is only built while :attr:`enabled` is true.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 metrics: "MetricsRegistry | None" = None) -> None:
        #: The typed metrics registry this tracer publishes into.  The
        #: flat ``counters`` dict *is* the registry's counter store, so the
        #: historical view and the typed view can never drift; typed
        #: handles route increments back through :meth:`count` (the
        #: registry's ``_count_hook``) so they gain span attribution.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics._count_hook = self.count
        self.counters: dict[str, int] = self.metrics.counters
        self.timers: dict[str, float] = {}
        self.enabled = False
        self._clock = clock
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        #: per-name re-entrancy depth of currently open spans
        self._active: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear all recorded data (the enabled flag is left alone)."""
        self.metrics.reset()        # clears ``counters`` in place too
        self.timers.clear()
        self._roots.clear()
        self._stack.clear()
        self._active.clear()

    # -- recording -----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta
        if self.enabled and self._stack:
            span = self._stack[-1]
            span.counters[name] = span.counters.get(name, 0) + delta

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator["Span | None"]:
        """Open a span; yields the node (``None`` while tracing is off).

        Re-entrant: the flat timer for ``name`` is charged only by the
        outermost frame, so a stage that recurses into itself reports its
        true wall time instead of double-counting the nested frames.  The
        span tree records every frame.
        """
        depth = self._active.get(name, 0)
        self._active[name] = depth + 1
        node: Span | None = None
        if self.enabled:
            node = Span(name, dict(attrs) if attrs else None)
            parent = self._stack[-1] if self._stack else None
            (parent.children if parent else self._roots).append(node)
            self._stack.append(node)
            node.start = self._clock()
            start = node.start
        else:
            start = self._clock()
        try:
            yield node
        finally:
            elapsed = self._clock() - start
            remaining = self._active[name] - 1
            if remaining:
                self._active[name] = remaining
            else:
                del self._active[name]
                self.timers[name] = self.timers.get(name, 0.0) + elapsed
                if self.enabled:
                    # Telemetry on: stage durations also feed the per-name
                    # latency histogram (percentiles across calls/runs).
                    self.metrics.observe(name, elapsed)
            if node is not None:
                node.duration = elapsed
                if self._stack and self._stack[-1] is node:
                    self._stack.pop()

    #: historical name of :meth:`span` — every call site predating the
    #: tracer uses ``STATS.stage(...)``.
    stage = span

    def annotate(self, **attrs) -> None:
        """Attach attributes to the active span (no-op when tracing is off)."""
        if self.enabled and self._stack:
            self._stack[-1].attrs.update(attrs)

    # -- span forest ---------------------------------------------------------

    def spans(self) -> list[Span]:
        """The recorded root spans, in execution order."""
        return list(self._roots)

    def span_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self._roots]

    def graft(self, data: dict) -> Span:
        """Attach a serialised span tree (from a worker process) under the
        active span — the tree merge counterpart of the counter-delta merge."""
        span = Span.from_dict(data)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self._roots).append(span)
        return span

    def discard(self, span: "Span | None") -> None:
        """Drop a root span (worker hygiene after shipping its tree)."""
        if span is not None and span in self._roots:
            self._roots.remove(span)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """The flat view — key-sorted within each section and JSON-stable."""
        return {"counters": {k: self.counters[k]
                             for k in sorted(self.counters)},
                "timers": {k: self.timers[k] for k in sorted(self.timers)}}

    def report(self) -> str:
        """Human-readable summary: flat entries, then the span tree when
        tracing was enabled."""
        lines = ["instrumentation:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<40} {self.counters[name]}")
        for name in sorted(self.timers):
            lines.append(f"  {name:<40} {self.timers[name] * 1000:.1f} ms")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        if self._roots:
            lines.append("spans:")
            lines.append(render_spans(self._roots, indent="  "))
        return "\n".join(lines)


#: The process-wide tracer.  ``repro.util.instrument.STATS`` is this object.
TRACER = Tracer()

#: The process-wide typed metrics registry (the tracer's).
METRICS = TRACER.metrics


# -- profiling exports ---------------------------------------------------------
#
# The span tree is a profile of the synthesis side (pass manager, solver,
# allocation, codegen).  Two standard renderings make it consumable by
# stock tooling:
#
# * collapsed stacks — the ``frame;frame;frame count`` format consumed by
#   flamegraph.pl, speedscope and every "folded stacks" viewer, with
#   *self*-time microseconds as the sample count;
# * Chrome ``trace_event`` JSON — loads in Perfetto / chrome://tracing.
#
# Both work from durations alone (children laid out sequentially inside
# their parent), so they apply equally to live spans and to span trees
# re-hydrated from a persisted RunRecord.


def collapsed_stacks(spans: "list[Span]") -> str:
    """The span forest in collapsed-stack (flamegraph) format.

    One line per distinct stack, ``root;child;leaf <count>`` where the
    count is the stack's *self* time in integer microseconds (duration
    minus child durations, clamped at zero).  Lines are sorted for
    byte-stable output; zero-weight stacks are dropped.
    """
    weights: dict[tuple[str, ...], int] = {}

    def walk(span: Span, prefix: tuple[str, ...]) -> None:
        stack = prefix + (span.name,)
        child_time = sum(c.duration for c in span.children)
        self_us = int(round(max(0.0, span.duration - child_time) * 1e6))
        if self_us:
            weights[stack] = weights.get(stack, 0) + self_us
        for child in span.children:
            walk(child, stack)

    for span in spans:
        walk(span, ())
    return "\n".join(f"{';'.join(stack)} {weights[stack]}"
                     for stack in sorted(weights))


def spans_to_chrome_trace(spans: "list[Span]") -> dict:
    """The span forest as Chrome ``trace_event`` JSON (Perfetto-loadable).

    The timeline is synthesised from durations: roots run back to back and
    every child starts where its previous sibling ended, so nesting and
    proportions are faithful even for spans re-hydrated from a RunRecord
    (which stores durations, not wall-clock starts).
    """
    trace_events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "repro synthesis"}},
        {"ph": "M", "pid": 0, "tid": 1, "name": "thread_name",
         "args": {"name": "spans"}},
    ]

    def walk(span: Span, ts_us: float) -> None:
        args: dict = {}
        if span.attrs:
            args.update({k: str(v) for k, v in sorted(span.attrs.items())})
        if span.counters:
            args.update({k: v for k, v in sorted(span.counters.items())})
        trace_events.append({
            "ph": "X", "pid": 0, "tid": 1,
            "ts": int(round(ts_us)),
            "dur": int(round(span.duration * 1e6)),
            "cat": "span", "name": span.name, "args": args})
        cursor = ts_us
        for child in span.children:
            walk(child, cursor)
            cursor += child.duration * 1e6

    cursor = 0.0
    for span in spans:
        walk(span, cursor)
        cursor += span.duration * 1e6
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
