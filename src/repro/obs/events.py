"""Cycle-level execution event log of the systolic machine.

The paper's whole point is *non-uniform behaviour over time* — a cell's
action varies cycle by cycle — yet :class:`~repro.machine.simulator.
MachineStats` only reports aggregates.  This module defines the event
vocabulary both machine engines emit behind an opt-in sink:

========  =============================================================
kind      meaning
========  =============================================================
inject    a host input value enters a boundary cell's register file
fire      a cell executes an operation (``copy`` for link transfers)
hop       a value crosses one interconnect link (``cell`` is the dst)
output    a host result value is produced (at its production cycle/cell)
reclaim   a register is freed after its last local use
========  =============================================================

Every event is keyed by ``(cycle, cell)``.  The interpreter emits live
during execution; the compiled engine derives the identical stream
structurally at lowering time — the test suite cross-checks the two.

:class:`EventLog` is the stock sink: it collects events and exports them as

* **JSON lines** (:meth:`EventLog.write_jsonl`) — one event per line, stable
  keys, greppable;
* **Chrome ``trace_event`` JSON** (:meth:`EventLog.write_chrome_trace`) —
  loads directly in Perfetto / ``chrome://tracing``: each cell is a track
  (tid), each cycle is one millisecond, so the non-uniform data flow of a
  design can be inspected interactively.

This module deliberately imports nothing from the rest of the engine, so
any layer can depend on it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Protocol

Cell = tuple[int, ...]

#: Every legal event kind, in canonical within-cycle emission order.
EVENT_KINDS = ("hop", "inject", "fire", "output", "reclaim")

#: Chrome-trace timebase: one machine cycle is rendered as one millisecond.
CYCLE_US = 1000


@dataclass(frozen=True)
class MachineEvent:
    """One cycle-level occurrence in a machine execution.

    ``key`` is the value's identity rendered as a string
    (``module::var(point)``) so events stay hashable and serialisable
    without dragging IR types along.  ``src`` is set for hops only;
    ``name`` carries the input name (inject), op name (fire) or host result
    key (output); ``stream`` is the (module, var) channel class for
    hops and fires.
    """

    kind: str
    cycle: int
    cell: Cell
    key: str
    src: Cell | None = None
    name: str | None = None
    stream: tuple[str, str] | None = None

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "cycle": self.cycle,
                     "cell": list(self.cell), "key": self.key}
        if self.src is not None:
            out["src"] = list(self.src)
        if self.name is not None:
            out["name"] = self.name
        if self.stream is not None:
            out["stream"] = list(self.stream)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MachineEvent":
        return cls(kind=data["kind"], cycle=data["cycle"],
                   cell=tuple(data["cell"]), key=data["key"],
                   src=tuple(data["src"]) if "src" in data else None,
                   name=data.get("name"),
                   stream=tuple(data["stream"]) if "stream" in data else None)


class EventSink(Protocol):
    """Anything that can receive machine events."""

    def emit(self, event: MachineEvent) -> None:
        ...


class EventLog:
    """The stock :class:`EventSink`: collect, summarise, export."""

    def __init__(self) -> None:
        self.events: list[MachineEvent] = []

    def emit(self, event: MachineEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- summaries -----------------------------------------------------------

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def per_cell_counts(self) -> dict[Cell, dict[str, int]]:
        """``{cell: {kind: count}}`` over every event's home cell."""
        table: dict[Cell, dict[str, int]] = {}
        for e in self.events:
            per = table.setdefault(e.cell, {})
            per[e.kind] = per.get(e.kind, 0) + 1
        return table

    def cycle_range(self) -> tuple[int, int]:
        if not self.events:
            return (0, 0)
        cycles = [e.cycle for e in self.events]
        return (min(cycles), max(cycles))

    # -- exporters -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One stable-key JSON object per line."""
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in self.events)

    def digest(self, canonical: bool = True) -> str:
        """SHA-256 of the JSON-lines export — the stream's byte identity.

        With ``canonical=True`` (default) events are put in
        :func:`canonical_order` first, so two engines that tell the same
        story in different emission orders digest equal.  The four-engine
        equivalence tests compare these digests, and they are cheap enough
        to log per run.
        """
        events = canonical_order(self.events) if canonical else self.events
        body = "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in events)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            body = self.to_jsonl()
            fh.write(body + ("\n" if body else ""))

    def to_chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` representation (Perfetto-loadable).

        Cells become threads of one process, named and sorted by their
        coordinates; every event is a complete (``ph: "X"``) slice one cycle
        wide.  Hops are drawn on the destination cell's track with the
        source recorded in ``args``.
        """
        cells = sorted({e.cell for e in self.events})
        tids = {cell: i + 1 for i, cell in enumerate(cells)}
        trace_events: list[dict] = [
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "systolic array"}},
        ]
        for cell, tid in tids.items():
            trace_events.append(
                {"ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                 "args": {"name": f"cell {cell}"}})
            trace_events.append(
                {"ph": "M", "pid": 0, "tid": tid, "name": "thread_sort_index",
                 "args": {"sort_index": tid}})
        base = min((e.cycle for e in self.events), default=0)
        for e in self.events:
            args: dict = {"key": e.key, "cycle": e.cycle}
            if e.src is not None:
                args["src"] = str(e.src)
            if e.stream is not None:
                args["stream"] = "::".join(e.stream)
            if e.name is not None:
                args["name"] = e.name
            label = e.name if e.kind == "fire" and e.name else e.kind
            trace_events.append({
                "ph": "X", "pid": 0, "tid": tids[e.cell],
                "ts": (e.cycle - base) * CYCLE_US, "dur": CYCLE_US,
                "cat": e.kind, "name": f"{label} {e.key}", "args": args})
        return {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": {"cycle_us": CYCLE_US}}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1, sort_keys=True)


def read_jsonl(path) -> list[MachineEvent]:
    """Load an event log written by :meth:`EventLog.write_jsonl`."""
    events: list[MachineEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(MachineEvent.from_dict(json.loads(line)))
    return events


def canonical_order(events: Iterable[MachineEvent]) -> list[MachineEvent]:
    """Engine-independent ordering: by cycle, then kind (hop, inject, fire,
    output, reclaim — the machine's phase order), then cell, then key."""
    rank = {kind: i for i, kind in enumerate(EVENT_KINDS)}
    return sorted(events, key=lambda e: (e.cycle, rank[e.kind], e.cell,
                                         e.key, e.src or ()))
