"""Typed, process-safe metrics: the aggregate-telemetry substrate.

The span tracer answers "where did *this* run spend its time"; sweeps and
the future synthesis service need the aggregate question answered too —
how many cache hits across a million jobs, what is the p95 of the
``native.cc`` stage, how hot is the int64 fallback path.  This module
provides the typed registry those questions are asked against:

* :class:`Counter` — a monotone event count.  Counters share storage with
  the tracer's historical flat ``counters`` dict, so every existing
  ``STATS.count(...)`` call site (cache hits, ``vector.int64_fallbacks``,
  the ``native.*`` family) is *already* publishing into the registry;
  typed handles are the blessed way to bump them from new code.
* :class:`Gauge` — a last-value measurement (sweep throughput, ETA).
* :class:`Histogram` — a distribution with **fixed buckets** (exact
  cumulative counts, Prometheus-exposable) plus a **deterministic
  reservoir** for percentile estimates.  Histograms are *mergeable*:
  :meth:`Histogram.merge_wire` is associative and commutative, so worker
  registries folded in any order — the ProcessPoolExecutor batch stats
  protocol of :mod:`repro.core.batch` — produce identical aggregates.
* :func:`render_prometheus` — the text exposition format over a registry,
  the direct hook for a future ``repro serve`` ``/metrics`` endpoint.

Determinism is load-bearing: the reservoir does **not** use ``random``.
Each observation gets a priority from an integer hash of (value bits,
local sequence number) and the reservoir keeps the ``capacity`` smallest
priorities.  "Keep the K smallest of a multiset" is associative under
union, which is what makes three workers' histograms merge to the same
reservoir regardless of merge order.

This module deliberately imports nothing from the rest of the engine so
every layer (tracer included) can depend on it.
"""

from __future__ import annotations

from bisect import bisect_right, insort

#: Default latency buckets, in seconds — spans from sub-millisecond pass
#: timings up to multi-minute sweep totals.  Upper bound is +inf
#: implicitly (the overflow bucket).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Reservoir capacity per histogram: enough for stable p95/p99 estimates,
#: small enough to ship across process boundaries per job.
RESERVOIR_SIZE = 512

_M64 = (1 << 64) - 1


def _priority(value: float, seq: int) -> int:
    """A deterministic 64-bit pseudo-random priority for one observation.

    splitmix64-style integer mixing over (value bits, sequence number):
    reproducible across processes and Python versions, no ``random``
    involved — identical runs produce identical reservoirs.
    """
    bits = hash(value) & _M64
    x = (bits * 0x9E3779B97F4A7C15 ^ (seq + 1) * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 29
    return x


def percentile(sorted_values, q: float):
    """The q-th percentile (0..100) of an ascending sequence, by linear
    interpolation; ``None`` on an empty sequence."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


class Counter:
    """A typed handle on one monotone counter of a registry.

    The value lives in the registry's shared ``counters`` dict (the same
    dict the tracer's flat view reads), so handles and historical
    ``STATS.count`` call sites observe each other.
    """

    __slots__ = ("name", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.name = name
        self._registry = registry

    def inc(self, delta: int = 1) -> None:
        self._registry.inc(self.name, delta)

    @property
    def value(self) -> int:
        return self._registry.counters.get(self.name, 0)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A typed handle on one last-value measurement of a registry."""

    __slots__ = ("name", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.name = name
        self._registry = registry

    def set(self, value: float) -> None:
        self._registry.gauges[self.name] = float(value)

    def inc(self, delta: float = 1.0) -> None:
        self._registry.gauges[self.name] = self.value + delta

    @property
    def value(self) -> float:
        return self._registry.gauges.get(self.name, 0.0)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket counts plus a deterministic percentile reservoir.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` boundary-
    exclusive style (``bisect_right``), with one extra overflow slot; the
    cumulative form required by the Prometheus exposition is derived on
    demand.  The reservoir keeps the ``capacity`` observations with the
    smallest deterministic priorities — an unbiased-enough hash sample
    whose *selection is a pure function of the observed multiset*, which
    makes :meth:`merge_wire` associative.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "capacity", "_samples", "_seq")

    def __init__(self, name: str,
                 buckets: "tuple[float, ...] | None" = None,
                 capacity: int = RESERVOIR_SIZE) -> None:
        self.name = name
        self.buckets: tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        self.bucket_counts: list[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self.capacity = capacity
        #: ascending list of (priority, value); trimmed to ``capacity``
        self._samples: list[tuple[int, float]] = []
        self._seq = 0

    # -- recording -----------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_right(self.buckets, value)] += 1
        self._seq += 1
        pri = _priority(value, self._seq)
        samples = self._samples
        if len(samples) < self.capacity:
            insort(samples, (pri, value))
        elif pri < samples[-1][0]:
            samples.pop()
            insort(samples, (pri, value))

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> "float | None":
        return self.total / self.count if self.count else None

    def sample_values(self) -> list[float]:
        """The reservoir's values, ascending."""
        return sorted(v for _, v in self._samples)

    def percentile(self, q: float) -> "float | None":
        return percentile(self.sample_values(), q)

    def summary(self) -> dict:
        """JSON-ready digest: count, mean, min/max, p50/p90/p95/p99."""
        out: dict = {"count": self.count}
        if self.count:
            values = self.sample_values()
            out.update({
                "mean": self.total / self.count,
                "min": self.min, "max": self.max,
                "p50": percentile(values, 50),
                "p90": percentile(values, 90),
                "p95": percentile(values, 95),
                "p99": percentile(values, 99),
            })
        return out

    # -- merge protocol ------------------------------------------------------

    def to_wire(self) -> dict:
        """The mergeable serialised form shipped across process
        boundaries (JSON-safe; see :meth:`merge_wire`)."""
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": [[p, v] for p, v in self._samples],
        }

    def merge_wire(self, wire: dict) -> None:
        """Fold another histogram's wire form into this one.

        Associative and commutative: bucket counts and totals add, min/max
        combine, and the merged reservoir is the ``capacity`` smallest
        priorities of the union — the same selection any merge order
        produces.
        """
        if tuple(wire["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge across differing "
                f"bucket boundaries")
        for i, c in enumerate(wire["bucket_counts"]):
            self.bucket_counts[i] += c
        self.count += wire["count"]
        self.total += wire["total"]
        if wire["min"] is not None:
            self.min = (wire["min"] if self.min is None
                        else min(self.min, wire["min"]))
        if wire["max"] is not None:
            self.max = (wire["max"] if self.max is None
                        else max(self.max, wire["max"]))
        union = self._samples + [(int(p), float(v))
                                 for p, v in wire["samples"]]
        union.sort()
        self._samples = union[:self.capacity]

    @classmethod
    def from_wire(cls, name: str, wire: dict) -> "Histogram":
        hist = cls(name, buckets=tuple(wire["buckets"]))
        hist.merge_wire(wire)
        return hist

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """The typed registry: counters, gauges and histograms by name.

    ``counters`` is a plain dict shared with the owning tracer's flat view
    (see :class:`repro.obs.tracer.Tracer`), so the registry sees every
    historical ``STATS.count`` call and the tracer's ``--stats`` report
    sees every typed :class:`Counter` bump.  ``_count_hook`` is how the
    tracer injects span-attribution: when set, typed increments route
    through ``Tracer.count`` so they are also charged to the active span.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._count_hook = None     # set by an adopting Tracer

    # -- typed handles -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return Counter(self, name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(self, name)

    def histogram(self, name: str,
                  buckets: "tuple[float, ...] | None" = None) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name, buckets=buckets)
        return hist

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        if self._count_hook is not None:
            self._count_hook(name, delta)
        else:
            self.counters[name] = self.counters.get(name, 0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: "tuple[float, ...] | None" = None) -> None:
        self.histogram(name, buckets=buckets).observe(value)

    def reset(self) -> None:
        """Clear all recorded data **in place** — consumers holding the
        ``counters`` dict (the tracer's flat view) keep their reference."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- reading / merge -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready digest, key-sorted: counters and gauges verbatim,
        histograms as :meth:`Histogram.summary` blocks."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].summary()
                           for k in sorted(self.histograms)
                           if self.histograms[k].count},
        }

    def to_wire(self, counters: bool = True) -> dict:
        """The mergeable serialised registry.

        ``counters=False`` omits counters — the batch stats protocol
        already ships counter deltas through its historical channel, and
        shipping them twice would double-count on merge.
        """
        wire: dict = {
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            # Empty histograms (a pre-registered handle never observed)
            # carry no information; keep them off the wire.
            "histograms": {k: self.histograms[k].to_wire()
                           for k in sorted(self.histograms)
                           if self.histograms[k].count},
        }
        if counters:
            wire["counters"] = {k: self.counters[k]
                                for k in sorted(self.counters)}
        return wire

    def merge_wire(self, wire: dict) -> None:
        """Fold a worker registry's wire form in (associative per metric:
        counters add, gauges last-write-win, histograms merge)."""
        for name, delta in wire.get("counters", {}).items():
            self.inc(name, delta)
        self.gauges.update(wire.get("gauges", {}))
        for name, hist_wire in wire.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = Histogram.from_wire(name, hist_wire)
            else:
                hist.merge_wire(hist_wire)

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, "
                f"histograms={len(self.histograms)})")


# -- Prometheus text exposition -----------------------------------------------

def _prom_name(name: str, suffix: str = "", prefix: str = "repro") -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}{suffix}"


def _prom_value(value: float) -> str:
    if value != value:                          # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry,
                      prefix: str = "repro") -> str:
    """The registry in the Prometheus text exposition format (v0.0.4).

    Counters gain the conventional ``_total`` suffix, histograms expose
    cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``, and
    names are sanitised (``cache.hits`` → ``repro_cache_hits_total``).
    This function is the metrics endpoint of a future ``repro serve`` —
    scrape-ready today against the process registry.
    """
    lines: list[str] = []
    for name in sorted(registry.counters):
        metric = _prom_name(name, "_total", prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {registry.counters[name]}")
    for name in sorted(registry.gauges):
        metric = _prom_name(name, "", prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(registry.gauges[name])}")
    for name in sorted(registry.histograms):
        hist = registry.histograms[name]
        metric = _prom_name(name, "", prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.bucket_counts):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_prom_value(bound)}"}} '
                         f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_prom_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
