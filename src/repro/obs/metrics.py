"""Persistent run metrics: every CLI run can leave a structured record.

A :class:`RunRecord` captures what a ``synthesize`` / ``sweep`` / ``trace``
invocation did — command, arguments, git revision, the tracer's flat
counters/timers *and* its span tree, machine statistics when a design was
executed — as one JSON file under the metrics directory
(``$REPRO_METRICS_DIR``; recording is off when the variable is unset and no
explicit directory is given).  Records accumulate across runs, so the
performance trajectory of the engine is inspectable long after the
individual runs:

* ``repro trace --from-record <file>`` replays a record (span tree,
  counters, machine stats) in the terminal;
* the benchmark harness keeps its own append-only ``BENCH_<name>.json``
  trajectory next to the repository root (see ``benchmarks/conftest.py``),
  built from the same primitives.

File naming is collision-free across concurrent processes
(timestamp + pid + sequence number) and writes are atomic, mirroring the
design cache's discipline.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.tracer import Span, render_spans

#: Environment variable naming the metrics directory.
METRICS_ENV_VAR = "REPRO_METRICS_DIR"

#: Bump on incompatible RunRecord layout changes.
RECORD_FORMAT_VERSION = 1

_sequence = 0


def metrics_dir(override: "str | os.PathLike | None" = None) -> Path | None:
    """The metrics directory, or ``None`` when recording is disabled."""
    if override is not None:
        return Path(override)
    env = os.environ.get(METRICS_ENV_VAR)
    return Path(env) if env else None


#: Memo for the subprocess-resolved revision: ``False`` = not resolved
#: yet, otherwise the cached ``str | None`` result.  Environment
#: overrides are deliberately *not* memoized (they are cheap and tests /
#: CI mutate them); only the ``git rev-parse`` subprocess is.
_git_sha_cache: "str | None | bool" = False


def _resolve_git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5, cwd=Path(__file__).resolve().parent)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def git_sha() -> str | None:
    """The current git revision, or ``None`` outside a checkout.

    ``REPRO_GIT_SHA`` (explicit override for CI / hermetic builds) wins,
    then ``GITHUB_SHA`` (set on runners even for shallow operations) —
    both keep record-writing subprocess-free.  Otherwise ``git rev-parse``
    runs **once per process** and the answer is memoized: a sweep that
    writes hundreds of RunRecords must not fork git per write.
    """
    env = os.environ.get("REPRO_GIT_SHA") or os.environ.get("GITHUB_SHA")
    if env:
        return env
    global _git_sha_cache
    if _git_sha_cache is False:
        _git_sha_cache = _resolve_git_sha()
    return _git_sha_cache


@dataclass
class RunRecord:
    """One recorded run of the engine."""

    command: str
    argv: list[str] = field(default_factory=list)
    started_at: str = ""                     # ISO-8601, UTC
    wall_time: float = 0.0
    git_sha: str | None = None
    stats: dict = field(default_factory=dict)     # flat counters/timers
    spans: list[dict] = field(default_factory=list)
    machine_stats: dict | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "format": RECORD_FORMAT_VERSION,
            "command": self.command,
            "argv": list(self.argv),
            "started_at": self.started_at,
            "wall_time": self.wall_time,
            "git_sha": self.git_sha,
            "stats": self.stats,
            "spans": self.spans,
            "machine_stats": self.machine_stats,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        if data.get("format") != RECORD_FORMAT_VERSION:
            raise ValueError(
                f"unsupported run-record format {data.get('format')!r} "
                f"(expected {RECORD_FORMAT_VERSION})")
        return cls(command=data["command"], argv=list(data.get("argv", ())),
                   started_at=data.get("started_at", ""),
                   wall_time=data.get("wall_time", 0.0),
                   git_sha=data.get("git_sha"),
                   stats=dict(data.get("stats", {})),
                   spans=list(data.get("spans", ())),
                   machine_stats=data.get("machine_stats"),
                   extra=dict(data.get("extra", {})))

    def render(self) -> str:
        """Terminal replay of the record (used by ``repro trace
        --from-record``)."""
        lines = [f"run record: {self.command} "
                 f"({self.started_at or 'unknown time'})"]
        if self.argv:
            lines.append(f"  argv: {' '.join(self.argv)}")
        if self.git_sha:
            lines.append(f"  git:  {self.git_sha}")
        lines.append(f"  wall: {self.wall_time * 1000:.1f} ms")
        for section in ("counters", "timers"):
            entries = self.stats.get(section, {})
            for name in sorted(entries):
                value = entries[name]
                shown = (f"{value * 1000:.1f} ms" if section == "timers"
                         else value)
                lines.append(f"  {name:<40} {shown}")
        if self.machine_stats:
            lines.append("machine:")
            for name in sorted(self.machine_stats):
                lines.append(f"  {name:<40} {self.machine_stats[name]}")
        if self.spans:
            lines.append("spans:")
            lines.append(render_spans(
                [Span.from_dict(s) for s in self.spans], indent="  "))
        return "\n".join(lines)


def write_run_record(record: RunRecord,
                     root: "str | os.PathLike | None" = None) -> Path | None:
    """Atomically persist ``record``; returns the path, or ``None`` when no
    metrics directory is configured."""
    global _sequence
    directory = metrics_dir(root)
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    _sequence += 1
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    name = f"run-{stamp}-{record.command}-{os.getpid()}-{_sequence}.json"
    path = directory / name
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record.to_dict(), fh, indent=1, sort_keys=True)
    os.replace(tmp, path)
    return path


def load_run_record(path: "str | os.PathLike") -> RunRecord:
    """Load a :class:`RunRecord` previously written as JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        return RunRecord.from_dict(json.load(fh))


def list_run_records(root: "str | os.PathLike | None" = None) -> list[Path]:
    """Record files in the metrics directory, oldest first."""
    directory = metrics_dir(root)
    if directory is None or not directory.is_dir():
        return []
    return sorted(directory.glob("run-*.json"))
