"""Observability layer: span tracing, machine event logs, run metrics.

Three cooperating pieces, all opt-in and all zero-cost on hot paths when
unused:

* :mod:`repro.obs.tracer` — the hierarchical span tracer behind the
  process-wide :data:`TRACER` (also visible as the historical
  ``repro.util.instrument.STATS``);
* :mod:`repro.obs.events` — the cycle-level machine event vocabulary with
  JSON-lines and Chrome ``trace_event`` (Perfetto) exporters;
* :mod:`repro.obs.metrics` — persistent :class:`RunRecord` files under
  ``$REPRO_METRICS_DIR`` capturing each CLI run's spans, counters and
  machine statistics.
"""

from repro.obs.events import (
    EVENT_KINDS,
    EventLog,
    EventSink,
    MachineEvent,
    canonical_order,
    read_jsonl,
)
from repro.obs.metrics import (
    METRICS_ENV_VAR,
    RunRecord,
    git_sha,
    list_run_records,
    load_run_record,
    metrics_dir,
    write_run_record,
)
from repro.obs.tracer import TRACER, Span, Tracer, render_spans

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "EventSink",
    "MachineEvent",
    "METRICS_ENV_VAR",
    "RunRecord",
    "Span",
    "TRACER",
    "Tracer",
    "canonical_order",
    "git_sha",
    "list_run_records",
    "load_run_record",
    "metrics_dir",
    "read_jsonl",
    "render_spans",
    "write_run_record",
]
