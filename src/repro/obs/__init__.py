"""Observability layer: spans, telemetry, events, progress, run metrics.

Five cooperating pieces, all opt-in and all zero-cost on hot paths when
unused:

* :mod:`repro.obs.tracer` — the hierarchical span tracer behind the
  process-wide :data:`TRACER` (also visible as the historical
  ``repro.util.instrument.STATS``), plus the profiling exports
  (:func:`collapsed_stacks` flamegraph format, Chrome trace);
* :mod:`repro.obs.telemetry` — the typed metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`, mergeable
  across sweep workers) behind the process-wide :data:`METRICS`, with the
  Prometheus text exposition (:func:`render_prometheus`);
* :mod:`repro.obs.events` — the cycle-level machine event vocabulary with
  JSON-lines and Chrome ``trace_event`` (Perfetto) exporters;
* :mod:`repro.obs.progress` — structured live sweep progress
  (:class:`ProgressEvent`, CLI rendering, JSONL heartbeat);
* :mod:`repro.obs.metrics` — persistent :class:`RunRecord` files under
  ``$REPRO_METRICS_DIR`` capturing each CLI run's spans, counters,
  telemetry and machine statistics.
"""

from repro.obs.events import (
    EVENT_KINDS,
    EventLog,
    EventSink,
    MachineEvent,
    canonical_order,
    read_jsonl,
)
from repro.obs.metrics import (
    METRICS_ENV_VAR,
    RunRecord,
    git_sha,
    list_run_records,
    load_run_record,
    metrics_dir,
    write_run_record,
)
from repro.obs.progress import (
    CLIProgress,
    JsonlHeartbeat,
    ProgressEvent,
    ProgressSink,
    SweepProgress,
    read_heartbeat,
)
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
    render_prometheus,
)
from repro.obs.tracer import (
    METRICS,
    TRACER,
    Span,
    Tracer,
    collapsed_stacks,
    render_spans,
    spans_to_chrome_trace,
)

__all__ = [
    "CLIProgress",
    "Counter",
    "EVENT_KINDS",
    "EventLog",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlHeartbeat",
    "MachineEvent",
    "METRICS",
    "METRICS_ENV_VAR",
    "MetricsRegistry",
    "ProgressEvent",
    "ProgressSink",
    "RunRecord",
    "Span",
    "SweepProgress",
    "TRACER",
    "Tracer",
    "canonical_order",
    "collapsed_stacks",
    "git_sha",
    "list_run_records",
    "load_run_record",
    "metrics_dir",
    "percentile",
    "read_heartbeat",
    "read_jsonl",
    "render_prometheus",
    "render_spans",
    "spans_to_chrome_trace",
    "write_run_record",
]
