"""Live sweep progress: structured events, CLI rendering, JSONL heartbeat.

A million-design sweep is only operable if its state is visible while it
runs.  :func:`repro.core.batch.run_sweep` drives a :class:`SweepProgress`
tracker which computes throughput and ETA and fans structured
:class:`ProgressEvent`\\ s out to any number of sinks:

* :class:`CLIProgress` — a single self-updating terminal line (plain
  line-per-update when the stream is not a TTY), throttled so a fast warm
  sweep does not drown in redraws;
* :class:`JsonlHeartbeat` — one JSON object per event appended to a file.
  Each line is written atomically-enough (single ``write`` of one line,
  file reopened per event) that a tail/monitor — or a post-mortem after an
  interrupted sweep — always sees well-formed JSON;
* anything implementing :class:`ProgressSink` (the future ``repro serve``
  maps these events straight onto server-sent events).

The tracker also publishes ``sweep.throughput`` / ``sweep.eta_s`` /
``sweep.jobs_done`` gauges into the process metrics registry, so progress
is scrapeable through the Prometheus exposition as well.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence


@dataclass(frozen=True)
class ProgressEvent:
    """One structured snapshot of a running sweep.

    ``kind`` is ``"start"`` (totals known, nothing run), ``"job"`` (one
    job finished — fresh, failed or cache-hit) or ``"end"`` (sweep
    complete).  Counts are cumulative; ``eta_s`` is ``None`` until at
    least one job has finished.
    """

    kind: str
    total: int
    done: int = 0
    failed: int = 0
    cache_hits: int = 0
    resumed: int = 0                 # jobs restored from a sweep manifest
    elapsed: float = 0.0
    throughput: float = 0.0          # finished jobs per second
    eta_s: "float | None" = None
    label: str = ""                  # the job this event reports, if any

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "total": self.total,
                     "done": self.done, "failed": self.failed,
                     "cache_hits": self.cache_hits,
                     "elapsed_s": round(self.elapsed, 6),
                     "throughput": round(self.throughput, 3)}
        if self.resumed:
            out["resumed"] = self.resumed
        if self.eta_s is not None:
            out["eta_s"] = round(self.eta_s, 3)
        if self.label:
            out["label"] = self.label
        return out

    def render(self) -> str:
        """The one-line human form (what :class:`CLIProgress` shows)."""
        bits = [f"sweep {self.done}/{self.total}"]
        if self.failed:
            bits.append(f"{self.failed} failed")
        if self.cache_hits:
            bits.append(f"{self.cache_hits} cached")
        if self.resumed:
            bits.append(f"{self.resumed} resumed")
        bits.append(f"{self.throughput:.1f} jobs/s")
        if self.eta_s is not None and self.kind != "end":
            bits.append(f"eta {self.eta_s:.1f}s")
        if self.kind == "end":
            bits.append(f"done in {self.elapsed:.2f}s")
        return "  ".join(bits)


class ProgressSink(Protocol):
    """Anything that can receive sweep progress events."""

    def emit(self, event: ProgressEvent) -> None:
        ...


class CLIProgress:
    """Render progress as one self-updating line on ``stream``.

    On a TTY the line redraws in place (carriage return); otherwise each
    update is a plain line.  ``min_interval`` throttles redraws — the
    first, last and every sufficiently-spaced event get through.
    """

    def __init__(self, stream, min_interval: float = 0.1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stream = stream
        self.min_interval = min_interval
        self._clock = clock
        self._last = -1e9
        self._tty = bool(getattr(stream, "isatty", lambda: False)())
        self._dirty = False

    def emit(self, event: ProgressEvent) -> None:
        now = self._clock()
        final = event.kind == "end"
        if not final and now - self._last < self.min_interval:
            return
        self._last = now
        line = event.render()
        if self._tty:
            self.stream.write("\r\x1b[2K" + line)
            self._dirty = True
            if final:
                self.stream.write("\n")
                self._dirty = False
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


class JsonlHeartbeat:
    """Append every progress event as one JSON line to ``path``.

    The file is opened per event — slower than keeping a handle, but a
    sweep that dies between events leaves a complete, parseable heartbeat
    behind, which is the whole point of a heartbeat.
    """

    def __init__(self, path) -> None:
        self.path = path

    def emit(self, event: ProgressEvent) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")


def read_heartbeat(path) -> list[ProgressEvent]:
    """Load the events of a heartbeat file written by
    :class:`JsonlHeartbeat`."""
    events: list[ProgressEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            events.append(ProgressEvent(
                kind=data["kind"], total=data["total"],
                done=data.get("done", 0), failed=data.get("failed", 0),
                cache_hits=data.get("cache_hits", 0),
                resumed=data.get("resumed", 0),
                elapsed=data.get("elapsed_s", 0.0),
                throughput=data.get("throughput", 0.0),
                eta_s=data.get("eta_s"), label=data.get("label", "")))
    return events


@dataclass
class SweepProgress:
    """The tracker :func:`~repro.core.batch.run_sweep` drives.

    Computes cumulative counts, throughput and ETA with an injectable
    clock, fans events to every sink (a sink that raises is dropped, never
    killing the sweep), and mirrors the headline numbers into metrics
    gauges when a registry is attached.
    """

    sinks: Sequence[ProgressSink] = ()
    clock: Callable[[], float] = time.perf_counter
    registry: "object | None" = None       # a MetricsRegistry, if any
    total: int = 0
    done: int = 0
    failed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    _t0: float = 0.0
    _dead: list = field(default_factory=list)

    @classmethod
    def create(cls, sinks: "ProgressSink | Iterable[ProgressSink] | None",
               registry=None) -> "SweepProgress | None":
        """Normalise run_sweep's ``progress=`` argument (single sink,
        iterable of sinks, or None)."""
        if sinks is None:
            return None
        if hasattr(sinks, "emit"):
            sinks = (sinks,)
        sinks = tuple(sinks)
        return cls(sinks=sinks, registry=registry) if sinks else None

    def start(self, total: int) -> None:
        self.total = total
        self._t0 = self.clock()
        self._emit("start", "")

    def job_done(self, *, ok: bool, cache_hit: bool, label: str,
                 resumed: bool = False) -> None:
        """One job finished — executed, cache-hit, or (``resumed=True``)
        restored from a sweep manifest without re-running anything."""
        self.done += 1
        if not ok:
            self.failed += 1
        if cache_hit:
            self.cache_hits += 1
        if resumed:
            self.resumed += 1
        self._emit("job", label)

    def finish(self) -> None:
        self._emit("end", "")

    def _emit(self, kind: str, label: str) -> None:
        elapsed = max(self.clock() - self._t0, 0.0)
        throughput = self.done / elapsed if elapsed > 0 else 0.0
        eta = None
        if self.done and throughput > 0:
            eta = max(self.total - self.done, 0) / throughput
        event = ProgressEvent(kind=kind, total=self.total, done=self.done,
                              failed=self.failed,
                              cache_hits=self.cache_hits,
                              resumed=self.resumed, elapsed=elapsed,
                              throughput=throughput, eta_s=eta, label=label)
        if self.registry is not None:
            self.registry.set_gauge("sweep.jobs_done", self.done)
            self.registry.set_gauge("sweep.jobs_failed", self.failed)
            self.registry.set_gauge("sweep.throughput", throughput)
            self.registry.set_gauge("sweep.eta_s",
                                    eta if eta is not None else 0.0)
        for sink in self.sinks:
            if sink in self._dead:
                continue
            try:
                sink.emit(event)
            except Exception:
                # A broken sink (full disk, closed stream) must not kill
                # the sweep; drop it and keep the others flowing.
                self._dead.append(sink)
