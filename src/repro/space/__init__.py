"""Processor allocation: diophantine machinery (Smith/Hermite forms), link
decomposition of displacements, space-map enumeration (conditions (2)/(3))
and joint multi-module allocation under global adjacency constraints."""

from repro.space.allocation import (
    SpaceMap,
    cells_used,
    conflict_free,
    enumerate_space_maps,
    flows_realisable,
    transformation_nonsingular,
)
from repro.space.diophantine import LinkDecomposer, solve_integer_system
from repro.space.multimodule import (
    ModuleSpaceProblem,
    MultiSpaceSolution,
    NoSpaceMapExists,
    adjacency_ok,
    solve_multimodule_space,
)
from repro.space.smith import (
    det,
    hermite_normal_form,
    is_unimodular,
    smith_normal_form,
)

__all__ = [
    "LinkDecomposer",
    "ModuleSpaceProblem",
    "MultiSpaceSolution",
    "NoSpaceMapExists",
    "SpaceMap",
    "adjacency_ok",
    "cells_used",
    "conflict_free",
    "det",
    "enumerate_space_maps",
    "flows_realisable",
    "hermite_normal_form",
    "is_unimodular",
    "smith_normal_form",
    "solve_integer_system",
    "solve_multimodule_space",
    "transformation_nonsingular",
]
