"""Hermite and Smith normal forms over the integers.

The space-mapping condition (3) ``S D = Δ K`` is a system of linear
*diophantine* equations; their solvability theory rests on these normal
forms.  Both are computed with exact integer arithmetic (Python ints — no
overflow) and return the unimodular transforms, so callers can parameterise
full solution sets and tests can verify ``U A V = smith`` and
``|det U| = |det V| = 1``.
"""

from __future__ import annotations

import numpy as np


def _as_int_matrix(A) -> np.ndarray:
    M = np.array(A, dtype=object)
    if M.ndim != 2:
        raise ValueError("expected a matrix")
    out = np.empty(M.shape, dtype=object)
    for i in range(M.shape[0]):
        for j in range(M.shape[1]):
            v = M[i, j]
            iv = int(v)
            if iv != v:
                raise ValueError(f"non-integer entry {v!r}")
            out[i, j] = iv
    return out


def _identity(n: int) -> np.ndarray:
    I = np.zeros((n, n), dtype=object)
    for i in range(n):
        I[i, i] = 1
    return I


def det(A) -> int:
    """Exact integer determinant (fraction-free Bareiss elimination)."""
    M = _as_int_matrix(A)
    n, m = M.shape
    if n != m:
        raise ValueError("determinant of a non-square matrix")
    if n == 0:
        return 1
    M = M.copy()
    sign = 1
    prev = 1
    for k in range(n - 1):
        if M[k, k] == 0:
            pivot = next((r for r in range(k + 1, n) if M[r, k] != 0), None)
            if pivot is None:
                return 0
            M[[k, pivot]] = M[[pivot, k]]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                M[i, j] = (M[i, j] * M[k, k] - M[i, k] * M[k, j]) // prev
        prev = M[k, k]
    return sign * int(M[n - 1, n - 1])


def hermite_normal_form(A) -> tuple[np.ndarray, np.ndarray]:
    """Column-style Hermite normal form: returns ``(H, V)`` with
    ``A V = H``, ``V`` unimodular, ``H`` lower-triangular with non-negative
    entries and each row's pivot strictly dominating the entries to its right
    (here: to its left, column style).
    """
    A = _as_int_matrix(A)
    m, n = A.shape
    H = A.copy()
    V = _identity(n)

    row = 0
    col = 0
    while row < m and col < n:
        # Find a non-zero entry in this row at/after `col`.
        pivots = [j for j in range(col, n) if H[row, j] != 0]
        if not pivots:
            row += 1
            continue
        # Euclidean reduction across columns until one non-zero remains.
        while len(pivots) > 1:
            pivots.sort(key=lambda j: abs(H[row, j]))
            j0 = pivots[0]
            for j in pivots[1:]:
                q = H[row, j] // H[row, j0]
                H[:, j] -= q * H[:, j0]
                V[:, j] -= q * V[:, j0]
            pivots = [j for j in range(col, n) if H[row, j] != 0]
        j0 = pivots[0]
        if j0 != col:
            H[:, [col, j0]] = H[:, [j0, col]]
            V[:, [col, j0]] = V[:, [j0, col]]
        if H[row, col] < 0:
            H[:, col] = -H[:, col]
            V[:, col] = -V[:, col]
        # Reduce earlier columns modulo the pivot.
        for j in range(col):
            q = H[row, j] // H[row, col]
            H[:, j] -= q * H[:, col]
            V[:, j] -= q * V[:, col]
        row += 1
        col += 1
    return H, V


def smith_normal_form(A) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smith normal form: returns ``(U, D, V)`` with ``U A V = D`` diagonal,
    ``U``, ``V`` unimodular and each diagonal entry dividing the next."""
    A = _as_int_matrix(A)
    m, n = A.shape
    D = A.copy()
    U = _identity(m)
    V = _identity(n)

    def min_nonzero(t: int):
        best = None
        for i in range(t, m):
            for j in range(t, n):
                if D[i, j] != 0 and (best is None
                                     or abs(D[i, j]) < abs(D[best[0], best[1]])):
                    best = (i, j)
        return best

    t = 0
    while t < min(m, n):
        pos = min_nonzero(t)
        if pos is None:
            break
        i0, j0 = pos
        D[[t, i0]] = D[[i0, t]]
        U[[t, i0]] = U[[i0, t]]
        D[:, [t, j0]] = D[:, [j0, t]]
        V[:, [t, j0]] = V[:, [j0, t]]
        # Eliminate the rest of row t and column t.
        dirty = True
        while dirty:
            dirty = False
            for i in range(t + 1, m):
                if D[i, t] != 0:
                    q = D[i, t] // D[t, t]
                    D[i, :] -= q * D[t, :]
                    U[i, :] -= q * U[t, :]
                    if D[i, t] != 0:
                        D[[t, i]] = D[[i, t]]
                        U[[t, i]] = U[[i, t]]
                        dirty = True
            for j in range(t + 1, n):
                if D[t, j] != 0:
                    q = D[t, j] // D[t, t]
                    D[:, j] -= q * D[:, t]
                    V[:, j] -= q * V[:, t]
                    if D[t, j] != 0:
                        D[:, [t, j]] = D[:, [j, t]]
                        V[:, [t, j]] = V[:, [j, t]]
                        dirty = True
        if D[t, t] < 0:
            D[t, :] = -D[t, :]
            U[t, :] = -U[t, :]
        t += 1

    # Enforce the divisibility chain d_k | d_{k+1}.
    k = 0
    while k < min(m, n) - 1:
        a, b = int(D[k, k]), int(D[k + 1, k + 1])
        if a != 0 and b % a != 0:
            # Standard trick: add column k+1 to column k, then re-reduce.
            D[:, k] += D[:, k + 1]
            V[:, k] += V[:, k + 1]
            U2, D2, V2 = smith_normal_form(D)
            return U2 @ U, D2, V @ V2
        k += 1
    return U, D, V


def int_rank(A) -> int:
    """Exact rank of an integer matrix (fraction-free elimination)."""
    M = _as_int_matrix(A).copy()
    m, n = M.shape
    rank = 0
    row = 0
    for col in range(n):
        pivot = next((r for r in range(row, m) if M[r, col] != 0), None)
        if pivot is None:
            continue
        M[[row, pivot]] = M[[pivot, row]]
        for r in range(row + 1, m):
            if M[r, col] != 0:
                # Fraction-free row elimination.
                M[r, :] = M[r, :] * M[row, col] - M[row, :] * M[r, col]
        rank += 1
        row += 1
        if row == m:
            break
    return rank


def is_unimodular(M) -> bool:
    """True iff ``M`` is square, integral, with determinant ±1."""
    M = _as_int_matrix(M)
    if M.shape[0] != M.shape[1]:
        return False
    return abs(det(M)) == 1
