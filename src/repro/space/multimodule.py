"""Joint space mapping of a multi-module system (Section V.B).

"Again, we look for separate solutions to the different modules in the
algorithm subject to global constraints.  ...  if a global dependence
involves two variables belonging to different modules which are computed at
times t and t' with t - t' = d then the distance of the cells where the two
variables will be mapped cannot be more than d."

The solver backtracks over modules; per module the locally feasible space
maps come from :func:`repro.space.allocation.enumerate_space_maps`, and each
global constraint is checked as soon as both endpoints are mapped.  The
objective is the total number of distinct cells — the paper's Section VI
motivation for the new design is exactly processor count.

The backtracking revisits the same (constraint, dst map, src map) triples
thousands of times as the other modules' assignments churn, so adjacency
verdicts are memoized per candidate-index pair, endpoint times/cells are
precomputed once per (constraint, candidate), and each candidate's occupied
cell set and tie-break key are frozen up front — the hot loop is dictionary
lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.schedule.constraints import GlobalConstraint
from repro.schedule.linear import LinearSchedule
from repro.space.allocation import (
    SpaceMap,
    cells_used,
    entry_preference,
    enumerate_space_maps,
)
from repro.space.diophantine import LinkDecomposer
from repro.util.errors import SynthesisError
from repro.util.instrument import STATS


class NoSpaceMapExists(SynthesisError):
    """No joint allocation satisfies the local and global constraints."""


@dataclass
class ModuleSpaceProblem:
    """Allocation view of one module."""

    name: str
    dims: tuple[str, ...]
    deps: DependenceMatrix | None
    points: np.ndarray
    schedule: LinearSchedule
    bound: int = 1
    offsets: Sequence[int] = (0,)

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.int64)


@dataclass(frozen=True)
class MultiSpaceSolution:
    maps: dict[str, SpaceMap]
    total_cells: int
    candidates_examined: int


def _displacements_ok(disp: np.ndarray, gaps: Sequence[int],
                      decomposer: LinkDecomposer) -> bool:
    """Constraint (10) over enumerated instances: every displacement must be
    link-reachable within its time gap.  Reachability is monotone in the
    budget, so only the *minimum* gap per distinct displacement matters."""
    tightest: dict[tuple[int, ...], int] = {}
    for row, gap in zip(disp.tolist(), gaps):
        key = tuple(row)
        prev = tightest.get(key)
        if prev is None or gap < prev:
            tightest[key] = gap
    for displacement, budget in tightest.items():
        if not decomposer.reachable_within(displacement, budget):
            return False
    return True


def adjacency_ok(gc: GlobalConstraint,
                 dst_sched: LinearSchedule, src_sched: LinearSchedule,
                 dst_map: SpaceMap, src_map: SpaceMap,
                 decomposer: LinkDecomposer) -> bool:
    """Check constraint (10) for every enumerated instance of a link."""
    if gc.instances == 0:
        return True
    dst_t = dst_sched.times(gc.dst_points)
    src_t = src_sched.times(gc.src_points)
    gaps = dst_t - src_t
    disp = dst_map.cells(gc.dst_points) - src_map.cells(gc.src_points)
    return _displacements_ok(disp, gaps.tolist(), decomposer)


def solve_multimodule_space(problems: Sequence[ModuleSpaceProblem],
                            constraints: Sequence[GlobalConstraint],
                            decomposer: LinkDecomposer,
                            label_dim: int) -> MultiSpaceSolution:
    """Find the joint allocation minimising total distinct cells.

    Deterministic: candidates enumerate in a fixed order and ties break on
    the lexicographically smallest concatenated matrices.
    """
    order = list(problems)
    by_name = {p.name: p for p in order}
    position = {p.name: idx for idx, p in enumerate(order)}
    check_at: dict[int, list[int]] = {}
    for gi, gc in enumerate(constraints):
        if gc.dst_module not in by_name or gc.src_module not in by_name:
            raise KeyError(f"constraint {gc.name} references unknown module")
        at = max(position[gc.dst_module], position[gc.src_module])
        check_at.setdefault(at, []).append(gi)

    candidate_lists: dict[str, list[SpaceMap]] = {}
    for p in order:
        cands = list(enumerate_space_maps(
            p.dims, label_dim, p.deps, p.schedule, decomposer, p.points,
            bound=p.bound, offsets=p.offsets))
        if not cands:
            raise NoSpaceMapExists(
                f"module {p.name}: no locally feasible space map "
                f"(bound={p.bound}, offsets={tuple(p.offsets)})",
                module=p.name, bounds=(p.bound, tuple(p.offsets)))
        candidate_lists[p.name] = cands

    # -- hoisted per-candidate data ------------------------------------------
    # Occupied cells and tie-break key fragment of every candidate map.
    cand_cells: dict[str, list[frozenset]] = {}
    cand_key: dict[str, list[tuple]] = {}
    for p in order:
        cells_list = []
        key_list = []
        for cand in candidate_lists[p.name]:
            cells_list.append(frozenset(cells_used(cand, p.points)))
            key_list.append(tuple(
                entry_preference(entry)
                for row, off in zip(cand.matrix, cand.offset)
                for entry in row + (off,)))
        cand_cells[p.name] = cells_list
        cand_key[p.name] = key_list

    # Per-constraint instance gaps (schedules are fixed for the whole solve)
    # and per-(constraint, candidate) endpoint cells.
    gc_gaps: list[list[int]] = []
    gc_dst_cells: list[list[np.ndarray]] = []
    gc_src_cells: list[list[np.ndarray]] = []
    for gc in constraints:
        dst_p = by_name[gc.dst_module]
        src_p = by_name[gc.src_module]
        gaps = (dst_p.schedule.times(gc.dst_points)
                - src_p.schedule.times(gc.src_points))
        gc_gaps.append(gaps.tolist())
        gc_dst_cells.append([cand.cells(gc.dst_points)
                             for cand in candidate_lists[gc.dst_module]])
        gc_src_cells.append([cand.cells(gc.src_points)
                             for cand in candidate_lists[gc.src_module]])

    adjacency_cache: dict[tuple[int, int, int], bool] = {}

    def adjacency(gi: int, dst_ci: int, src_ci: int) -> bool:
        if constraints[gi].instances == 0:
            return True
        key = (gi, dst_ci, src_ci)
        verdict = adjacency_cache.get(key)
        if verdict is None:
            disp = gc_dst_cells[gi][dst_ci] - gc_src_cells[gi][src_ci]
            verdict = _displacements_ok(disp, gc_gaps[gi], decomposer)
            adjacency_cache[key] = verdict
        else:
            STATS.count("space.adjacency_cache_hits")
        return verdict

    best_key: tuple | None = None
    best_assignment: dict[str, int] | None = None
    examined = 0
    assignment: dict[str, int] = {}    # module name -> candidate index

    def recurse(idx: int) -> None:
        nonlocal best_key, best_assignment, examined
        if idx == len(order):
            examined += 1
            all_cells: set = set()
            for p in order:
                all_cells |= cand_cells[p.name][assignment[p.name]]
            flat = tuple(
                entry for p in order
                for entry in cand_key[p.name][assignment[p.name]])
            key = (len(all_cells), flat)
            if best_key is None or key < best_key:
                best_key = key
                best_assignment = dict(assignment)
            return
        prob = order[idx]
        checks = check_at.get(idx, [])
        for ci in range(len(candidate_lists[prob.name])):
            assignment[prob.name] = ci
            ok = True
            for gi in checks:
                gc = constraints[gi]
                if not adjacency(gi, assignment[gc.dst_module],
                                 assignment[gc.src_module]):
                    ok = False
                    break
            if ok:
                recurse(idx + 1)
        assignment.pop(prob.name, None)

    recurse(0)
    STATS.count("space.assignments_examined", examined)
    if best_assignment is None:
        raise NoSpaceMapExists(
            "no joint space mapping satisfies the global adjacency constraints")
    maps = {name: candidate_lists[name][ci]
            for name, ci in best_assignment.items()}
    return MultiSpaceSolution(maps, best_key[0], examined)
