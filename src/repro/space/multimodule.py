"""Joint space mapping of a multi-module system (Section V.B).

"Again, we look for separate solutions to the different modules in the
algorithm subject to global constraints.  ...  if a global dependence
involves two variables belonging to different modules which are computed at
times t and t' with t - t' = d then the distance of the cells where the two
variables will be mapped cannot be more than d."

The solver backtracks over modules; per module the locally feasible space
maps come from :func:`repro.space.allocation.enumerate_space_maps`, and each
global constraint is checked (vectorised, with memoised link-distance
queries) as soon as both endpoints are mapped.  The objective is the total
number of distinct cells — the paper's Section VI motivation for the new
design is exactly processor count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.schedule.constraints import GlobalConstraint
from repro.schedule.linear import LinearSchedule
from repro.space.allocation import (
    SpaceMap,
    cells_used,
    entry_preference,
    enumerate_space_maps,
)
from repro.space.diophantine import LinkDecomposer


class NoSpaceMapExists(Exception):
    """No joint allocation satisfies the local and global constraints."""


@dataclass
class ModuleSpaceProblem:
    """Allocation view of one module."""

    name: str
    dims: tuple[str, ...]
    deps: DependenceMatrix | None
    points: np.ndarray
    schedule: LinearSchedule
    bound: int = 1
    offsets: Sequence[int] = (0,)

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.int64)


@dataclass(frozen=True)
class MultiSpaceSolution:
    maps: dict[str, SpaceMap]
    total_cells: int
    candidates_examined: int


def adjacency_ok(gc: GlobalConstraint,
                 dst_sched: LinearSchedule, src_sched: LinearSchedule,
                 dst_map: SpaceMap, src_map: SpaceMap,
                 decomposer: LinkDecomposer) -> bool:
    """Check constraint (10) for every enumerated instance of a link."""
    if gc.instances == 0:
        return True
    dst_t = dst_sched.times(gc.dst_points)
    src_t = src_sched.times(gc.src_points)
    gaps = dst_t - src_t
    dst_c = dst_map.cells(gc.dst_points)
    src_c = src_map.cells(gc.src_points)
    disp = dst_c - src_c
    # Deduplicate (displacement, gap) pairs before the BFS distance queries.
    stamped = np.column_stack([disp, gaps])
    for row in np.unique(stamped, axis=0):
        displacement = tuple(int(v) for v in row[:-1])
        budget = int(row[-1])
        if not decomposer.reachable_within(displacement, budget):
            return False
    return True


def solve_multimodule_space(problems: Sequence[ModuleSpaceProblem],
                            constraints: Sequence[GlobalConstraint],
                            decomposer: LinkDecomposer,
                            label_dim: int) -> MultiSpaceSolution:
    """Find the joint allocation minimising total distinct cells.

    Deterministic: candidates enumerate in a fixed order and ties break on
    the lexicographically smallest concatenated matrices.
    """
    order = list(problems)
    by_name = {p.name: p for p in order}
    position = {p.name: idx for idx, p in enumerate(order)}
    check_at: dict[int, list[GlobalConstraint]] = {}
    for gc in constraints:
        if gc.dst_module not in by_name or gc.src_module not in by_name:
            raise KeyError(f"constraint {gc.name} references unknown module")
        at = max(position[gc.dst_module], position[gc.src_module])
        check_at.setdefault(at, []).append(gc)

    candidate_lists: dict[str, list[SpaceMap]] = {}
    for p in order:
        cands = list(enumerate_space_maps(
            p.dims, label_dim, p.deps, p.schedule, decomposer, p.points,
            bound=p.bound, offsets=p.offsets))
        if not cands:
            raise NoSpaceMapExists(
                f"module {p.name}: no locally feasible space map "
                f"(bound={p.bound}, offsets={tuple(p.offsets)})")
        candidate_lists[p.name] = cands

    best_key: tuple | None = None
    best_assignment: dict[str, SpaceMap] | None = None
    examined = 0
    assignment: dict[str, SpaceMap] = {}

    def flat_key(assigned: Mapping[str, SpaceMap]) -> tuple:
        return tuple(
            entry_preference(entry)
            for p in order
            for row, off in zip(assigned[p.name].matrix,
                                assigned[p.name].offset)
            for entry in row + (off,))

    def recurse(idx: int) -> None:
        nonlocal best_key, best_assignment, examined
        if idx == len(order):
            examined += 1
            all_cells: set[tuple[int, ...]] = set()
            for p in order:
                all_cells |= cells_used(assignment[p.name], p.points)
            key = (len(all_cells), flat_key(assignment))
            if best_key is None or key < best_key:
                best_key = key
                best_assignment = dict(assignment)
            return
        prob = order[idx]
        for cand in candidate_lists[prob.name]:
            assignment[prob.name] = cand
            ok = True
            for gc in check_at.get(idx, []):
                dst_p = by_name[gc.dst_module]
                src_p = by_name[gc.src_module]
                if not adjacency_ok(gc, dst_p.schedule, src_p.schedule,
                                    assignment[gc.dst_module],
                                    assignment[gc.src_module], decomposer):
                    ok = False
                    break
            if ok:
                recurse(idx + 1)
        assignment.pop(prob.name, None)

    recurse(0)
    if best_assignment is None:
        raise NoSpaceMapExists(
            "no joint space mapping satisfies the global adjacency constraints")
    return MultiSpaceSolution(best_assignment, best_key[0], examined)
