"""Space maps (processor allocation functions) and their enumeration.

A :class:`SpaceMap` is the paper's ``S : I^n -> L^{n-1}``, affine with integer
coefficients (a translation offset is allowed — the new design of Section VI
maps the combine statement to cell ``(i+1, i)``).

Feasibility of a candidate ``S`` w.r.t. a schedule ``T`` and interconnection
``Δ`` (conditions (2) and (3)):

* **flow realisability** — for every dependence ``d``, the displacement
  ``S d`` must be coverable by at most ``T(d)`` links of ``Δ`` (``K`` column
  with non-negative entries; idle cycles absorb the slack);
* **conflict-freedom** — no two computations of the module may collide in
  (time, cell); with ``[T; S]`` square and non-singular this holds globally,
  otherwise we verify pointwise over the enumerated domain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.deps.vectors import DependenceMatrix
from repro.schedule.linear import LinearSchedule
from repro.space.diophantine import LinkDecomposer
from repro.space.smith import det, int_rank


@dataclass(frozen=True)
class SpaceMap:
    """``S(x) = matrix @ x + offset`` mapping index points to cell labels."""

    dims: tuple[str, ...]
    matrix: tuple[tuple[int, ...], ...]
    offset: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        matrix = tuple(tuple(int(v) for v in row) for row in self.matrix)
        object.__setattr__(self, "matrix", matrix)
        if not matrix:
            raise ValueError("space map needs at least one output coordinate")
        widths = {len(row) for row in matrix}
        if widths != {len(self.dims)}:
            raise ValueError("matrix row width must equal #dims")
        offset = tuple(int(v) for v in self.offset) if self.offset \
            else tuple([0] * len(matrix))
        if len(offset) != len(matrix):
            raise ValueError("offset length must equal #rows")
        object.__setattr__(self, "offset", offset)

    @property
    def label_dim(self) -> int:
        return len(self.matrix)

    def cell(self, point: Sequence[int] | Mapping[str, int]) -> tuple[int, ...]:
        if isinstance(point, Mapping):
            values = [int(point[d]) for d in self.dims]
        else:
            values = [int(v) for v in point]
        return tuple(
            sum(c * v for c, v in zip(row, values)) + off
            for row, off in zip(self.matrix, self.offset))

    def cells(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.int64)
        M = np.array(self.matrix, dtype=np.int64)
        return pts @ M.T + np.array(self.offset, dtype=np.int64)

    def of_vector(self, d: Sequence[int]) -> tuple[int, ...]:
        """Spatial displacement ``S d`` of a dependence vector (offset-free)."""
        return tuple(sum(c * int(v) for c, v in zip(row, d))
                     for row in self.matrix)

    def __repr__(self) -> str:
        rows = "; ".join(
            " ".join(str(v) for v in row) + (f" +{off}" if off else "")
            for row, off in zip(self.matrix, self.offset))
        return f"S{self.dims}=[{rows}]"


def transformation_nonsingular(schedule: LinearSchedule,
                               space: SpaceMap) -> bool:
    """Whether ``Π = [T; S]`` is square and non-singular — the paper's
    sufficient condition for conflict-freedom (2)."""
    n = len(schedule.dims)
    if space.label_dim + 1 != n:
        return False
    Pi = [list(schedule.coeffs)] + [list(row) for row in space.matrix]
    return det(Pi) != 0


def transformation_full_rank(schedule: LinearSchedule,
                             space: SpaceMap) -> bool:
    """Whether ``Π = [T; S]`` has full *column* rank — the generalisation of
    the paper's non-singularity requirement to non-square transformations
    (it makes ``Π`` injective on all of ``Z^n``, i.e. conflict-free for every
    problem size, not just the enumerated one)."""
    Pi = [list(schedule.coeffs)] + [list(row) for row in space.matrix]
    return int_rank(Pi) == len(schedule.dims)


def entry_preference(value: int) -> tuple[int, int]:
    """Deterministic ordering of matrix entries: 0 < 1 < -1 < 2 < -2 < ...
    (prefer small magnitudes, and non-negative within a magnitude) — this is
    the "least integer values" convention the paper uses when several optima
    exist."""
    return (abs(value), 0 if value >= 0 else 1)


def conflict_free(schedule: LinearSchedule, space: SpaceMap,
                  points: np.ndarray) -> bool:
    """Exact pointwise check of condition (2) over the enumerated domain:
    no two points share both time and cell."""
    pts = np.asarray(points, dtype=np.int64)
    if pts.shape[0] <= 1:
        return True
    times = schedule.times(pts)
    cells = space.cells(pts)
    stamped = np.column_stack([times, cells])
    # One lexsort + adjacent-row comparison: a collision is two equal
    # consecutive rows in sorted order (cheaper than np.unique, which also
    # materialises the deduplicated array).
    order = np.lexsort(stamped.T[::-1])
    ranked = stamped[order]
    return not (ranked[1:] == ranked[:-1]).all(axis=1).any()


def flows_realisable(deps: DependenceMatrix, schedule: LinearSchedule,
                     space: SpaceMap, decomposer: LinkDecomposer) -> bool:
    """Condition (3) with the paper's locality reading: every dependence's
    displacement must be coverable within its time slack.

    Slacks ``T d`` and displacements ``S D`` are computed for all dependence
    columns in two matmuls; only the (cached) per-pair reachability query
    remains scalar."""
    D = deps.matrix()                                    # dim x k
    slacks = np.array(schedule.coeffs, dtype=np.int64) @ D
    disps = np.array(space.matrix, dtype=np.int64) @ D   # label_dim x k
    return all(
        decomposer.reachable_within(tuple(int(c) for c in disps[:, j]),
                                    int(slacks[j]))
        for j in range(D.shape[1]))


def enumerate_space_maps(dims: Sequence[str], label_dim: int,
                         deps: DependenceMatrix | None,
                         schedule: LinearSchedule,
                         decomposer: LinkDecomposer,
                         points: np.ndarray,
                         bound: int = 1,
                         offsets: Sequence[int] = (0,),
                         require_conflict_free: bool = True,
                         require_full_rank: bool = True
                         ) -> Iterator[SpaceMap]:
    """All feasible space maps with entries in ``[-bound, bound]`` (and
    offsets drawn from ``offsets``), ordered by the paper's "least integer
    values" preference (:func:`entry_preference`, row-major).

    Candidates must pass flow realisability (when local deps exist), full
    column rank of ``[T; S]`` (conflict-freedom for every problem size) and —
    if requested — exact conflict-freedom over ``points``.
    """
    dims = tuple(dims)
    entry_order = sorted(range(-bound, bound + 1), key=entry_preference)
    rows = list(itertools.product(entry_order, repeat=len(dims)))
    offs = list(itertools.product(sorted(offsets, key=entry_preference),
                                  repeat=label_dim))
    pts = np.asarray(points, dtype=np.int64)
    for combo in itertools.product(rows, repeat=label_dim):
        base = SpaceMap(dims, combo)
        if require_full_rank and not transformation_full_rank(schedule, base):
            continue
        if deps is not None and len(deps) > 0:
            if not flows_realisable(deps, schedule, base, decomposer):
                continue
        for off in offs:
            candidate = SpaceMap(dims, combo, off)
            if require_conflict_free and not conflict_free(
                    schedule, candidate, pts):
                continue
            yield candidate


def cells_used(space: SpaceMap, points: np.ndarray) -> set[tuple[int, ...]]:
    """The set of distinct cells the mapped computations occupy."""
    pts = np.asarray(points, dtype=np.int64)
    if pts.shape[0] == 0:
        return set()
    cells = space.cells(pts)
    return {tuple(int(v) for v in row) for row in cells}
