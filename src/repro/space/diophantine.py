"""Integer linear systems and link-decomposition of displacements.

Two solvers live here:

* :func:`solve_integer_system` — general ``A x = b`` over the integers via
  the Smith normal form (existence + one particular solution + the lattice of
  homogeneous solutions).  This is the textbook machinery behind the paper's
  diophantine equations (3).
* :func:`decompose_displacement` — the systolic-specific question: can a
  spatial displacement be realised as a non-negative combination of at most
  ``budget`` interconnection links (columns of Δ)?  The budget is the time
  slack ``T(d)``: a datum has ``T(d)`` cycles to cover ``S d``, moving at
  most one link per cycle (idling is free — the zero column of Δ, when
  present, is a register).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.space.smith import smith_normal_form


def solve_integer_system(A, b) -> tuple[np.ndarray, np.ndarray] | None:
    """Solve ``A x = b`` over the integers.

    Returns ``(x0, N)`` where ``x0`` is a particular integer solution and the
    columns of ``N`` span the integer null space (so every solution is
    ``x0 + N z``), or ``None`` when no integer solution exists.
    """
    A = np.array(A, dtype=object)
    b = np.array(b, dtype=object).reshape(-1)
    m, n = A.shape
    U, D, V = smith_normal_form(A)
    c = U @ b
    y = np.zeros(n, dtype=object)
    rank = 0
    for k in range(min(m, n)):
        d = int(D[k, k])
        if d != 0:
            rank = k + 1
    for k in range(min(m, n)):
        d = int(D[k, k])
        if d == 0:
            if int(c[k]) != 0:
                return None
            continue
        if int(c[k]) % d != 0:
            return None
        y[k] = int(c[k]) // d
    for k in range(min(m, n), m):
        if int(c[k]) != 0:
            return None
    x0 = V @ y
    null_cols = [V[:, k] for k in range(n)
                 if k >= min(m, n) or int(D[k, k]) == 0]
    if null_cols:
        N = np.stack(null_cols, axis=1)
    else:
        N = np.zeros((n, 0), dtype=object)
    return x0, N


class LinkDecomposer:
    """Decides link-distance questions for a fixed interconnection matrix.

    ``delta`` is the (space_dim x L) matrix of link vectors; a zero column —
    if present — is the "stay" register and costs a cycle but no movement
    (equivalently: idling is always allowed, so only non-zero hops count
    against the budget).
    """

    def __init__(self, delta) -> None:
        self.delta = np.asarray(delta, dtype=np.int64)
        if self.delta.ndim != 2:
            raise ValueError("delta must be a matrix")
        self.space_dim = self.delta.shape[0]
        self.links = [tuple(int(v) for v in self.delta[:, j])
                      for j in range(self.delta.shape[1])]
        self.moves = sorted({l for l in self.links if any(c != 0 for c in l)})

    @lru_cache(maxsize=None)
    def distance(self, displacement: tuple[int, ...],
                 limit: int = 64) -> int | None:
        """Minimum number of link hops realising ``displacement`` (BFS over
        the lattice), or ``None`` if unreachable within ``limit`` hops."""
        target = tuple(int(v) for v in displacement)
        if len(target) != self.space_dim:
            raise ValueError("displacement dimension mismatch")
        if all(v == 0 for v in target):
            return 0
        frontier = {tuple([0] * self.space_dim)}
        seen = set(frontier)
        for hops in range(1, limit + 1):
            nxt = set()
            for p in frontier:
                for mv in self.moves:
                    q = tuple(a + b for a, b in zip(p, mv))
                    if q == target:
                        return hops
                    if q not in seen:
                        seen.add(q)
                        nxt.add(q)
            if not nxt:
                return None
            frontier = nxt
        return None

    def reachable_within(self, displacement: tuple[int, ...],
                         budget: int) -> bool:
        """Constraint (10): the displacement must be coverable in at most
        ``budget`` hops (waiting fills the remaining cycles)."""
        if budget < 0:
            return False
        d = self.distance(tuple(int(v) for v in displacement),
                          limit=max(budget, 1))
        return d is not None and d <= budget

    def decompose(self, displacement: tuple[int, ...],
                  budget: int) -> list[tuple[int, ...]] | None:
        """An explicit hop sequence (list of link vectors, length <= budget)
        realising the displacement, or ``None``.  Used by the machine's
        router to materialise data movement.

        Cached per (displacement, budget): the router asks the same question
        for every consumer along a wavefront.  Returns a fresh list each
        call, so callers may mutate their copy."""
        hops = self._decompose_cached(tuple(int(v) for v in displacement),
                                      int(budget))
        return None if hops is None else list(hops)

    @lru_cache(maxsize=None)
    def _decompose_cached(self, target: tuple[int, ...],
                          budget: int) -> tuple[tuple[int, ...], ...] | None:
        if all(v == 0 for v in target):
            return ()
        if budget <= 0:
            return None
        # BFS with parent pointers.
        start = tuple([0] * self.space_dim)
        parent: dict[tuple[int, ...], tuple[tuple[int, ...], tuple[int, ...]]] = {}
        frontier = [start]
        seen = {start}
        for _ in range(budget):
            nxt = []
            for p in frontier:
                for mv in self.moves:
                    q = tuple(a + b for a, b in zip(p, mv))
                    if q in seen:
                        continue
                    seen.add(q)
                    parent[q] = (p, mv)
                    if q == target:
                        hops: list[tuple[int, ...]] = []
                        node = q
                        while node != start:
                            prev, step = parent[node]
                            hops.append(step)
                            node = prev
                        hops.reverse()
                        return tuple(hops)
                    nxt.append(q)
            frontier = nxt
            if not frontier:
                return None
        return None
