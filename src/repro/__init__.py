"""repro — a reproduction of Guerra & Melhem, *Synthesizing Non-Uniform
Systolic Designs* (Purdue CSD-TR-621 / ICPP 1986).

The package implements the paper's full synthesis pipeline:

* :mod:`repro.ir` — recurrence/loop IR with affine index machinery;
* :mod:`repro.deps` — constant and non-constant dependence analysis;
* :mod:`repro.schedule` — linear time functions (single and multi-module);
* :mod:`repro.space` — processor allocation (diophantine ``S D = Δ K``);
* :mod:`repro.chains` — the availability preorder and chain decomposition;
* :mod:`repro.core` — the two-step refinement procedure, restructuring,
  synthesis, exploration and verification;
* :mod:`repro.arrays` — interconnection patterns and data-flow analysis;
* :mod:`repro.machine` — a cycle-accurate, strictly local systolic machine;
* :mod:`repro.problems` — the paper's worked problems;
* :mod:`repro.transform` — Section II.C algorithm transformations
  (broadcast elimination / pipelining derivation);
* :mod:`repro.reference` — sequential golden models;
* :mod:`repro.report` — design tables and ASCII array figures.

Quickstart::

    from repro import problems, core, arrays
    system = problems.dp_system()
    design = core.synthesize(system, {"n": 8}, arrays.FIG2_EXTENDED)
    print(design.summary())
"""

from repro import arrays, chains, core, deps, ir, machine, problems, reference
from repro import report, schedule, space, transform
from repro import api
from repro.core import (
    Design,
    SynthesisError,
    SynthesisOptions,
    coarse_timing,
    explore_uniform,
    restructure,
    run_sweep,
    synthesize,
    synthesize_uniform,
    verify_design,
)

__version__ = "1.1.0"

__all__ = [
    "Design",
    "SynthesisError",
    "SynthesisOptions",
    "api",
    "arrays",
    "chains",
    "coarse_timing",
    "core",
    "deps",
    "explore_uniform",
    "ir",
    "machine",
    "problems",
    "reference",
    "report",
    "restructure",
    "run_sweep",
    "schedule",
    "space",
    "synthesize",
    "transform",
    "synthesize_uniform",
    "verify_design",
]
