"""Native-code execution of lowered machine programs (``engine="native"``).

The fourth rung of the engine ladder.  The vector engine already reduced a
compiled machine's operation table to level-grouped kernels over a dense
``(seeds, nodes)`` value matrix; this module hands the *same* schedule
(:meth:`~repro.ir.vector.VectorProgram.kernel_schedule`) to
:mod:`repro.codegen`, which emits a per-design C kernel, compiles it with
the system toolchain and content-addresses the shared object — so a warm
run skips both codegen and the compiler and goes straight to ``dlopen``.

Division of labour per execution:

* Python runs the gather phase (host input callables are arbitrary Python)
  into the int64 value matrix via :func:`~repro.ir.vector.fill_inputs`;
* the C kernel runs every copy/compute level in place over that matrix,
  with the exact checked-overflow semantics of the ndarray fast path;
* the compiled machine supplies everything value-independent — statistics,
  strict capacity errors, the structural event stream, result keying.

Fallback policy (correctness never depends on a toolchain): with no C
compiler, an op outside the exact repertoire, a failed compile, a
non-integer input or an int64 overflow, execution degrades to the vector
engine's paths — same results, just slower.  Counters
(``native.vector_fallbacks``, ``native.input_fallbacks``,
``native.overflow_fallbacks``) and the shared
``vector.int64_fallbacks`` warning keep the degradation visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.codegen.build import NativeKernel, load_or_build
from repro.codegen.emit import emit_kernel
from repro.ir.evaluate import SystemTrace
from repro.ir.vector import (
    IntegerFallback,
    VectorProgram,
    _execute as _execute_typed,
    execute_program,
    fill_inputs,
    note_int64_fallback,
)
from repro.machine.compiled import CompiledMachine, lower
from repro.machine.errors import CapacityError
from repro.machine.microcode import Microcode
from repro.machine.simulator import MachineRun
from repro.machine.vector import vectorize
from repro.obs.events import EventSink
from repro.util.instrument import STATS

#: Typed fallback counters (see :mod:`repro.obs.telemetry`).
_VECTOR_FALLBACKS = STATS.metrics.counter("native.vector_fallbacks")
_INPUT_FALLBACKS = STATS.metrics.counter("native.input_fallbacks")
_OVERFLOW_FALLBACKS = STATS.metrics.counter("native.overflow_fallbacks")
_FALLBACK_BUILDS = STATS.metrics.counter("native.fallback_builds")


@dataclass
class NativeMachine:
    """A compiled machine plus (when buildable here) its C kernel.

    Always constructible: ``kernel is None`` means every execution takes
    the vector path and ``fallback_reason`` says why — callers never need
    to probe the toolchain themselves.
    """

    compiled: CompiledMachine
    program: VectorProgram
    kernel: "NativeKernel | None"
    fallback_reason: "str | None" = None

    def execute(self, inputs: Mapping[str, Callable],
                strict: bool = True,
                sink: "EventSink | None" = None,
                want_values: bool = True) -> MachineRun:
        """One native pass; drop-in for :meth:`CompiledMachine.execute`
        (same ``want_values`` economy as the vector engine)."""
        compiled = self.compiled
        if strict and compiled.strict_error is not None:
            raise CapacityError(compiled.strict_error)
        if sink is not None:
            compiled.replay_events(sink)
        buf = self.execute_batch((inputs,))[0].tolist()
        if want_values:
            values, results = compiled.result_dicts(buf)
        else:
            values = {}
            results = {host_key: buf[vid]
                       for host_key, vid in compiled.outputs}
        return MachineRun(values, results, compiled.copy_stats())

    def execute_batch(self, input_sets: Sequence[Mapping[str, Callable]],
                      ) -> np.ndarray:
        """The raw ``(seeds, value_count)`` matrix of one batched pass.

        Gather in Python, value levels in C; any reason the C kernel
        cannot run this batch exactly drops to the vector engine's
        equivalent path (counted, and warned once via the shared int64
        fallback channel).
        """
        kernel = self.kernel
        if kernel is None:
            _VECTOR_FALLBACKS.inc()
            return execute_program(self.program, input_sets)
        values = np.zeros((len(input_sets), self.program.node_count),
                          dtype=np.int64)
        try:
            with STATS.stage("vector.gather"):
                fill_inputs(self.program, values, input_sets, int_mode=True)
        except (IntegerFallback, OverflowError) as exc:
            note_int64_fallback(str(exc) or type(exc).__name__)
            _INPUT_FALLBACKS.inc()
            return _execute_typed(self.program, input_sets, object)
        with STATS.stage("native.exec"):
            rc = kernel.run(values)
        if rc != 0:
            note_int64_fallback("int64 overflow in native kernel")
            _OVERFLOW_FALLBACKS.inc()
            return _execute_typed(self.program, input_sets, object)
        return values


def nativize(compiled: CompiledMachine,
             cache_token: "str | None" = None,
             cache_dir=None) -> NativeMachine:
    """Lower a compiled machine's table to kernel groups and attach the
    C kernel for them, through the content-addressed artifact cache.

    ``cache_token`` keys the artifact by an externally stable identity
    (the verification path passes the design token) so a warm run skips
    codegen entirely; without it the emitted source is the key, which
    still skips the compiler.
    """
    vm = vectorize(compiled)
    program = vm.program
    kernel = None
    reason: "str | None" = None
    if program.int_ok:
        kernel, reason = load_or_build(
            lambda: emit_kernel(program),
            key_material=cache_token, cache_dir=cache_dir)
    else:
        reason = ("program contains ops without exact int64 kernels; "
                  "running on the vector engine")
    if kernel is None:
        _FALLBACK_BUILDS.inc()
    return NativeMachine(compiled=compiled, program=program,
                         kernel=kernel, fallback_reason=reason)


def lower_native(mc: Microcode, trace: SystemTrace,
                 reclaim_registers: bool = True,
                 record_events: bool = False,
                 cache_token: "str | None" = None,
                 cache_dir=None) -> NativeMachine:
    """Microcode → compiled lowering → kernel groups → C kernel."""
    return nativize(lower(mc, trace, reclaim_registers, record_events),
                    cache_token=cache_token, cache_dir=cache_dir)


def run_native(mc: Microcode, trace: SystemTrace,
               inputs: Mapping[str, Callable], strict: bool = True,
               reclaim_registers: bool = True,
               sink: "EventSink | None" = None) -> MachineRun:
    """Lower and execute in one step (the ``engine="native"`` path of
    :func:`repro.machine.simulator.run`)."""
    lowered = lower_native(mc, trace, reclaim_registers,
                           record_events=sink is not None)
    return lowered.execute(inputs, strict, sink=sink)
