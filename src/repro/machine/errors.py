"""Machine-level design violations.

Each exception corresponds to a physical impossibility a wrong design would
hit in silicon; the microcode compiler and simulator raise them instead of
silently producing answers a real array could not."""

from __future__ import annotations


class MachineError(Exception):
    """Base class for systolic machine violations."""


class CausalityError(MachineError):
    """An operand would be needed before (or when, across cells) it exists."""


class LocalityError(MachineError):
    """A value cannot reach its consumer over the interconnect in time."""


class MissingOperandError(MachineError):
    """At execution time a cell's register file lacks a needed operand —
    indicates a compiler/routing bug rather than a design bug."""


class CapacityError(MachineError):
    """Two values of the same stream need the same link in the same cycle."""
