"""Vectorized execution of lowered machine programs (``engine="vector"``).

:mod:`repro.machine.compiled` already lowers microcode into a flat,
integer-indexed operation table and precomputes every structural property
(statistics, validation, the event stream).  What remains per execution is
the value pass — one Python iteration per operation.  This module hands
that table to the level-grouped kernel engine in :mod:`repro.ir.vector`:
operations of the same level and opcode run as one gather → ufunc →
scatter over a dense value matrix, and a whole batch of input
instantiations runs through a single kernel pass (the multi-seed
verification axis).

Everything else — strict capacity semantics, the structural event replay,
the ``values``/``results``/``stats`` contract — is inherited unchanged
from the compiled lowering, so the vector engine is bit-identical to both
other engines wherever they are defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.ir.evaluate import SystemTrace
from repro.ir.vector import VectorProgram, build_program, execute_program
from repro.machine.compiled import CompiledMachine, lower
from repro.machine.errors import CapacityError
from repro.machine.microcode import Microcode
from repro.machine.simulator import MachineRun
from repro.obs.events import EventSink


@dataclass
class VectorMachine:
    """A compiled machine plus the level-grouped kernel form of its
    operation table."""

    compiled: CompiledMachine
    program: VectorProgram

    def execute(self, inputs: Mapping[str, Callable],
                strict: bool = True,
                sink: "EventSink | None" = None,
                want_values: bool = True) -> MachineRun:
        """One kernel pass; drop-in for :meth:`CompiledMachine.execute`.

        ``want_values=False`` skips building the full per-key ``values``
        dict (verification only consumes ``results``); ``results`` and
        ``stats`` are always populated.
        """
        compiled = self.compiled
        if strict and compiled.strict_error is not None:
            raise CapacityError(compiled.strict_error)
        if sink is not None:
            compiled.replay_events(sink)
        buf = self.execute_batch((inputs,))[0].tolist()
        if want_values:
            values, results = compiled.result_dicts(buf)
        else:
            values = {}
            results = {host_key: buf[vid]
                       for host_key, vid in compiled.outputs}
        return MachineRun(values, results, compiled.copy_stats())

    def execute_batch(self, input_sets: Sequence[Mapping[str, Callable]],
                      ) -> np.ndarray:
        """The raw ``(seeds, value_count)`` matrix of one batched pass.

        Capacity strictness and event replay are the caller's concern —
        batched verification checks ``compiled.strict_error`` once, not
        per seed.
        """
        return execute_program(self.program, input_sets)


def vectorize(compiled: CompiledMachine) -> VectorMachine:
    """Lower a compiled machine's operation table to kernel groups."""
    program = build_program(
        len(compiled.keys),
        compiled.program,
        [(vid, name, idx) for vid, name, idx in compiled.injections])
    return VectorMachine(compiled, program)


def lower_vector(mc: Microcode, trace: SystemTrace,
                 reclaim_registers: bool = True,
                 record_events: bool = False) -> VectorMachine:
    """Microcode → compiled lowering → kernel groups, in one step."""
    return vectorize(lower(mc, trace, reclaim_registers, record_events))


def run_vector(mc: Microcode, trace: SystemTrace,
               inputs: Mapping[str, Callable], strict: bool = True,
               reclaim_registers: bool = True,
               sink: "EventSink | None" = None) -> MachineRun:
    """Lower and execute in one step (the ``engine="vector"`` path of
    :func:`repro.machine.simulator.run`)."""
    lowered = lower_vector(mc, trace, reclaim_registers,
                           record_events=sink is not None)
    return lowered.execute(inputs, strict, sink=sink)
