"""The systolic machine: microcode compilation (placement + routing) and a
cycle-accurate, strictly local simulator — the hardware substrate standing in
for the paper's VLSI arrays."""

from repro.machine.analysis import (
    CellUtilization,
    CycleActivity,
    activity_timeline,
    cell_utilization,
    io_schedule,
    peak_parallelism,
    render_activity,
    stream_traffic,
)
from repro.machine.errors import (
    CapacityError,
    CausalityError,
    LocalityError,
    MachineError,
    MissingOperandError,
)
from repro.machine.compiled import CompiledMachine, lower, run_compiled
from repro.machine.microcode import Hop, Injection, Microcode, Operation, compile_design
from repro.machine.native import NativeMachine, lower_native, nativize, run_native
from repro.machine.simulator import MachineRun, MachineStats, run
from repro.machine.vector import VectorMachine, lower_vector, run_vector, vectorize

__all__ = [
    "CapacityError",
    "CellUtilization",
    "CycleActivity",
    "activity_timeline",
    "cell_utilization",
    "io_schedule",
    "peak_parallelism",
    "render_activity",
    "stream_traffic",
    "CausalityError",
    "CompiledMachine",
    "Hop",
    "Injection",
    "LocalityError",
    "MachineError",
    "MachineRun",
    "MachineStats",
    "Microcode",
    "MissingOperandError",
    "NativeMachine",
    "Operation",
    "VectorMachine",
    "compile_design",
    "lower",
    "lower_native",
    "lower_vector",
    "nativize",
    "run",
    "run_compiled",
    "run_native",
    "run_vector",
    "vectorize",
]
