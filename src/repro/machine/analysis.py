"""Execution-trace analytics for compiled microcode.

Beyond the aggregate :class:`~repro.machine.simulator.MachineStats`, these
helpers expose the *shape* of an execution: per-cycle activity (how many
cells compute, how many values move), per-stream traffic, and the I/O
schedule at the array boundary — the kind of information the paper's figures
annotate by hand.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.machine.microcode import Microcode


@dataclass(frozen=True)
class CycleActivity:
    """What happened during one cycle."""

    cycle: int
    computing_cells: int
    operations: int
    hops: int
    injections: int


def activity_timeline(mc: Microcode) -> list[CycleActivity]:
    """Per-cycle activity profile, first to last cycle."""
    ops_cells: dict[int, set] = defaultdict(set)
    ops_count: Counter = Counter()
    hop_count: Counter = Counter()
    inj_count: Counter = Counter()
    for op in mc.operations:
        ops_cells[op.cycle].add(op.cell)
        ops_count[op.cycle] += 1
    for hop in mc.hops:
        hop_count[hop.cycle] += 1
    for inj in mc.injections:
        inj_count[inj.cycle] += 1
    return [
        CycleActivity(
            cycle=t,
            computing_cells=len(ops_cells.get(t, ())),
            operations=ops_count.get(t, 0),
            hops=hop_count.get(t, 0),
            injections=inj_count.get(t, 0))
        for t in range(mc.first_cycle, mc.last_cycle + 1)]


def stream_traffic(mc: Microcode) -> dict[tuple[str, str], int]:
    """Total hops per named stream (module, variable) — which data stream
    loads the wiring most."""
    counts: Counter = Counter()
    for hop in mc.hops:
        counts[hop.stream] += 1
    return dict(counts)


def io_schedule(mc: Microcode) -> dict[tuple[int, ...], list[tuple[int, str]]]:
    """Injection timetable per boundary cell: ``{cell: [(cycle, input)]}`` —
    what the host must feed, where and when."""
    table: dict[tuple[int, ...], list[tuple[int, str]]] = defaultdict(list)
    for inj in mc.injections:
        table[inj.cell].append((inj.cycle, inj.input_name))
    for entries in table.values():
        entries.sort()
    return dict(table)


@dataclass(frozen=True)
class CellUtilization:
    """One cell's share of the execution: what it did and how busy it was."""

    cell: tuple[int, ...]
    operations: int
    hops_in: int
    hops_out: int
    injections: int
    busy_cycles: int            # distinct cycles with >= 1 operation
    first_active: int
    last_active: int
    occupancy: float            # busy_cycles / total span

    @property
    def events(self) -> int:
        """Total events homed at this cell (hops counted at both ends)."""
        return (self.operations + self.hops_in + self.hops_out
                + self.injections)


def cell_utilization(mc: Microcode) -> dict[tuple[int, ...], CellUtilization]:
    """Per-cell utilization/occupancy summary — the non-uniformity of a
    design made visible: cells of a non-uniform array differ wildly in how
    often and when they fire, which this table quantifies cell by cell."""
    ops: Counter = Counter()
    busy: dict[tuple[int, ...], set[int]] = defaultdict(set)
    hops_in: Counter = Counter()
    hops_out: Counter = Counter()
    injections: Counter = Counter()
    active: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for op in mc.operations:
        ops[op.cell] += 1
        busy[op.cell].add(op.cycle)
        active[op.cell].append(op.cycle)
    for hop in mc.hops:
        hops_out[hop.src] += 1
        hops_in[hop.dst] += 1
        active[hop.src].append(hop.cycle)
        active[hop.dst].append(hop.cycle)
    for inj in mc.injections:
        injections[inj.cell] += 1
        active[inj.cell].append(inj.cycle)
    span = max(mc.span, 1)
    return {
        cell: CellUtilization(
            cell=cell,
            operations=ops.get(cell, 0),
            hops_in=hops_in.get(cell, 0),
            hops_out=hops_out.get(cell, 0),
            injections=injections.get(cell, 0),
            busy_cycles=len(busy.get(cell, ())),
            first_active=min(cycles),
            last_active=max(cycles),
            occupancy=len(busy.get(cell, ())) / span)
        for cell, cycles in sorted(active.items())}


def peak_parallelism(mc: Microcode) -> int:
    """Maximum simultaneously computing cells — how much of the array is
    ever exercised at once."""
    timeline = activity_timeline(mc)
    return max((a.computing_cells for a in timeline), default=0)


def render_activity(mc: Microcode, width: int = 60) -> str:
    """Compact ASCII activity curve (cells computing per cycle)."""
    timeline = activity_timeline(mc)
    if not timeline:
        return "(no activity)"
    peak = max(a.computing_cells for a in timeline) or 1
    lines = ["cycle  cells  ops  hops"]
    for a in timeline:
        bar = "#" * round(a.computing_cells / peak * width)
        lines.append(
            f"{a.cycle:>5}  {a.computing_cells:>5}  {a.operations:>3}  "
            f"{a.hops:>4}  {bar}")
    return "\n".join(lines)
