"""Compile a synthesized design into per-cell, per-cycle microcode.

A design assigns every computation of every module a (time, cell) via its
schedule and space map.  This compiler turns the *structure* of a system
execution — which rule fires at each point and which values it reads, never
the values themselves — into three event streams:

* **injections** — host inputs entering boundary cells at fixed cycles;
* **operations** — a cell applying an op to values in its register file
  (link transfers compile to ``copy`` operations at the destination);
* **hops** — a value moving over exactly one interconnect link per cycle.

Routing policy: a value departs as early as possible after production and
then waits in the destination cell's register file — the classic systolic
"move-then-hold" pattern — but the router is *capacity-aware*: each
(link, stream) channel carries one value per cycle, and a hop that would
collide is pushed later within its slack window (streams whose bandwidth
demand is below 1 always fit; genuinely over-subscribed channels raise
:class:`CapacityError` at compile time).  Multiple consumers of one value
get separate hop chains; identical (value, link, cycle) hops deduplicate,
so a shared prefix is transported once.

Everything a real array could not do raises: an operand needed before it is
produced (:class:`CausalityError`), a displacement not coverable within the
time slack (:class:`LocalityError`), a channel needed twice in one cycle
with no retiming room (:class:`CapacityError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.ir.arrayeval import eval_index_int
from repro.ir.evaluate import SystemTrace, ValueKey
from repro.ir.statements import ComputeRule, InputRule, LinkRule
from repro.machine.errors import CapacityError, CausalityError, LocalityError
from repro.space.diophantine import LinkDecomposer
from repro.util.instrument import STATS

Cell = tuple[int, ...]


@dataclass(frozen=True)
class Injection:
    """Host writes ``value_of[key]`` into ``cell``'s registers at ``cycle``."""

    key: ValueKey
    cell: Cell
    cycle: int
    input_name: str
    input_index: tuple[int, ...]


@dataclass(frozen=True)
class Operation:
    """``key := op(*operands)`` executed in ``cell`` at ``cycle``.

    ``op`` is ``None`` for a copy (link transfer arriving as a register
    rename).  ``same_cycle`` flags operands produced in this very cell and
    cycle (intra-cycle forwarding; the simulator orders those topologically).
    """

    key: ValueKey
    cell: Cell
    cycle: int
    op: object          # repro.ir.ops.Op or None for copy
    operands: tuple[ValueKey, ...]
    stream: tuple[str, str]   # (module, var) — the physical channel class


@dataclass(frozen=True)
class Hop:
    """``key`` moves from ``src`` over one link to ``dst`` during ``cycle``."""

    key: ValueKey
    src: Cell
    dst: Cell
    cycle: int
    stream: tuple[str, str]


@dataclass
class Microcode:
    """The complete compiled program of the array."""

    injections: list[Injection] = field(default_factory=list)
    operations: list[Operation] = field(default_factory=list)
    hops: list[Hop] = field(default_factory=list)
    placement: dict[ValueKey, tuple[int, Cell]] = field(default_factory=dict)
    first_cycle: int = 0
    last_cycle: int = 0

    @property
    def span(self) -> int:
        """Total execution time in cycles."""
        return self.last_cycle - self.first_cycle + 1


def compile_design(trace: SystemTrace, schedules: Mapping[str, object],
                   space_maps: Mapping[str, object],
                   decomposer: LinkDecomposer) -> Microcode:
    """Lower an executed system trace onto the array.

    ``schedules`` / ``space_maps`` map module names to
    :class:`~repro.schedule.linear.LinearSchedule` /
    :class:`~repro.space.allocation.SpaceMap`.
    """
    mc = Microcode()
    # Placement of every value: batch T and S per module over the point
    # array instead of evaluating them key by key.
    with STATS.stage("machine.compile.placement"):
        by_module: dict[str, list[ValueKey]] = {}
        for key in trace.events:
            by_module.setdefault(key.module, []).append(key)
        for mod, keys in by_module.items():
            ndims = len(trace.system.modules[mod].dims)
            pts = np.array([k.point for k in keys],
                           dtype=np.int64).reshape(len(keys), ndims)
            times = schedules[mod].times(pts).tolist()
            cells = list(map(tuple, space_maps[mod].cells(pts).tolist()))
            for key, t, cell in zip(keys, times, cells):
                mc.placement[key] = (int(t), cell)

    times = [t for t, _ in mc.placement.values()]
    mc.first_cycle = min(times) if times else 0
    mc.last_cycle = max(times) if times else 0

    # Injection indices: evaluate each InputRule's index expressions over
    # the whole batch of points selecting that rule.
    inj_index: dict[ValueKey, tuple[int, ...]] = {}
    with STATS.stage("machine.compile.injections"):
        inj_groups: dict[tuple[str, int], tuple[object, list[ValueKey]]] = {}
        for key, event in trace.events.items():
            if isinstance(event.rule, InputRule):
                group = inj_groups.setdefault(
                    (key.module, id(event.rule)), (event.rule, []))
                group[1].append(key)
        for (mod, _), (rule, keys) in inj_groups.items():
            dims = trace.system.modules[mod].dims
            pts = np.array([k.point for k in keys],
                           dtype=np.int64).reshape(len(keys), len(dims))
            cols = [eval_index_int(e, dims, pts, trace.params)
                    for e in rule.index]
            rows = (map(tuple, np.column_stack(cols).tolist()) if cols
                    else (() for _ in keys))
            for key, idx in zip(keys, rows):
                inj_index[key] = idx

    seen_hops: set[tuple[ValueKey, Cell, Cell, int]] = set()
    # Channel reservations: one value per (link, stream, cycle).
    reservations: dict[tuple[Cell, Cell, tuple[str, str], int], ValueKey] = {}

    def route(value: ValueKey, consumer: ValueKey, min_gap: int) -> None:
        t_src, c_src = mc.placement[value]
        t_dst, c_dst = mc.placement[consumer]
        gap = t_dst - t_src
        disp = tuple(b - a for a, b in zip(c_src, c_dst))
        if gap < min_gap or (gap == 0 and any(v != 0 for v in disp)):
            raise CausalityError(
                f"{consumer} at t={t_dst} needs {value} produced at t={t_src} "
                f"(gap {gap} < required {max(min_gap, 1) if disp != tuple([0]*len(disp)) else min_gap})")
        if all(v == 0 for v in disp):
            return  # stays in the register file (or same-cycle forwarding)
        hops = decomposer.decompose(disp, gap)
        if hops is None:
            raise LocalityError(
                f"{value} -> {consumer}: displacement {disp} not coverable "
                f"in {gap} cycles on this interconnect")
        stream = (value.module, value.var)
        pos = c_src
        t_prev = t_src
        for idx, mv in enumerate(hops):
            nxt = tuple(a + b for a, b in zip(pos, mv))
            # Retiming window: after the previous hop, early enough that the
            # remaining hops (one per cycle) still make the deadline.
            earliest = t_prev + 1
            latest = t_dst - (len(hops) - 1 - idx)
            cycle = earliest
            while cycle <= latest:
                channel = (pos, nxt, stream, cycle)
                holder = reservations.get(channel)
                if holder is None or holder == value:
                    break
                cycle += 1
            else:
                raise CapacityError(
                    f"{value} -> {consumer}: channel {pos}->{nxt} of stream "
                    f"{stream} is saturated in cycles "
                    f"[{earliest}, {latest}]")
            reservations[(pos, nxt, stream, cycle)] = value
            tag = (value, pos, nxt, cycle)
            if tag not in seen_hops:
                seen_hops.add(tag)
                mc.hops.append(Hop(value, pos, nxt, cycle, stream))
            pos = nxt
            t_prev = cycle

    # First pass: build operations/injections and collect route requests.
    route_requests: list[tuple[ValueKey, ValueKey, int]] = []
    for key, event in trace.events.items():
        t, cell = mc.placement[key]
        rule = event.rule
        stream = (key.module, key.var)
        if isinstance(rule, InputRule):
            mc.injections.append(Injection(key, cell, t, rule.input_name,
                                           inj_index[key]))
            continue
        if isinstance(rule, LinkRule):
            src = event.operands[0]
            route_requests.append((src, key, rule.min_gap))
            mc.operations.append(Operation(key, cell, t, None,
                                           event.operands, stream))
            continue
        # ComputeRule: route every cross-point operand; same-point operands
        # are intra-cycle reads.
        for operand in event.operands:
            if operand == key:
                raise CausalityError(f"{key} depends on itself")
            t_op, c_op = mc.placement[operand]
            if (t_op, c_op) == (t, cell):
                continue  # same cell, same cycle: forwarding inside the cell
            route_requests.append((operand, key, 1 if c_op != cell else 0))
            if c_op == cell and t_op >= t:
                raise CausalityError(
                    f"{key} at t={t} reads {operand} produced at t={t_op}")
        mc.operations.append(Operation(key, cell, t, rule.op,
                                       event.operands, stream))

    # Second pass: route earliest-deadline-first, so transfers with tight
    # windows claim channel slots before slack-rich ones push them out.
    def deadline(request: tuple[ValueKey, ValueKey, int]) -> tuple:
        value, consumer, _ = request
        t_dst, _ = mc.placement[consumer]
        t_src, _ = mc.placement[value]
        return (t_dst, t_dst - t_src)

    with STATS.stage("machine.compile.routing"):
        for value, consumer, min_gap in sorted(route_requests, key=deadline):
            route(value, consumer, min_gap)

    mc.injections.sort(key=lambda e: (e.cycle, e.cell))
    mc.operations.sort(key=lambda e: (e.cycle, e.cell))
    mc.hops.sort(key=lambda e: (e.cycle, e.src, e.dst))
    if mc.hops:
        mc.first_cycle = min(mc.first_cycle, min(h.cycle for h in mc.hops))
        mc.last_cycle = max(mc.last_cycle, max(h.cycle for h in mc.hops))
    return mc
