"""Compiled execution engine for the systolic machine.

The interpreted simulator (:func:`repro.machine.simulator.run`) replays the
microcode cycle by cycle through dicts of per-cell register files — faithful,
but every hop and operand is a hash lookup and every cycle rescans all
register files for the pressure statistic.  This module *lowers* a
:class:`~repro.machine.microcode.Microcode` once into integer-indexed form:

* every :class:`~repro.ir.evaluate.ValueKey` and cell label is interned to a
  dense id;
* operand availability, hop sources, channel capacities and register
  residency are validated **structurally** at lowering time — this subsumes
  the interpreter's ``_last_uses`` reclamation and its per-cycle
  ``max_registers_per_cell`` scan, which become a single vectorised
  interval-overlap sweep over (cell, value) residencies;
* the surviving work is a flat, topologically pre-ordered operation table
  (cycle-major, intra-cell dependence order) whose execution is one linear
  pass writing into a dense value buffer — no per-cycle bookkeeping at all.

Because every :class:`MachineStats` field is a *structural* property of the
microcode (independent of the data flowing through it), the whole statistics
block — including the capacity-violation list — is precomputed during
lowering; execution only computes values.  The compiled engine produces
bit-identical ``values``/``results``/``stats`` to the interpreter and raises
the same error types (:class:`MissingOperandError` for structurally
impossible reads, :class:`CapacityError` under ``strict``).

Lowering is value-independent, so a :class:`CompiledMachine` can be executed
many times with different host inputs (the verification engine exploits this
when cross-checking a design over many input seeds).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.ir.arrayeval import eval_index_int
from repro.ir.evaluate import SystemTrace, ValueKey
from repro.machine.errors import CapacityError, MissingOperandError
from repro.machine.microcode import Microcode
from repro.machine.simulator import MachineRun, MachineStats
from repro.obs.events import EventSink, MachineEvent, canonical_order

Cell = tuple[int, ...]

_NEVER = -(10 ** 9)


@dataclass
class CompiledMachine:
    """A lowered microcode program plus its precomputed statistics."""

    keys: list[ValueKey]
    #: pre-evaluated host fetches: (value id, input name, input index)
    injections: list[tuple[int, str, tuple[int, ...]]]
    #: execution-ordered operation table: (destination id, op, operand ids)
    program: list[tuple[int, object, tuple[int, ...]]]
    #: (host result key, value id) pairs
    outputs: list[tuple[tuple[int, ...], int]]
    #: every id that receives a value, in the interpreter's insertion order
    produced: list[int]
    stats: MachineStats
    #: first capacity violation, pre-formatted for the ``strict`` raise
    strict_error: str | None
    #: structural event stream (canonical order) — only when the machine
    #: was lowered with ``record_events=True``; value-independent, so one
    #: lowering serves every execution
    events: "list[MachineEvent] | None" = None
    #: ``keys[vid]`` for every produced id, aligned with ``produced`` — the
    #: per-execution ``values`` dict zips these instead of re-indexing
    produced_keys: "list[ValueKey] | None" = None

    def replay_events(self, sink: "EventSink") -> None:
        """Replay the precomputed structural event stream (requires
        ``lower(..., record_events=True)``) — the same injection / fire /
        hop / output / reclaim vocabulary the interpreter emits live."""
        if self.events is None:
            raise ValueError(
                "machine was lowered without record_events=True; "
                "no event stream to replay")
        for event in self.events:
            sink.emit(event)

    def copy_stats(self) -> MachineStats:
        """A caller-owned copy of the precomputed statistics block."""
        return MachineStats(
            cycles=self.stats.cycles, first_cycle=self.stats.first_cycle,
            last_cycle=self.stats.last_cycle,
            cells_used=self.stats.cells_used,
            operations=self.stats.operations, hops=self.stats.hops,
            injections=self.stats.injections,
            max_registers_per_cell=self.stats.max_registers_per_cell,
            busy_cell_cycles=self.stats.busy_cell_cycles,
            capacity_violations=list(self.stats.capacity_violations))

    def result_dicts(self, buf: "list[object] | Sequence[object]",
                     ) -> tuple[dict, dict]:
        """``(values, results)`` dicts over an executed value buffer, using
        the id tuples precomputed at lowering time."""
        produced_keys = self.produced_keys
        if produced_keys is None:   # lowered by an older pickle/caller
            keys = self.keys
            produced_keys = self.produced_keys = [
                keys[vid] for vid in self.produced]
        values = dict(zip(produced_keys, (buf[vid] for vid in self.produced)))
        results = {host_key: buf[vid] for host_key, vid in self.outputs}
        return values, results

    def execute(self, inputs: Mapping[str, Callable],
                strict: bool = True,
                sink: "EventSink | None" = None) -> MachineRun:
        """Run the lowered program: one pass over the operation table.

        ``sink`` replays the precomputed structural event stream (requires
        ``lower(..., record_events=True)``).
        """
        if strict and self.strict_error is not None:
            raise CapacityError(self.strict_error)
        if sink is not None:
            self.replay_events(sink)
        buf: list[object] = [None] * len(self.keys)
        for vid, name, idx in self.injections:
            buf[vid] = inputs[name](*idx)
        for vid, op, operand_ids in self.program:
            if op is None:
                buf[vid] = buf[operand_ids[0]]
            else:
                buf[vid] = op(*[buf[i] for i in operand_ids])
        values, results = self.result_dicts(buf)
        return MachineRun(values, results, self.copy_stats())


def _order_group(ops: list) -> list:
    """Lexicographic topological order of one cell's same-cycle operations
    (smallest original position first among ready nodes) — the pure-python
    equivalent of the interpreter's networkx ordering."""
    if len(ops) <= 1:
        return ops
    index: dict[ValueKey, int] = {}
    for i, (_, op) in enumerate(ops):
        index[op.key] = i
    indeg = [0] * len(ops)
    edges: list[list[int]] = [[] for _ in ops]
    for i, (_, op) in enumerate(ops):
        for operand in op.operands:
            if operand == op.key:
                continue
            j = index.get(operand)
            if j is not None:
                edges[j].append(i)
                indeg[i] += 1
    ready = [i for i in range(len(ops)) if indeg[i] == 0]
    heapq.heapify(ready)
    out = []
    while ready:
        i = heapq.heappop(ready)
        out.append(ops[i])
        for j in edges[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                heapq.heappush(ready, j)
    if len(out) < len(ops):
        _, op = ops[0]
        raise MissingOperandError(
            f"cyclic intra-cycle dependence at cell {op.cell}, "
            f"cycle {op.cycle}")
    return out


def lower(mc: Microcode, trace: SystemTrace,
          reclaim_registers: bool = True,
          record_events: bool = False) -> CompiledMachine:
    """Lower microcode to a :class:`CompiledMachine`.

    Performs all structural validation the interpreter does dynamically
    (operand presence, hop sources, intra-cycle dependence cycles) and
    precomputes the entire :class:`MachineStats` block.  With
    ``record_events`` the cycle-level event stream (injection, fire, hop,
    output, register-reclaim) is also derived structurally — it matches the
    interpreter's live emission event for event.
    """
    first, last = mc.first_cycle, mc.last_cycle
    injections = [e for e in mc.injections if first <= e.cycle <= last]
    operations = [op for op in mc.operations if first <= op.cycle <= last]
    hops = [h for h in mc.hops if first <= h.cycle <= last]

    key_ids: dict[ValueKey, int] = {}
    keys: list[ValueKey] = []

    def intern(key: ValueKey) -> int:
        vid = key_ids.get(key)
        if vid is None:
            vid = key_ids[key] = len(keys)
            keys.append(key)
        return vid

    cell_ids: dict[Cell, int] = {}

    def intern_cell(cell: Cell) -> int:
        cid = cell_ids.get(cell)
        if cid is None:
            cid = cell_ids[cell] = len(cell_ids)
        return cid

    op_records = []   # (cycle, cell_id, op, key_id, operand_ids)
    for op in operations:
        cid = intern_cell(op.cell)
        operand_ids = tuple(intern(o) for o in op.operands)
        op_records.append((op.cycle, cid, op, intern(op.key), operand_ids))
    hop_records = []  # (cycle, src_id, dst_id, key_id, hop)
    for h in hops:
        hop_records.append((h.cycle, intern_cell(h.src), intern_cell(h.dst),
                            intern(h.key), h))
    inj_records = []  # (cycle, cell_id, key_id, event)
    for e in injections:
        inj_records.append((e.cycle, intern_cell(e.cell), intern(e.key), e))

    # Last local use per (cell, value).  Like the interpreter's
    # ``_last_uses`` this scans the *unfiltered* event streams, so an
    # out-of-range read still pins its operand's register.
    last_use: dict[tuple[int, int], int] = {}
    for op in mc.operations:
        cid = intern_cell(op.cell)
        for operand in op.operands:
            pair = (cid, intern(operand))
            if op.cycle > last_use.get(pair, _NEVER):
                last_use[pair] = op.cycle
    for h in mc.hops:
        pair = (intern_cell(h.src), intern(h.key))
        if h.cycle > last_use.get(pair, _NEVER):
            last_use[pair] = h.cycle

    # -- arrival cycles per (cell, value) -----------------------------------
    arrivals: dict[tuple[int, int], list[int]] = {}
    for cycle, cid, vid, _ in inj_records:
        arrivals.setdefault((cid, vid), []).append(cycle)
    for cycle, cid, _, kid, _ in op_records:
        arrivals.setdefault((cid, kid), []).append(cycle)
    for cycle, _, did, kid, _ in hop_records:
        arrivals.setdefault((did, kid), []).append(cycle)
    first_arrival = {pair: min(cs) for pair, cs in arrivals.items()}

    # -- hop validation + capacity replay (interpreter's phase-1 order) -----
    # A hop reads the pre-cycle register state, so its source value must
    # have arrived *strictly* earlier; reclamation can never have evicted it
    # because the hop itself is a local use.
    violations: list[tuple] = []
    strict_error: str | None = None
    hop_records.sort(key=lambda r: r[0])   # stable: original order per cycle
    link_usage: dict[tuple[int, int, tuple[str, str]], int] = {}
    current_cycle: int | None = None
    for cycle, sid, did, kid, h in hop_records:
        if cycle != current_cycle:
            link_usage.clear()
            current_cycle = cycle
        if first_arrival.get((sid, kid), cycle) >= cycle:
            raise MissingOperandError(
                f"cycle {cycle}: hop of {h.key} out of {h.src} but "
                f"the value is not there")
        channel = (sid, did, h.stream)
        holder = link_usage.get(channel)
        if holder is not None and holder != kid:
            violations.append((cycle, h.src, h.dst, h.stream))
            if strict_error is None:
                strict_error = (f"cycle {cycle}: stream {h.stream} needs "
                                f"link {h.src}->{h.dst} twice")
        link_usage[channel] = kid

    # -- operation ordering + operand validation ----------------------------
    # Cycle-major; within a cycle, cells in first-appearance order; within a
    # cell, lexicographic topological order — the interpreter's schedule.
    groups: dict[tuple[int, int], list] = {}
    group_order: list[tuple[int, int]] = []
    for rec in sorted(op_records, key=lambda r: r[0]):
        gk = (rec[0], rec[1])
        if gk not in groups:
            groups[gk] = []
            group_order.append(gk)
        groups[gk].append((rec[3], rec[2]))
    program: list[tuple[int, object, tuple[int, ...]]] = []
    op_produced: list[tuple[int, int]] = []   # (cycle, value id), in order
    for gk in group_order:
        cycle, cid = gk
        for kid, op in _order_group(groups[gk]):
            operand_ids = tuple(key_ids[o] for o in op.operands)
            for oid, operand in zip(operand_ids, op.operands):
                arrived = first_arrival.get((cid, oid))
                if arrived is None or arrived > cycle:
                    raise MissingOperandError(
                        f"cycle {cycle}, cell {op.cell}: {op.key} needs "
                        f"{operand}, which never reaches the cell in time")
            program.append((kid, op.op, operand_ids))
            op_produced.append((cycle, kid))
    # ``values`` insertion order in the interpreter: per cycle, injections
    # (phase 2) before operations (phase 3).
    seq = [(cycle, 0, pos, vid)
           for pos, (cycle, _, vid, _) in enumerate(inj_records)]
    seq += [(cycle, 1, pos, vid)
            for pos, (cycle, vid) in enumerate(op_produced)]
    seq.sort()
    produced = [vid for _, _, _, vid in seq]
    produced_set = set(produced)

    # -- protected output values (never reclaimed) --------------------------
    protected: set[int] = set()
    system, params = trace.system, trace.params
    for out in system.outputs:
        for p in out.domain.points(params):
            vid = key_ids.get(ValueKey(out.module, out.var, p))
            if vid is not None:
                protected.add(vid)

    # -- register pressure: vectorised interval-overlap sweep ---------------
    # A value occupies a register in a cell from its first arrival until the
    # end-of-cycle reclamation after its last local use (forever when
    # protected or reclamation is off); re-arrivals after reclamation add
    # isolated single-cycle residencies.  The interpreter measures pressure
    # at the end of every cycle *before* reclaiming, which is exactly the
    # overlap count of these closed intervals.
    max_regs = 0
    n_cells = len(cell_ids)
    span = last - first + 1
    if arrivals and n_cells:
        starts: list[int] = []
        ends: list[int] = []
        cells_of: list[int] = []
        for (cid, vid), cycles in arrivals.items():
            a0 = min(cycles)
            if vid in protected or not reclaim_registers:
                release = last
            else:
                release = max(a0, last_use.get((cid, vid), _NEVER))
            starts.append(a0)
            ends.append(min(release, last))
            cells_of.append(cid)
            if len(cycles) > 1:
                for a in cycles:
                    if a > release:
                        starts.append(a)
                        ends.append(a)
                        cells_of.append(cid)
        base = np.asarray(cells_of, dtype=np.int64) * (span + 1) - first
        deltas = np.zeros(n_cells * (span + 1), dtype=np.int64)
        np.add.at(deltas, base + np.asarray(starts, dtype=np.int64), 1)
        np.add.at(deltas, base + np.asarray(ends, dtype=np.int64) + 1, -1)
        max_regs = int(np.cumsum(deltas).max())

    busy = {(cid, cycle) for cycle, cid, _, _, _ in op_records}
    used_cells = {cid for _, cid, _, _ in inj_records}
    used_cells.update(cid for _, cid, _, _, _ in op_records)
    for _, sid, did, _, _ in hop_records:
        used_cells.add(sid)
        used_cells.add(did)

    stats = MachineStats(
        cycles=mc.span, first_cycle=first, last_cycle=last,
        cells_used=len(used_cells), operations=len(op_records),
        hops=len(hop_records), injections=len(inj_records),
        max_registers_per_cell=max_regs, busy_cell_cycles=len(busy),
        capacity_violations=violations)

    # -- host outputs -------------------------------------------------------
    outputs: list[tuple[tuple[int, ...], int]] = []
    output_keys: list[tuple[ValueKey, tuple[int, ...]]] = []
    for out in system.outputs:
        pts = list(out.domain.points(params))
        arr = np.array(pts, dtype=np.int64).reshape(
            len(pts), len(out.domain.dims))
        cols = [eval_index_int(e, out.domain.dims, arr, params)
                for e in out.key]
        host_rows = (list(map(tuple, np.column_stack(cols).tolist()))
                     if cols else [() for _ in pts])
        for p, host_key in zip(pts, host_rows):
            key = ValueKey(out.module, out.var, p)
            vid = key_ids.get(key)
            if vid is None or vid not in produced_set:
                raise MissingOperandError(f"output {key} was never computed")
            outputs.append((host_key, vid))
            output_keys.append((key, host_key))

    # -- structural event stream --------------------------------------------
    # Everything the interpreter emits live is a structural property of the
    # microcode; re-derive it here so a lowered machine can replay the same
    # event log without executing a single value pass.
    events: "list[MachineEvent] | None" = None
    if record_events:
        events = []
        for cycle, _, _, _, h in hop_records:
            events.append(MachineEvent("hop", cycle, h.dst, repr(h.key),
                                       src=h.src, stream=h.stream))
        for cycle, _, _, e in inj_records:
            events.append(MachineEvent("inject", cycle, e.cell, repr(e.key),
                                       name=e.input_name))
        for cycle, _, op, _, _ in op_records:
            events.append(MachineEvent(
                "fire", cycle, op.cell, repr(op.key),
                name=op.op.name if op.op is not None else "copy",
                stream=op.stream))
        for key, host_key in output_keys:
            t_prod, c_prod = mc.placement[key]
            events.append(MachineEvent("output", t_prod, c_prod, repr(key),
                                       name=str(host_key)))
        if reclaim_registers:
            cells_by_id = [None] * len(cell_ids)
            for cell, cid in cell_ids.items():
                cells_by_id[cid] = cell
            for (cid, vid), cycles in arrivals.items():
                if vid in protected:
                    continue
                # End-of-cycle reclamation after the last local use (or on
                # arrival when the value is never read locally); re-arrivals
                # after that point are reclaimed again the cycle they land.
                release = max(min(cycles),
                              last_use.get((cid, vid), _NEVER))
                cell = cells_by_id[cid]
                key_repr = repr(keys[vid])
                if release <= last:
                    events.append(MachineEvent("reclaim", release, cell,
                                               key_repr))
                for a in sorted(set(cycles)):
                    if a > release:
                        events.append(MachineEvent("reclaim", a, cell,
                                                   key_repr))
        events = canonical_order(events)

    return CompiledMachine(
        keys=keys,
        injections=[(vid, e.input_name, e.input_index)
                    for _, _, vid, e in inj_records],
        program=program, outputs=outputs, produced=produced, stats=stats,
        strict_error=strict_error, events=events,
        produced_keys=[keys[vid] for vid in produced])


def run_compiled(mc: Microcode, trace: SystemTrace,
                 inputs: Mapping[str, Callable], strict: bool = True,
                 reclaim_registers: bool = True,
                 sink: "EventSink | None" = None) -> MachineRun:
    """Lower and execute in one step (the ``engine="compiled"`` path of
    :func:`repro.machine.simulator.run`)."""
    lowered = lower(mc, trace, reclaim_registers,
                    record_events=sink is not None)
    return lowered.execute(inputs, strict, sink=sink)
