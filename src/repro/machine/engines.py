"""The single registry of execution engines.

Every place that dispatches on an execution strategy — the simulator,
verification, :class:`~repro.core.options.SynthesisOptions`, the CLI's
``--engine`` flags — draws from this enum, so adding an engine is one
edit here plus its dispatch arm.

:class:`Engine` subclasses :class:`str`, so existing string-based callers
(``run(..., engine="vector")``, serialized run records) keep working
unchanged; :func:`coerce_engine` is the one validation/normalisation
point, returning the canonical string value.
"""

from __future__ import annotations

from enum import Enum


class Engine(str, Enum):
    """Execution strategy for running a design's machine.

    * ``COMPILED`` — lower the microcode to integer-indexed form once and
      cache the artifacts on the design; fastest for repeated runs.
    * ``INTERPRETED`` — the cycle-by-cycle simulator; the oracle every
      other engine is checked against.
    * ``VECTOR`` — execute the lowered table as level-grouped ndarray
      kernels; batches multi-seed verification into one pass.
    * ``NATIVE`` — emit, compile and cache a per-design C kernel over the
      level-grouped table; falls back to the vector engine when no C
      toolchain is present or inputs leave exact int64 range.
    """

    COMPILED = "compiled"
    INTERPRETED = "interpreted"
    VECTOR = "vector"
    NATIVE = "native"

    def __str__(self) -> str:  # "compiled", not "Engine.COMPILED"
        return self.value


#: Canonical engine names, in documentation order.  The historical
#: constant — ``repro.core.verify.ENGINES`` re-exports it.
ENGINES: tuple[str, ...] = tuple(e.value for e in Engine)

#: One-line description per engine — the CLI derives its ``--engine`` help
#: from this table, so a new engine documents itself everywhere at once.
ENGINE_DESCRIPTIONS: dict[str, str] = {
    Engine.COMPILED.value:
        "lowers microcode to integer-indexed straight-line form (fast)",
    Engine.INTERPRETED.value:
        "the cycle-by-cycle oracle every other engine is checked against",
    Engine.VECTOR.value:
        "level-grouped ndarray kernels; batches multi-seed runs into one "
        "pass",
    Engine.NATIVE.value:
        "per-design C kernel compiled with the system toolchain and "
        "cached; falls back to 'vector' without a compiler or for "
        "Fraction/bignum inputs",
}


def engine_help(lead: str) -> str:
    """``--engine`` help text assembled from the registry (CLI helper)."""
    body = "; ".join(f"'{name}' {ENGINE_DESCRIPTIONS[name]}"
                     for name in ENGINES)
    return f"{lead}: {body}"


def coerce_engine(engine: "Engine | str") -> str:
    """Validate ``engine`` and return its canonical string value.

    Accepts an :class:`Engine` member or its string value; anything else
    raises ``ValueError`` with the historical ``unknown engine`` message.
    """
    if isinstance(engine, Engine):
        return engine.value
    try:
        return Engine(engine).value
    except ValueError:
        raise ValueError(f"unknown engine {engine!r} "
                         f"(expected one of {', '.join(ENGINES)})") from None
