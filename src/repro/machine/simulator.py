"""The clocked systolic array machine.

Executes compiled :class:`~repro.machine.microcode.Microcode` with strictly
local semantics — this is the substrate standing in for the paper's
(hypothetical) VLSI hardware:

* every cell owns a register file; an operation may read only registers
  present *in its own cell* at its cycle (same-cycle values produced earlier
  in the cell's topological order are visible — combinational forwarding);
* values move between cells only as explicit one-link-per-cycle hops;
* per cycle, per link, per named stream (module, variable) at most one value
  may cross — one physical channel per stream, the standard systolic wiring
  (violations are recorded; ``strict=True`` raises);
* host data enters only through injection events.

The machine recomputes every value from injected inputs; it never peeks at
the reference trace's values.  :func:`run` returns the machine's results
keyed like the system outputs, plus execution statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.util.lazyimport import lazy_import

nx = lazy_import("networkx")

from repro.ir.evaluate import SystemTrace, ValueKey
from repro.machine.engines import Engine, coerce_engine
from repro.machine.errors import CapacityError, MissingOperandError
from repro.machine.microcode import Microcode
from repro.obs.events import EventSink, MachineEvent

Cell = tuple[int, ...]


@dataclass
class MachineStats:
    """Execution statistics of one machine run."""

    cycles: int = 0
    first_cycle: int = 0
    last_cycle: int = 0
    cells_used: int = 0
    operations: int = 0
    hops: int = 0
    injections: int = 0
    max_registers_per_cell: int = 0
    busy_cell_cycles: int = 0
    capacity_violations: list[tuple] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy (cell, cycle) slots over the whole space-time volume."""
        volume = self.cells_used * max(self.cycles, 1)
        return self.busy_cell_cycles / volume if volume else 0.0


@dataclass
class MachineRun:
    """Results + stats of a machine execution."""

    values: dict[ValueKey, object]
    results: dict[tuple[int, ...], object]
    stats: MachineStats


def _order_same_cycle(ops: list, placement) -> list:
    """Topologically order a cell's same-cycle operations along their
    intra-cycle operand edges (a' and b' feed c' within one cell action)."""
    if len(ops) <= 1:
        return ops
    g = nx.DiGraph()
    by_key = {op.key: op for op in ops}
    g.add_nodes_from(range(len(ops)))
    index = {op.key: i for i, op in enumerate(ops)}
    for i, op in enumerate(ops):
        for operand in op.operands:
            if operand in by_key and operand != op.key:
                g.add_edge(index[operand], i)
    try:
        # Lexicographic topological order: deterministic, keeps original
        # relative order among independent operations.
        order = list(nx.lexicographical_topological_sort(g))
    except nx.NetworkXUnfeasible as exc:
        raise MissingOperandError(
            f"cyclic intra-cycle dependence at cell {ops[0].cell}, "
            f"cycle {ops[0].cycle}") from exc
    return [ops[i] for i in order]


def _last_uses(mc: Microcode) -> dict[tuple[Cell, ValueKey], int]:
    """Last cycle each value is read in each cell — drives register
    reclamation, so the reported register pressure reflects what a real
    register file would need, not the whole history."""
    last: dict[tuple[Cell, ValueKey], int] = {}
    for op in mc.operations:
        for operand in op.operands:
            key = (op.cell, operand)
            if last.get(key, mc.first_cycle - 1) < op.cycle:
                last[key] = op.cycle
    for hop in mc.hops:
        key = (hop.src, hop.key)
        if last.get(key, mc.first_cycle - 1) < hop.cycle:
            last[key] = hop.cycle
    return last


def run(mc: Microcode, trace: SystemTrace,
        inputs: Mapping[str, Callable], strict: bool = True,
        reclaim_registers: bool = True,
        engine: "Engine | str" = "interpreted",
        sink: "EventSink | None" = None) -> MachineRun:
    """Execute the microcode cycle by cycle.

    ``inputs`` binds host input names to callables (same binding as the
    reference evaluator).  ``trace`` supplies output bookkeeping (which
    values are results) — not values.  With ``reclaim_registers`` (default)
    a value's register is freed after its last local use, so
    ``stats.max_registers_per_cell`` measures true register pressure.

    ``engine`` selects the execution strategy: ``"interpreted"`` is this
    cycle-by-cycle loop — the semantic oracle; ``"compiled"`` lowers the
    microcode to integer-indexed form first
    (:mod:`repro.machine.compiled`); ``"vector"`` additionally partitions
    the lowered operation table into level-grouped ndarray kernels
    (:mod:`repro.machine.vector`); ``"native"`` compiles those kernel
    groups to a cached per-design C kernel
    (:mod:`repro.machine.native`), degrading to the vector paths when no
    C toolchain is available.  All four produce identical output.

    ``sink`` opts into the cycle-level event log: every injection, fire,
    hop, output and register reclamation is emitted as a
    :class:`~repro.obs.events.MachineEvent` (the compiled and vector
    engines derive the identical stream structurally).
    """
    engine = coerce_engine(engine)
    if engine == "compiled":
        from repro.machine.compiled import run_compiled

        return run_compiled(mc, trace, inputs, strict=strict,
                            reclaim_registers=reclaim_registers, sink=sink)
    if engine == "vector":
        from repro.machine.vector import run_vector

        return run_vector(mc, trace, inputs, strict=strict,
                          reclaim_registers=reclaim_registers, sink=sink)
    if engine == "native":
        from repro.machine.native import run_native

        return run_native(mc, trace, inputs, strict=strict,
                          reclaim_registers=reclaim_registers, sink=sink)
    # Register files spring into being on first write: explicit .get()
    # probes keep cells that merely relay or read from materialising empty
    # files (a defaultdict here used to inflate the per-cycle pressure scan).
    registers: dict[Cell, dict[ValueKey, object]] = {}
    values: dict[ValueKey, object] = {}
    stats = MachineStats()
    last_use = _last_uses(mc) if reclaim_registers else {}
    # Output values must survive to the end regardless of local use.
    protected: set[ValueKey] = set()
    for out in trace.system.outputs:
        for p in out.domain.points(trace.params):
            protected.add(ValueKey(out.module, out.var, p))

    inj_by_cycle: dict[int, list] = defaultdict(list)
    for e in mc.injections:
        inj_by_cycle[e.cycle].append(e)
    hops_by_cycle: dict[int, list] = defaultdict(list)
    for h in mc.hops:
        hops_by_cycle[h.cycle].append(h)
    ops_by_cycle: dict[int, dict[Cell, list]] = defaultdict(
        lambda: defaultdict(list))
    for op in mc.operations:
        ops_by_cycle[op.cycle][op.cell].append(op)

    busy: set[tuple[Cell, int]] = set()
    all_cells: set[Cell] = set()

    for cycle in range(mc.first_cycle, mc.last_cycle + 1):
        # Phase 1 — link transfers (reads see the pre-cycle register state).
        link_usage: dict[tuple[Cell, Cell, tuple[str, str]], ValueKey] = {}
        arrivals: list[tuple[Cell, ValueKey, object]] = []
        for hop in hops_by_cycle.get(cycle, ()):
            src_regs = registers.get(hop.src)
            if src_regs is None or hop.key not in src_regs:
                raise MissingOperandError(
                    f"cycle {cycle}: hop of {hop.key} out of {hop.src} but "
                    f"the value is not there")
            channel = (hop.src, hop.dst, hop.stream)
            if channel in link_usage and link_usage[channel] != hop.key:
                stats.capacity_violations.append(
                    (cycle, hop.src, hop.dst, hop.stream))
                if strict:
                    raise CapacityError(
                        f"cycle {cycle}: stream {hop.stream} needs link "
                        f"{hop.src}->{hop.dst} twice")
            link_usage[channel] = hop.key
            arrivals.append((hop.dst, hop.key, src_regs[hop.key]))
            all_cells.update((hop.src, hop.dst))
            if sink is not None:
                sink.emit(MachineEvent("hop", cycle, hop.dst, repr(hop.key),
                                       src=hop.src, stream=hop.stream))
        for dst, key, value in arrivals:
            registers.setdefault(dst, {})[key] = value
        stats.hops += len(arrivals)

        # Phase 2 — host injections.
        for e in inj_by_cycle.get(cycle, ()):
            value = inputs[e.input_name](*e.input_index)
            registers.setdefault(e.cell, {})[e.key] = value
            values[e.key] = value
            stats.injections += 1
            all_cells.add(e.cell)
            if sink is not None:
                sink.emit(MachineEvent("inject", cycle, e.cell, repr(e.key),
                                       name=e.input_name))

        # Phase 3 — cell operations (topologically ordered within a cell).
        for cell, ops in ops_by_cycle.get(cycle, {}).items():
            for op in _order_same_cycle(ops, mc.placement):
                regs = registers.get(cell)
                operand_values = []
                for operand in op.operands:
                    if regs is None or operand not in regs:
                        raise MissingOperandError(
                            f"cycle {cycle}, cell {cell}: {op.key} needs "
                            f"{operand}, register file has "
                            f"{sorted(map(repr, regs or ()))[:6]}...")
                    operand_values.append(regs[operand])
                if op.op is None:
                    result = operand_values[0]
                else:
                    result = op.op(*operand_values)
                if regs is None:
                    regs = registers[cell] = {}
                regs[op.key] = result
                values[op.key] = result
                busy.add((cell, cycle))
                stats.operations += 1
                all_cells.add(cell)
                if sink is not None:
                    sink.emit(MachineEvent(
                        "fire", cycle, cell, repr(op.key),
                        name=op.op.name if op.op is not None else "copy",
                        stream=op.stream))
        if registers:
            stats.max_registers_per_cell = max(
                stats.max_registers_per_cell,
                max((len(r) for r in registers.values()), default=0))
        # Reclaim registers whose last local use has passed; drop register
        # files that empty out so they stop contributing to the scan above.
        if reclaim_registers:
            reclaimed: list[tuple[Cell, ValueKey]] = []
            for cell in list(registers):
                regs = registers[cell]
                dead = [key for key in regs
                        if key not in protected
                        and last_use.get((cell, key), -10**9) <= cycle]
                for key in dead:
                    del regs[key]
                    if sink is not None:
                        reclaimed.append((cell, key))
                if not regs:
                    del registers[cell]
            if sink is not None:
                # Canonical within-cycle order: register-file iteration
                # order is an implementation detail the log must not leak.
                for cell, key in sorted(reclaimed,
                                        key=lambda r: (r[0], repr(r[1]))):
                    sink.emit(MachineEvent("reclaim", cycle, cell, repr(key)))

    stats.first_cycle = mc.first_cycle
    stats.last_cycle = mc.last_cycle
    stats.cycles = mc.span
    stats.cells_used = len(all_cells)
    stats.busy_cell_cycles = len(busy)

    # Collect host results exactly as the system's output spec defines them.
    results: dict[tuple[int, ...], object] = {}
    system = trace.system
    params = trace.params
    for out in system.outputs:
        for p in out.domain.points(params):
            binding = {**params, **dict(zip(out.domain.dims, p))}
            host_key = tuple(e.evaluate_int(binding) for e in out.key)
            key = ValueKey(out.module, out.var, p)
            if key not in values:
                raise MissingOperandError(f"output {key} was never computed")
            results[host_key] = values[key]
            if sink is not None:
                t_prod, c_prod = mc.placement[key]
                sink.emit(MachineEvent("output", t_prod, c_prod, repr(key),
                                       name=str(host_key)))
    return MachineRun(values, results, stats)
