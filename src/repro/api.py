"""The blessed public surface of the synthesis engine.

Everything a caller — the CLI, a service wrapper, a notebook — needs sits
behind this one module, so the internal package layout can keep moving
without breaking users::

    from repro import api

    design = api.synthesize(system, {"n": 8}, api.resolve_interconnect("fig2"))
    report = api.run_sweep(api.SweepSpec(
        problems=("dp", "conv-backward"),
        interconnects=("fig1", "linear"),
        param_grid=({"n": 8, "s": 4},)))

Surface groups:

* single-shot synthesis — :func:`synthesize` (accepts a canonic
  :class:`~repro.ir.program.RecurrenceSystem` or a high-level spec, and an
  optional ``pipeline=``), :func:`explore_uniform`,
  :func:`explore_interconnects`, :func:`verify_design` (single input
  binding or multi-seed batch), :class:`SynthesisOptions`,
  :class:`Design`, :func:`random_inputs` / :func:`input_factory` for
  seeded problem instances;
* execution engines — the :class:`Engine` registry (``"compiled"``,
  ``"interpreted"``, ``"vector"``, ``"native"``; members are str
  subclasses, so plain strings keep working everywhere),
  :func:`coerce_engine`, :data:`ENGINES`,
  :data:`ENGINE_DESCRIPTIONS` (the one-line help table the CLI renders),
  plus the native backend's feature gate :func:`native_available` and
  the artifact-cache identity :func:`design_token`;
* pass pipeline — :class:`Pass`, :class:`PassPipeline`,
  :class:`PipelineState`, :func:`default_pipeline` (the exact lowering
  :func:`synthesize` runs), :func:`make_pass` / :func:`available_passes`
  (registry incl. the opt-in ``cse`` pass), :func:`run_pipeline` for
  partial lowerings with access to intermediate state, and the rewrite
  layer under it — :class:`RewritePattern`, :func:`apply_patterns`,
  :func:`system_to_ir` / :func:`ir_to_system` / :func:`print_ir`;
* batch sweeps — :class:`SweepSpec`, :func:`run_sweep` (with
  ``manifest=`` resume and a ``scheduler=`` chunking-policy override),
  :class:`SweepReport`, :data:`PROBLEM_BUILDERS`,
  :func:`default_workers` (honours ``$REPRO_WORKERS``), the
  work-stealing :class:`SchedulerConfig`, and resumable manifests
  (:class:`SweepManifest`, :func:`read_manifest`,
  :class:`ManifestError`);
* persistent cache — :class:`DesignCache` (sharded ``ab/cd/<key>.json``
  store with an index and :meth:`~DesignCache.prune`),
  :class:`PruneReport`, :func:`cache_key`,
  :func:`cache_key_from_fingerprint`, :func:`system_fingerprint`;
* fuzzing — :func:`fuzz` (budgeted random round-trips of the nonuniform
  pipeline), :func:`run_case` / :class:`CaseDescriptor` /
  :class:`CaseOutcome`, and the regression corpus (:func:`load_corpus`,
  :func:`replay_corpus`);
* errors — :class:`SynthesisError` and its concrete subclasses;
* naming — :func:`resolve_interconnect`, :data:`STOCK_INTERCONNECTS`;
* observability — the span tracer (:data:`TRACER`) with its profiling
  exports (:func:`collapsed_stacks`, :func:`spans_to_chrome_trace`), the
  typed metrics registry (:data:`METRICS`, :class:`MetricsRegistry`,
  :class:`Counter` / :class:`Gauge` / :class:`Histogram`,
  :func:`render_prometheus`), live sweep progress (:class:`ProgressEvent`,
  :class:`CLIProgress`, :class:`JsonlHeartbeat`, :func:`read_heartbeat`),
  cycle-level machine event logs (:class:`EventLog`,
  :class:`MachineEvent`), persistent run metrics (:class:`RunRecord`,
  :func:`write_run_record`, :func:`load_run_record`, :func:`metrics_dir`)
  and run-record analytics (:func:`load_records`, :func:`render_report`,
  :func:`report_dict` — the engine behind ``repro report``).
"""

from repro.arrays.interconnect import (
    INTERCONNECT_ALIASES,
    STOCK_INTERCONNECTS,
    Interconnect,
    resolve_interconnect,
)
from repro.core.batch import (
    PROBLEM_BUILDERS,
    SweepJob,
    SweepReport,
    SweepResult,
    SweepSpec,
    default_workers,
    run_sweep,
)
from repro.core.cache import (
    CACHE_ENV_VAR,
    DesignCache,
    PruneReport,
    cache_key,
    cache_key_from_fingerprint,
    default_cache_dir,
    system_fingerprint,
)
from repro.core.design import Design
from repro.core.manifest import (
    ManifestError,
    SweepManifest,
    read_manifest,
)
from repro.core.scheduler import SchedulerConfig
from repro.core.errors import (
    NoScheduleExists,
    NoSpaceMapExists,
    SynthesisError,
)
from repro.core.explore import (
    ExploredDesign,
    explore_interconnects,
    explore_uniform,
    pareto_front,
)
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.core.verify import VerificationReport, design_token, verify_design
from repro.codegen.toolchain import native_available
from repro.machine.engines import (
    ENGINE_DESCRIPTIONS,
    ENGINES,
    Engine,
    coerce_engine,
    engine_help,
)
from repro.rewrite import (
    Pass,
    PassPipeline,
    PipelineState,
    RewritePattern,
    apply_patterns,
    available_passes,
    default_pipeline,
    ir_to_system,
    make_pass,
    print_ir,
    run_pipeline,
    system_to_ir,
)
from repro.fuzz import (
    CaseDescriptor,
    CaseOutcome,
    FuzzReport,
    fuzz,
    load_corpus,
    replay_corpus,
    run_case,
)
from repro.machine.analysis import CellUtilization, cell_utilization
from repro.problems import input_factory, random_inputs
from repro.obs import (
    METRICS,
    METRICS_ENV_VAR,
    TRACER,
    CLIProgress,
    Counter,
    EventLog,
    EventSink,
    Gauge,
    Histogram,
    JsonlHeartbeat,
    MachineEvent,
    MetricsRegistry,
    ProgressEvent,
    ProgressSink,
    RunRecord,
    collapsed_stacks,
    load_run_record,
    metrics_dir,
    read_heartbeat,
    render_prometheus,
    spans_to_chrome_trace,
    write_run_record,
)
from repro.report import load_records, render_report, report_dict

__all__ = [
    "CACHE_ENV_VAR",
    "CLIProgress",
    "CaseDescriptor",
    "CaseOutcome",
    "CellUtilization",
    "Counter",
    "Design",
    "DesignCache",
    "ENGINES",
    "ENGINE_DESCRIPTIONS",
    "Engine",
    "EventLog",
    "EventSink",
    "ExploredDesign",
    "FuzzReport",
    "Gauge",
    "Histogram",
    "INTERCONNECT_ALIASES",
    "Interconnect",
    "JsonlHeartbeat",
    "METRICS",
    "METRICS_ENV_VAR",
    "MachineEvent",
    "ManifestError",
    "MetricsRegistry",
    "NoScheduleExists",
    "NoSpaceMapExists",
    "PROBLEM_BUILDERS",
    "Pass",
    "PassPipeline",
    "PipelineState",
    "ProgressEvent",
    "ProgressSink",
    "PruneReport",
    "RewritePattern",
    "RunRecord",
    "STOCK_INTERCONNECTS",
    "SchedulerConfig",
    "SweepJob",
    "SweepManifest",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "SynthesisError",
    "SynthesisOptions",
    "TRACER",
    "VerificationReport",
    "apply_patterns",
    "available_passes",
    "cache_key",
    "cache_key_from_fingerprint",
    "cell_utilization",
    "coerce_engine",
    "collapsed_stacks",
    "default_cache_dir",
    "default_pipeline",
    "default_workers",
    "design_token",
    "engine_help",
    "explore_interconnects",
    "explore_uniform",
    "fuzz",
    "input_factory",
    "ir_to_system",
    "load_corpus",
    "load_records",
    "load_run_record",
    "make_pass",
    "metrics_dir",
    "native_available",
    "pareto_front",
    "print_ir",
    "random_inputs",
    "read_heartbeat",
    "read_manifest",
    "render_prometheus",
    "render_report",
    "replay_corpus",
    "report_dict",
    "resolve_interconnect",
    "run_case",
    "run_pipeline",
    "run_sweep",
    "spans_to_chrome_trace",
    "synthesize",
    "system_fingerprint",
    "system_to_ir",
    "verify_design",
    "write_run_record",
]
