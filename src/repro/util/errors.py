"""The common failure type of the synthesis engine.

Both solver families — time (``NoScheduleExists``) and space
(``NoSpaceMapExists``) — signal "no design exists within the searched
bounds" conditions.  They share this base so that batch jobs and API
callers can catch one exception type; the base carries the context a
caller needs to decide whether to escalate (which module failed, which
bounds were tried).

The class lives in :mod:`repro.util` because it must be importable from
the solver leaves without touching :mod:`repro.core` (which imports the
solvers); the blessed import surface is :mod:`repro.core.errors`, which
re-exports it alongside the concrete subclasses.
"""

from __future__ import annotations


class SynthesisError(Exception):
    """No feasible design exists within the searched bounds (or at all).

    Attributes
    ----------
    module:
        Name of the recurrence module whose sub-problem failed, or ``None``
        when the failure is a joint (multi-module) one.
    bounds:
        The bounds the failing search tried — an ``int`` coefficient bound,
        a ``(bound, offsets)`` tuple, or ``None`` when not applicable.
    """

    def __init__(self, message: str = "", *,
                 module: str | None = None,
                 bounds: object | None = None) -> None:
        super().__init__(message)
        self.module = module
        self.bounds = bounds
