"""Compatibility shim over :mod:`repro.obs.tracer`.

Historically this module owned a process-wide flat registry of counters and
stage timers.  That registry is now the hierarchical span tracer in
:mod:`repro.obs.tracer`; the tracer keeps the flat ``counters``/``timers``
view (and the ``count`` / ``stage`` / ``snapshot`` / ``report`` / ``reset``
surface) fully intact, so every historical call site keeps working — it just
additionally records a span tree when tracing is enabled.

New code should import :data:`repro.obs.TRACER` directly and use
``TRACER.span(...)``; ``STATS`` here is the same object under its historical
name, and ``Instrumentation`` aliases the tracer class so isolated
instances (tests, tools) can still be constructed.
"""

from __future__ import annotations

from repro.obs.tracer import TRACER, Tracer

#: Historical alias — an ``Instrumentation()`` is a private tracer.
Instrumentation = Tracer

#: The process-wide registry (the tracer itself).
STATS = TRACER

__all__ = ["Instrumentation", "STATS"]
