"""Lightweight instrumentation shared by the synthesis engine.

A single process-wide :data:`STATS` registry collects named counters
(candidates examined, point-cache hits, ...) and wall-clock stage timers.
The registry is deliberately simple — a couple of dicts — so that hot paths
can record a counter with one dict update and zero allocations; the CLI's
``--stats`` flag and the benchmarks read it back via :meth:`snapshot` /
:meth:`report`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Instrumentation:
    """Named counters plus accumulated per-stage wall times."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate the wall time spent inside the ``with`` block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def snapshot(self) -> dict[str, dict]:
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def report(self) -> str:
        """Human-readable summary (one line per entry, sorted by name)."""
        lines = ["instrumentation:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<40} {self.counters[name]}")
        for name in sorted(self.timers):
            lines.append(f"  {name:<40} {self.timers[name] * 1000:.1f} ms")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


STATS = Instrumentation()
