"""Small shared utilities: exact integer math and validation helpers."""

from repro.util.intmath import (
    extended_gcd,
    gcd_vector,
    integer_solve,
    is_integer_matrix,
    lcm,
)

__all__ = [
    "extended_gcd",
    "gcd_vector",
    "integer_solve",
    "is_integer_matrix",
    "lcm",
]
