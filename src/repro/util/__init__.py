"""Small shared utilities: exact integer math, validation helpers and
engine instrumentation."""

from repro.util.instrument import STATS, Instrumentation
from repro.util.intmath import (
    extended_gcd,
    gcd_vector,
    integer_solve,
    is_integer_matrix,
    lcm,
)

__all__ = [
    "STATS",
    "Instrumentation",
    "extended_gcd",
    "gcd_vector",
    "integer_solve",
    "is_integer_matrix",
    "lcm",
]
