"""Exact integer arithmetic helpers used by the scheduling and allocation
solvers.

Everything in this module works on plain Python ints or integer NumPy arrays;
no floating point is used anywhere so results are exact.  The synthesis
procedure of the paper manipulates small integer matrices (dependence
matrices, transformation matrices, interconnection matrices), for which exact
arithmetic is essential: a schedule that is off by one is not a schedule.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y = g``.

    The returned ``g`` is non-negative; ``extended_gcd(0, 0)`` has ``g = 0``.
    """
    old_r, r = int(a), int(b)
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lcm(0, x) == 0``."""
    a, b = abs(int(a)), abs(int(b))
    if a == 0 or b == 0:
        return 0
    return a // math.gcd(a, b) * b


def gcd_vector(values) -> int:
    """Non-negative gcd of an iterable of integers (0 for an empty/zero set)."""
    g = 0
    for v in values:
        g = math.gcd(g, int(v))
    return g


def is_integer_matrix(mat) -> bool:
    """True if every entry of ``mat`` is (exactly) an integer."""
    arr = np.asarray(mat)
    if arr.size == 0:
        return True
    if np.issubdtype(arr.dtype, np.integer):
        return True
    return bool(np.all(arr == np.round(arr)))


def integer_solve(A, b) -> np.ndarray | None:
    """Solve ``A @ x = b`` for an *integer* vector ``x``, or return ``None``.

    ``A`` is an integer matrix (m x n) and ``b`` an integer vector (m).  Uses
    exact fraction Gaussian elimination followed by an integrality check of
    the particular solution; suitable for the small systems produced by the
    space-mapping equations (3) of the paper.  When the system is
    under-determined a particular solution with free variables fixed to zero
    is returned (if integral).
    """
    A = np.asarray(A, dtype=object)
    b = np.asarray(b, dtype=object).reshape(-1)
    if A.ndim != 2:
        raise ValueError("A must be a matrix")
    m, n = A.shape
    if b.shape[0] != m:
        raise ValueError("dimension mismatch between A and b")
    # Exact row reduction over the rationals.
    M = [[Fraction(int(A[i, j])) for j in range(n)] + [Fraction(int(b[i]))]
         for i in range(m)]
    pivot_cols: list[int] = []
    row = 0
    for col in range(n):
        pivot = next((r for r in range(row, m) if M[r][col] != 0), None)
        if pivot is None:
            continue
        M[row], M[pivot] = M[pivot], M[row]
        pv = M[row][col]
        M[row] = [entry / pv for entry in M[row]]
        for r in range(m):
            if r != row and M[r][col] != 0:
                factor = M[r][col]
                M[r] = [er - factor * epr for er, epr in zip(M[r], M[row])]
        pivot_cols.append(col)
        row += 1
        if row == m:
            break
    # Inconsistency check: zero row with non-zero rhs.
    for r in range(row, m):
        if M[r][n] != 0:
            return None
    x = [Fraction(0)] * n
    for r, col in enumerate(pivot_cols):
        x[col] = M[r][n]
    if any(value.denominator != 1 for value in x):
        return None
    return np.array([int(value) for value in x], dtype=np.int64)
