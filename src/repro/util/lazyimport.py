"""Deferred module imports for heavy optional-on-the-hot-path dependencies.

``import repro`` is on the startup path of every CLI invocation; networkx
alone costs ~0.4 s to import but is only touched by the machine simulator,
Dilworth decomposition and dependence-DAG analyses.  A :class:`LazyModule`
stands in for the real module and imports it on first attribute access, so
cache-served commands (a warm ``repro sweep``) never pay for it.
"""

from __future__ import annotations

import importlib


class LazyModule:
    """A module proxy that imports its target on first attribute access."""

    def __init__(self, name: str) -> None:
        self.__dict__["_lazy_name"] = name
        self.__dict__["_lazy_module"] = None

    def _lazy_load(self):
        module = self.__dict__["_lazy_module"]
        if module is None:
            module = importlib.import_module(self.__dict__["_lazy_name"])
            self.__dict__["_lazy_module"] = module
        return module

    def __getattr__(self, attr: str):
        return getattr(self._lazy_load(), attr)

    def __repr__(self) -> str:
        state = "loaded" if self.__dict__["_lazy_module"] is not None \
            else "deferred"
        return f"<lazy module {self.__dict__['_lazy_name']!r} ({state})>"


def lazy_import(name: str) -> LazyModule:
    """A :class:`LazyModule` for ``name`` (e.g. ``lazy_import("networkx")``)."""
    return LazyModule(name)
