"""Ready-made broadcast-form problem statements for the transformer.

These are the *natural* formulations (with broadcasts) from which
:func:`repro.transform.reductions.build_recurrence` derives canonic-form
recurrences automatically — the step the paper performs by hand at the start
of Section II.C.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.affine import const, var
from repro.ir.ops import ADD, MUL
from repro.transform.reductions import WeightedReduction
from repro.transform.streams import StreamSpec

I, K = var("i"), var("k")


def convolution_reduction() -> WeightedReduction:
    """``y_i = sum_{k=1..s} w[k] * x[i-k+1]`` — Example 1.

    Stream ``w`` reads host element ``k`` (constant along ``(1, 0)``),
    stream ``x`` reads ``i - k + 1`` (constant along ``(1, 1)``).
    """
    return WeightedReduction(
        name="conv",
        dims=("i", "k"),
        outer_range=(const(1), var("n")),
        inner_range=(const(1), var("s")),
        streams=(StreamSpec("w", (K,)),
                 StreamSpec("x", (I - K + 1,))),
        term=MUL,
        combine=ADD,
        params=("n", "s"))


def matvec_reduction() -> WeightedReduction:
    """``y_i = sum_{j=1..n} A[i,j] * x[j]`` — matrix-vector product.

    ``A`` is consumed once per point (no pipelining direction exists; it
    enters directly), ``x_j`` is constant along ``(1, 0)`` and pipelines.
    """
    return WeightedReduction(
        name="matvec",
        dims=("i", "k"),
        outer_range=(const(1), var("n")),
        inner_range=(const(1), var("n")),
        streams=(StreamSpec("A", (I, K)),
                 StreamSpec("x", (K,))),
        term=MUL,
        combine=ADD,
        params=("n",))


def convolution_transform_inputs(x: Sequence[float],
                                 w: Sequence[float]) -> dict:
    """Input bindings for the *derived* convolution systems.

    Unlike the hand-written recurrences — which route the zero padding
    through a dedicated ``zero`` input — the derived systems fetch
    ``x[i-k+1]`` directly at the pipeline boundary, so the binding pads.
    """
    xs = list(x)
    ws = list(w)

    def x_in(m: int) -> float:
        return xs[m - 1] if 1 <= m <= len(xs) else 0.0

    def w_in(k: int) -> float:
        return ws[k - 1]

    return {"x": x_in, "w": w_in}


def matvec_transform_inputs(A, x) -> dict:
    """Input bindings for the derived matvec system (1-based)."""
    return {"A": lambda i, j: A[i - 1][j - 1],
            "x": lambda j: x[j - 1]}
