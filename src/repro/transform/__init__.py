"""Algorithm transformations (Section II.C): adding indices, introducing
pipelining variables, eliminating broadcasts, and choosing accumulation
directions — deriving canonic-form recurrences from natural broadcast-form
statements."""

from repro.transform.catalog import (
    convolution_reduction,
    convolution_transform_inputs,
    matvec_reduction,
    matvec_transform_inputs,
)
from repro.transform.reductions import (
    TransformError,
    WeightedReduction,
    build_recurrence,
    fused,
)
from repro.transform.streams import StreamSpec, propagation_direction

__all__ = [
    "StreamSpec",
    "TransformError",
    "WeightedReduction",
    "build_recurrence",
    "convolution_reduction",
    "convolution_transform_inputs",
    "fused",
    "matvec_reduction",
    "matvec_transform_inputs",
    "propagation_direction",
]
