"""Input streams and the pipelining (broadcast-elimination) analysis.

Section II.C: "The goal of such transformations is to enhance pipelining and
local communication in an algorithm.  This is accomplished by (i) adding
indices to existing variables, (ii) renaming variables, or (iii) introducing
new variables."

A :class:`StreamSpec` describes how an input variable is consumed by the
computation at each index point: ``host_index`` gives, per point, which host
element is read.  Broadcast elimination finds a *propagation direction* — a
lattice direction along which the consumed element does not change — so the
value can travel cell to cell instead of being broadcast: for convolution,
``w_k`` is constant along ``(1, 0)`` and ``x_{i-k+1}`` along ``(1, 1)``,
which is precisely how recurrences (4)/(5) pipeline them.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Sequence

import numpy as np

from repro.ir.affine import AffineExpr
from repro.space.diophantine import solve_integer_system


@dataclass(frozen=True)
class StreamSpec:
    """One input variable: name + host index map over the loop dims."""

    name: str
    host_index: tuple[AffineExpr, ...]

    def coefficient_matrix(self, dims: Sequence[str]) -> np.ndarray:
        """Rows = host coordinates, columns = loop dims."""
        rows = []
        for e in self.host_index:
            rows.append([int(e.coeff(d)) for d in dims])
        return np.array(rows, dtype=object)


def _primitive(vector: Sequence[int]) -> tuple[int, ...]:
    g = 0
    for v in vector:
        g = gcd(g, abs(int(v)))
    if g == 0:
        return tuple(int(v) for v in vector)
    reduced = [int(v) // g for v in vector]
    # Canonical sign: first non-zero component positive.
    for v in reduced:
        if v != 0:
            if v < 0:
                reduced = [-u for u in reduced]
            break
    return tuple(reduced)


def propagation_direction(stream: StreamSpec,
                          dims: Sequence[str]) -> tuple[int, ...] | None:
    """A primitive lattice direction along which the stream's host element
    is invariant, or ``None`` when no such direction exists (the value is
    used at a single point per host element and needs no pipelining).

    Solves the integer null space of the host-index coefficient matrix and
    returns the first (preference-ordered) primitive generator.
    """
    A = stream.coefficient_matrix(dims)
    zero = np.zeros(A.shape[0], dtype=object)
    solution = solve_integer_system(A, zero)
    if solution is None:
        return None
    _, N = solution
    if N.shape[1] == 0:
        return None
    candidates = [
        _primitive([int(v) for v in N[:, k]]) for k in range(N.shape[1])]
    candidates = [c for c in candidates if any(v != 0 for v in c)]
    if not candidates:
        return None
    candidates.sort(key=lambda c: (sum(abs(v) for v in c), c))
    return candidates[0]
