"""Derivation of canonic-form accumulation recurrences (Section II.C).

A :class:`WeightedReduction` states a problem in its natural broadcast form::

    y_i = reduce_{k = lo..hi} combine of term(in_1[e_1(i,k)], in_2[e_2(i,k)], ...)

(for convolution: ``y_i = sum_k w[k] * x[i-k+1]``).  :func:`build_recurrence`
performs the paper's three transformations automatically:

1. **add indices** — every stream becomes a 2-index array variable;
2. **introduce new variables / eliminate broadcast** — each stream is
   pipelined along its :func:`propagation_direction`; the accumulator ``y``
   gets a chain along ``k``;
3. **choose an index transformation** — ``direction="backward"`` accumulates
   with k increasing (the paper's recurrence (4)); ``"forward"`` with k
   decreasing (recurrence (5)).

The generated systems are semantically identical to the hand-written ones in
:mod:`repro.problems.convolution` (tested), and the same machinery derives
matrix-vector product and friends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.ir.affine import AffineExpr, var
from repro.ir.indexset import Polyhedron, eq, ge, le
from repro.ir.ops import IDENTITY, Op, make_op
from repro.ir.predicates import Predicate, TRUE, at_least
from repro.ir.program import Module, OutputSpec, RecurrenceSystem
from repro.ir.statements import ComputeRule, Equation, InputRule
from repro.ir.variables import Ref
from repro.transform.streams import StreamSpec, propagation_direction


class TransformError(Exception):
    """The reduction's shape defeats the automatic transformations."""


@dataclass(frozen=True)
class WeightedReduction:
    """A broadcast-form reduction over a rectangular 2-index domain.

    ``dims = (outer, inner)``: the outer index enumerates outputs, the inner
    one the reduction.  Bounds are symbolic parameters (inclusive).
    """

    name: str
    dims: tuple[str, str]
    outer_range: tuple[AffineExpr, AffineExpr]
    inner_range: tuple[AffineExpr, AffineExpr]
    streams: tuple[StreamSpec, ...]
    term: Op
    combine: Op
    params: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.term.arity != len(self.streams):
            raise ValueError("term arity must equal the number of streams")
        if self.combine.arity != 2:
            raise ValueError("combine must be binary")

    def domain(self) -> Polyhedron:
        outer, inner = self.dims
        return Polyhedron(
            self.dims,
            [ge(var(outer), self.outer_range[0]),
             le(var(outer), self.outer_range[1]),
             ge(var(inner), self.inner_range[0]),
             le(var(inner), self.inner_range[1])],
            self.params)


def fused(combine: Op, term: Op) -> Op:
    return make_op(f"{combine.name}_after_{term.name}", term.arity + 1,
                   lambda acc, *xs: combine.fn(acc, term.fn(*xs)),
                   components=(combine, term))


def _conjunction(exprs) -> Predicate:
    pred = TRUE
    for e in exprs:
        if e.is_constant():
            if e.const_term < 0:
                raise TransformError(f"unsatisfiable guard {e} >= 0")
            continue
        pred = pred & at_least(e, 0)
    return pred


def _stream_equation(reduction: WeightedReduction, stream: StreamSpec,
                     domain: Polyhedron) -> Equation:
    dims = reduction.dims
    d = propagation_direction(stream, dims)
    if d is None:
        # Each host element is consumed at exactly one point: plain input.
        return Equation(stream.name,
                        (InputRule(stream.name, stream.host_index),))
    shift = {name: var(name) - delta
             for name, delta in zip(dims, d) if delta != 0}
    interior = _conjunction([e.substitute(shift) for e in domain.constraints])
    pred_ref = Ref(stream.name,
                   tuple(var(n) - delta for n, delta in zip(dims, d)))
    return Equation(stream.name, (
        ComputeRule(IDENTITY, (pred_ref,), guard=interior),
        InputRule(stream.name, stream.host_index),
    ))


def build_recurrence(reduction: WeightedReduction,
                     direction: Literal["backward", "forward"] = "backward"
                     ) -> RecurrenceSystem:
    """Derive the canonic-form system for one accumulation direction.

    ``backward`` accumulates with the inner index increasing (output at the
    upper bound) — the paper's recurrence (4) for convolution; ``forward``
    with it decreasing (output at the lower bound) — recurrence (5).
    """
    outer, inner = reduction.dims
    domain = reduction.domain()
    equations = [
        _stream_equation(reduction, s, domain) for s in reduction.streams]

    inner_var = var(inner)
    if direction == "backward":
        first_guard_bound = reduction.inner_range[0]
        prev_index = inner_var - 1
        first_pred = _conjunction([inner_var - 1 - first_guard_bound])
        out_at = reduction.inner_range[1]
    elif direction == "forward":
        first_guard_bound = reduction.inner_range[1]
        prev_index = inner_var + 1
        first_pred = _conjunction([first_guard_bound - 1 - inner_var])
        out_at = reduction.inner_range[0]
    else:
        raise ValueError(f"unknown direction {direction!r}")

    stream_refs = tuple(
        Ref(s.name, (var(outer), inner_var)) for s in reduction.streams)
    acc_name = "y"
    if any(s.name == acc_name for s in reduction.streams):
        acc_name = "__acc"
    acc = Equation(acc_name, (
        ComputeRule(fused(reduction.combine, reduction.term),
                    (Ref(acc_name, (var(outer), prev_index)),) + stream_refs,
                    guard=first_pred),
        ComputeRule(reduction.term, stream_refs, guard=TRUE),
    ))
    module = Module(reduction.name, reduction.dims, domain,
                    equations + [acc])
    out_domain = Polyhedron(
        reduction.dims,
        [ge(var(outer), reduction.outer_range[0]),
         le(var(outer), reduction.outer_range[1]),
         *eq(inner_var, out_at)],
        reduction.params)
    return RecurrenceSystem(
        f"{reduction.name}-{direction}", [module],
        outputs=[OutputSpec(reduction.name, acc_name, out_domain,
                            (var(outer),))],
        input_names=tuple(s.name for s in reduction.streams),
        params=reduction.params)
