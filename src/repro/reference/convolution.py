"""Sequential reference for the convolution problems of Section II.C."""

from __future__ import annotations

from typing import Sequence


def convolve(x: Sequence[float], w: Sequence[float]) -> list[float]:
    """``y_i = sum_{k=1..s} w_k * x_{i-k+1}`` with 1-based indexing and zero
    padding (``x_m = 0`` for ``m < 1``); returns ``[y_1 .. y_n]``."""
    n, s = len(x), len(w)
    out = []
    for i in range(1, n + 1):
        acc = 0.0
        for k in range(1, s + 1):
            m = i - k + 1
            if m >= 1:
                acc += w[k - 1] * x[m - 1]
        out.append(acc)
    return out


def recursive_convolve(w: Sequence[float], seeds: Sequence[float],
                       n: int) -> list[float]:
    """Recursive convolution (Example 2): ``y_i = sum_{k=1..s} w_k y_{i-k}``.

    ``seeds`` supplies ``y_0, y_{-1}, ..., y_{1-s}`` (in that order);
    returns ``[y_1 .. y_n]``."""
    s = len(w)
    if len(seeds) < s:
        raise ValueError(f"need {s} seed values, got {len(seeds)}")

    def y(m: int) -> float:
        # m <= 0: seeds[-m] is y_m.
        return seeds[-m]

    out: list[float] = []
    for i in range(1, n + 1):
        acc = 0.0
        for k in range(1, s + 1):
            prev = i - k
            acc += w[k - 1] * (out[prev - 1] if prev >= 1 else y(prev))
        out.append(acc)
    return out
