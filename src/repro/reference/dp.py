"""Sequential reference for the dynamic-programming recurrence (8).

``c_{i,j} = min_{i<k<j} f(c_{i,k}, c_{k,j})`` with seeds ``c_{i,i+1}`` —
the shape shared by optimal parenthesization and (interval) shortest path.
"""

from __future__ import annotations

from typing import Callable, Sequence


def dp_table(n: int, seed: Callable[[int], object],
             f: Callable, h: Callable = min) -> dict[tuple[int, int], object]:
    """Evaluate recurrence (8): returns ``{(i, j): c_{i,j}}`` for
    ``1 <= i < j <= n`` (including the seed diagonal ``j = i + 1``)."""
    c: dict[tuple[int, int], object] = {}
    for i in range(1, n):
        c[(i, i + 1)] = seed(i)
    for span in range(2, n):
        for i in range(1, n - span + 1):
            j = i + span
            best = None
            for k in range(i + 1, j):
                value = f(c[(i, k)], c[(k, j)])
                best = value if best is None else h(best, value)
            c[(i, j)] = best
    return c


def min_plus_dp(weights: Sequence[float], n: int) -> dict[tuple[int, int], float]:
    """Min-plus instance: ``f = +``, ``h = min``, seed ``c_{i,i+1} = w_i``."""
    if len(weights) < n - 1:
        raise ValueError(f"need {n - 1} seed weights, got {len(weights)}")
    return dp_table(n, lambda i: weights[i - 1], lambda a, b: a + b, min)


def matrix_chain(dims: Sequence[int]) -> dict[tuple[int, int], tuple]:
    """Optimal parenthesization of a matrix chain via recurrence (8).

    ``dims`` are the ``n`` boundary dimensions ``r_1 .. r_n`` of a chain of
    ``n - 1`` matrices (matrix ``A_i`` is ``r_i x r_{i+1}``).  Values are
    tuples ``(r_left, r_right, cost, tree)``; ``h`` minimises by
    ``(cost, tree)`` so ties break deterministically.
    """
    n = len(dims)

    def seed(i: int) -> tuple:
        return (dims[i - 1], dims[i], 0, f"A{i}")

    def f(left: tuple, right: tuple) -> tuple:
        rl, rm, cl, tl = left
        rm2, rr, cr, tr = right
        assert rm == rm2, "inner dimensions must agree"
        return (rl, rr, cl + cr + rl * rm * rr, f"({tl}*{tr})")

    def h(a: tuple, b: tuple) -> tuple:
        return min(a, b, key=lambda v: (v[2], v[3]))

    return dp_table(n, seed, f, h)


def optimal_parenthesization(dims: Sequence[int]) -> tuple[int, str]:
    """(cost, parenthesisation) of the full chain."""
    table = matrix_chain(dims)
    n = len(dims)
    _, _, cost, tree = table[(1, n)]
    return cost, tree
