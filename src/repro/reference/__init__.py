"""Sequential golden models the systolic designs are validated against."""

from repro.reference.convolution import convolve, recursive_convolve
from repro.reference.dp import (
    dp_table,
    matrix_chain,
    min_plus_dp,
    optimal_parenthesization,
)

__all__ = [
    "convolve",
    "dp_table",
    "matrix_chain",
    "min_plus_dp",
    "optimal_parenthesization",
    "recursive_convolve",
]
