"""The unified synthesis error surface.

All "no design exists" failures share the :class:`SynthesisError` base, so
batch jobs and API callers catch a single type::

    from repro.core.errors import SynthesisError
    try:
        design = synthesize(system, params, interconnect)
    except SynthesisError as exc:
        print(exc.module, exc.bounds)   # which sub-problem, which bounds

The concrete subclasses are raised by the solvers that own them:

* :class:`NoScheduleExists` — system (1) has no linear time function within
  the search bound (:mod:`repro.schedule.solver` / ``multimodule``);
* :class:`NoSpaceMapExists` — no joint allocation satisfies the local and
  global constraints (:mod:`repro.space.multimodule`).

(The base class physically lives in :mod:`repro.util.errors` so the solver
leaves can import it without a cycle; this module is the blessed import
point.)
"""

from repro.schedule.solver import NoScheduleExists
from repro.space.multimodule import NoSpaceMapExists
from repro.util.errors import SynthesisError

__all__ = [
    "NoScheduleExists",
    "NoSpaceMapExists",
    "SynthesisError",
]
