"""Parallel batch-synthesis sweeps over (problem × interconnect × params).

The paper's Section I payoff — "automatically generating a number of viable
algorithms ... enables the selection of an optimal algorithm among a wider
set of candidates" — needs synthesis to run as a *service*, not a function
call: fan a grid of jobs out over worker processes, survive individual
infeasibilities, persist every solved design, and answer the selection
question with a Pareto front over (completion time, cell count).

Shape of a sweep::

    spec = SweepSpec(problems=("dp", "conv-backward"),
                     interconnects=("fig1", "linear"),
                     param_grid=({"n": 6, "s": 3}, {"n": 8, "s": 3}))
    report = run_sweep(spec, workers=2)
    best = report.pareto()

Execution model:

* every job is *keyed* once in the parent — the system is built and
  fingerprinted once per distinct builder, then each (params,
  interconnect, options) binding keys off that fingerprint — so the warm
  path never pays per-job synthesis-IR construction;
* with ``manifest=`` the sweep opens a
  :class:`~repro.core.manifest.SweepManifest` journal: jobs already
  recorded there are *restored* verbatim (not probed, not executed) and
  every fresh completion is journaled, so a killed sweep resumes where it
  died;
* the parent probes the :class:`~repro.core.cache.DesignCache` for the
  rest — hits (including cached *failures*) never reach a worker;
* misses go to the
  :class:`~repro.core.scheduler.WorkStealingScheduler` (``workers``
  processes, default ``os.cpu_count() - 1``, min 1, overridable via
  ``$REPRO_WORKERS``) which dispatches adaptive homogeneous chunks and
  steals on idle; ``workers=0`` forces the serial in-process path — the
  debug route with no pickling or process boundaries;
* a failed job records its :class:`~repro.util.errors.SynthesisError`
  in its :class:`SweepResult` instead of killing the sweep;
* per-job wall time and the solver's :mod:`repro.util.instrument` counters
  travel back with each result and are merged into the parent's ``STATS``;
* with ``cross_check=True`` one cached entry per sweep (the cheapest, to
  keep warm runs fast) is re-synthesized from scratch and compared against
  the stored payload — a standing guard against stale or corrupted caches.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.arrays.interconnect import Interconnect, resolve_interconnect
from repro.core.cache import (
    DesignCache,
    cache_key,
    cache_key_from_fingerprint,
    system_fingerprint,
)
from repro.core.design import Design
from repro.core.globals import link_constraints
from repro.core.manifest import SweepManifest
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.core.scheduler import SchedulerConfig, WorkStealingScheduler
from repro.core.verify import verify_design
from repro.ir.program import RecurrenceSystem
from repro.obs.progress import ProgressSink, SweepProgress
from repro.problems import (
    convolution_backward,
    convolution_forward,
    dp_system,
    input_factory,
    matmul_system,
)
from repro.util.errors import SynthesisError
from repro.util.instrument import STATS

#: name -> (system builder, parameter names the problem needs).  Builders
#: are module-level callables so jobs pickle across process boundaries.
PROBLEM_BUILDERS: dict[str, tuple[Callable[[], RecurrenceSystem],
                                  tuple[str, ...]]] = {
    "dp": (dp_system, ("n",)),
    "conv-backward": (convolution_backward, ("n", "s")),
    "conv-forward": (convolution_forward, ("n", "s")),
    "matmul": (matmul_system, ("n",)),
}


def resolve_problem(name: str) -> tuple[Callable[[], RecurrenceSystem],
                                        tuple[str, ...]]:
    try:
        return PROBLEM_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown problem {name!r}; choose from "
                       f"{sorted(PROBLEM_BUILDERS)}") from None


def default_workers() -> int:
    """One process per core minus one, at least 1.

    ``$REPRO_WORKERS`` overrides (clamped to ≥ 1) — the knob CI and
    shared boxes use to stop a sweep claiming every core.  A value that
    does not parse as an integer is ignored.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass(frozen=True)
class SweepJob:
    """One synthesis task: a problem instance on one interconnect."""

    problem: str
    builder: Callable[[], RecurrenceSystem]
    params: tuple[tuple[str, int], ...]          # sorted, hashable
    interconnect: Interconnect
    options: SynthesisOptions = SynthesisOptions()
    verify_seeds: int = 0

    @property
    def params_dict(self) -> dict[str, int]:
        return dict(self.params)

    def label(self) -> str:
        p = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.problem}({p}) on {self.interconnect.name}"


@dataclass(frozen=True)
class SweepSpec:
    """The sweep space: problems × interconnects × parameter bindings.

    ``param_grid`` entries may carry parameters a problem does not use
    (e.g. ``s`` for ``dp``); each job keeps only the parameters its problem
    needs, and jobs that collapse to the same binding are deduplicated.

    ``verify_seeds > 0`` makes every solved design (fresh or cached) run
    through :func:`~repro.core.verify.verify_design` with that many seeded
    random instances; ``options.engine`` picks the execution backend —
    ``"vector"`` checks all seeds in one batched kernel pass.
    """

    problems: tuple[str, ...]
    interconnects: tuple["str | Interconnect", ...]
    param_grid: tuple[Mapping[str, int], ...]
    options: SynthesisOptions = SynthesisOptions()
    verify_seeds: int = 0

    def jobs(self) -> list[SweepJob]:
        out: list[SweepJob] = []
        seen: set[tuple] = set()
        for prob in self.problems:
            builder, needed = resolve_problem(prob)
            for ic in self.interconnects:
                icobj = resolve_interconnect(ic)
                for binding in self.param_grid:
                    missing = [k for k in needed if k not in binding]
                    if missing:
                        raise KeyError(
                            f"problem {prob!r} needs parameters {missing} "
                            f"absent from grid entry {dict(binding)}")
                    params = tuple(sorted(
                        (k, int(binding[k])) for k in needed))
                    sig = (prob, icobj.name, params)
                    if sig in seen:
                        continue
                    seen.add(sig)
                    out.append(SweepJob(prob, builder, params, icobj,
                                        self.options, self.verify_seeds))
        return out


@dataclass
class SweepResult:
    """Outcome of one job — success or recorded failure, fresh or cached."""

    problem: str
    params: dict[str, int]
    interconnect: str
    key: str
    ok: bool
    engine: str = ""
    cache_hit: bool = False
    cells: int | None = None
    completion_time: int | None = None
    wall_time: float = 0.0              # this run's cost (probe or solve)
    solve_time: float = 0.0             # the original synthesis cost
    error_type: str | None = None
    error: str | None = None
    error_module: str | None = None
    stats: dict = field(default_factory=dict)
    design_payload: dict | None = None
    verify_seeds: int = 0               # seeds cross-checked (0 = not asked)
    verify_failures: list[str] = field(default_factory=list)

    @property
    def identity(self) -> str:
        """Engine-qualified job identity, ``<cache key>::<engine>``.

        The cache key deliberately excludes the engine (it does not change
        the synthesized design), so two jobs differing only in engine share
        ``key``.  Anything that must treat them as distinct jobs — manifest
        journaling, stats dedup, cross-check attribution — keys by this
        instead.
        """
        return f"{self.key}::{self.engine}"

    @property
    def verified(self) -> "bool | None":
        """``True``/``False`` once verification ran, ``None`` otherwise."""
        if self.verify_seeds == 0:
            return None
        return not self.verify_failures

    def label(self) -> str:
        p = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.problem}({p}) on {self.interconnect}"

    def design(self, system: RecurrenceSystem) -> Design:
        """Rebuild the full design (successful results only)."""
        if not self.ok or self.design_payload is None:
            raise ValueError(f"{self.label()}: no design (job failed)")
        design = Design.from_dict(self.design_payload, system)
        design.constraints = link_constraints(system, design.params)
        return design

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "params": dict(self.params),
            "interconnect": self.interconnect,
            "key": self.key,
            "ok": self.ok,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
            "cells": self.cells,
            "completion_time": self.completion_time,
            "wall_time": self.wall_time,
            "solve_time": self.solve_time,
            "error_type": self.error_type,
            "error": self.error,
            "error_module": self.error_module,
            "design": self.design_payload,
            "verify_seeds": self.verify_seeds,
            "verify_failures": list(self.verify_failures),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepResult":
        """Inverse of :meth:`to_dict` — how a
        :class:`~repro.core.manifest.SweepManifest` restores journaled
        results.  ``stats`` stays empty: worker deltas were merged into
        the recording process and do not belong in a journal."""
        return cls(
            problem=payload["problem"],
            params=dict(payload["params"]),
            interconnect=payload["interconnect"],
            key=payload["key"],
            ok=payload["ok"],
            engine=payload.get("engine", ""),
            cache_hit=payload.get("cache_hit", False),
            cells=payload.get("cells"),
            completion_time=payload.get("completion_time"),
            wall_time=payload.get("wall_time", 0.0),
            solve_time=payload.get("solve_time", 0.0),
            error_type=payload.get("error_type"),
            error=payload.get("error"),
            error_module=payload.get("error_module"),
            design_payload=payload.get("design"),
            verify_seeds=payload.get("verify_seeds", 0),
            verify_failures=list(payload.get("verify_failures") or ()),
        )

    def _sort_key(self) -> tuple:
        # Engine last: same-key jobs under different engines get a stable
        # relative order, keeping multi-engine reports byte-stable.
        return (self.problem, self.interconnect,
                tuple(sorted(self.params.items())), self.engine)


@dataclass
class SweepReport:
    """Everything a sweep produced, plus the bookkeeping around it."""

    results: list[SweepResult]
    wall_time: float
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    cross_check: str | None = None

    @property
    def ok_results(self) -> list[SweepResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> list[SweepResult]:
        return [r for r in self.results if not r.ok]

    def pareto(self) -> list[SweepResult]:
        """Successful results not dominated in (completion time, cells),
        one representative per distinct point, sorted by completion time."""
        ok = self.ok_results
        front: list[SweepResult] = []
        seen: set[tuple[int, int]] = set()
        for r in sorted(ok, key=lambda r: (r.completion_time, r.cells,
                                           r._sort_key())):
            tag = (r.completion_time, r.cells)
            if tag in seen:
                continue
            if any(o.completion_time <= r.completion_time
                   and o.cells <= r.cells
                   and (o.completion_time, o.cells) != tag for o in ok):
                continue
            seen.add(tag)
            front.append(r)
        return front

    def summary(self) -> str:
        lines = [
            f"sweep: {len(self.results)} jobs "
            f"({len(self.ok_results)} ok, {len(self.failures)} infeasible) "
            f"in {self.wall_time:.2f}s with {self.workers} worker(s)",
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses",
        ]
        verified = [r for r in self.results if r.verify_seeds]
        if verified:
            bad = [r for r in verified if not r.verified]
            total = sum(r.verify_seeds for r in verified)
            lines.append(f"verify: {len(verified)} design(s), "
                         f"{total} seeded runs, {len(bad)} failure(s)")
        if self.cross_check is not None:
            lines.append(f"cross-check: {self.cross_check}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "wall_time": self.wall_time,
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cross_check": self.cross_check,
            "results": [r.to_dict() for r in self.results],
        }


def _execute_job(job: SweepJob, cache_root: "str | None",
                 use_cache: bool, tracing: bool = False,
                 in_worker: bool = False) -> SweepResult:
    """Synthesize one job (worker side or serial path) and cache the
    outcome — the solved design, or the failure as a negative entry.

    Stats protocol: a *worker* process resets the global registry so the
    job's delta is exactly its own snapshot (and a reused pool worker never
    accumulates span trees).  On the serial fallback the registry belongs
    to the caller and is **left untouched** — the delta is computed by
    differencing, so sweep counters no longer leak into (or clobber)
    subsequent same-process runs.  With ``tracing`` the job's span subtree
    travels back inside ``result.stats["spans"]`` and the parent grafts it,
    mirroring the counter merge.
    """
    if in_worker:
        STATS.reset()
        if tracing:
            STATS.enable()
    t0 = time.perf_counter()
    before = STATS.snapshot()
    system = job.builder()
    key = cache_key(system, job.params_dict, job.interconnect, job.options)
    with STATS.span("sweep.job", job=job.label()) as job_span:
        try:
            design = synthesize(system, job.params_dict, job.interconnect,
                                job.options)
            error = None
        except SynthesisError as exc:
            design = None
            error = exc
    wall = time.perf_counter() - t0
    after = STATS.snapshot()
    delta = {
        "counters": {k: v - before["counters"].get(k, 0)
                     for k, v in after["counters"].items()
                     if v != before["counters"].get(k, 0)},
        "timers": {k: v - before["timers"].get(k, 0.0)
                   for k, v in after["timers"].items()
                   if v != before["timers"].get(k, 0.0)},
    }
    if job_span is not None and in_worker:
        # Ship the subtree; drop the worker-side copy so a reused pool
        # process does not grow an unbounded span forest.
        delta["spans"] = [job_span.to_dict()]
        STATS.discard(job_span)
    if in_worker:
        # Typed-telemetry counterpart of the counter delta: gauges and
        # stage-latency histograms recorded while tracing (counters
        # already travel through the historical channel above — shipping
        # them here too would double-count on merge).
        wire = STATS.metrics.to_wire(counters=False)
        if wire["gauges"] or wire["histograms"]:
            delta["telemetry"] = wire
    if design is not None:
        result = SweepResult(
            problem=job.problem, params=job.params_dict,
            interconnect=job.interconnect.name, key=key, ok=True,
            engine=f"{job.options.engine}",
            cells=design.cell_count,
            completion_time=design.completion_time,
            wall_time=wall, solve_time=wall, stats=delta,
            design_payload=design.to_dict())
        if job.verify_seeds > 0:
            _verify_result(job, design, result)
        if use_cache:
            DesignCache(cache_root).put(key, design, solve_time=wall)
    else:
        result = SweepResult(
            problem=job.problem, params=job.params_dict,
            interconnect=job.interconnect.name, key=key, ok=False,
            engine=f"{job.options.engine}",
            wall_time=wall, solve_time=wall, stats=delta,
            error_type=type(error).__name__, error=str(error),
            error_module=error.module)
        if use_cache:
            DesignCache(cache_root).store(key, {
                "status": "error",
                "error_type": type(error).__name__,
                "error": str(error),
                "error_module": error.module,
                "solve_time": wall,
            })
    return result


def _verify_result(job: SweepJob, design: Design,
                   result: SweepResult) -> None:
    """Cross-check a solved design on ``job.verify_seeds`` seeded random
    instances (the vector engine batches them into one kernel pass)."""
    try:
        factory = input_factory(job.problem, job.params_dict)
        with STATS.stage("sweep.verify"):
            report = verify_design(design, factory,
                                   engine=job.options.engine,
                                   seeds=range(job.verify_seeds))
        result.verify_seeds = report.seeds_checked
        result.verify_failures = list(report.failures)
    except KeyError:
        # Problems without a random-instance generator stay unverified.
        result.verify_seeds = 0
    STATS.count("sweep.verified_seeds", result.verify_seeds)


def _result_from_payload(job: SweepJob, key: str,
                         payload: dict, wall: float) -> SweepResult:
    if payload.get("status") == "ok":
        return SweepResult(
            problem=job.problem, params=job.params_dict,
            interconnect=job.interconnect.name, key=key, ok=True,
            engine=f"{job.options.engine}",
            cache_hit=True, cells=payload["cells"],
            completion_time=payload["completion_time"], wall_time=wall,
            solve_time=payload.get("solve_time", 0.0),
            design_payload=payload["design"])
    return SweepResult(
        problem=job.problem, params=job.params_dict,
        interconnect=job.interconnect.name, key=key, ok=False,
        engine=f"{job.options.engine}",
        cache_hit=True, wall_time=wall,
        solve_time=payload.get("solve_time", 0.0),
        error_type=payload.get("error_type"), error=payload.get("error"),
        error_module=payload.get("error_module"))


def _merge_stats(delta: dict, *, job_key: "str | None" = None,
                 merged: "set[str] | None" = None) -> None:
    """Fold a worker's counter/timer deltas — span subtree and typed
    telemetry included — into the parent registry (the serial path needs
    no merge: it accrued directly).

    ``job_key``/``merged`` deduplicate by job identity: a job that reaches
    the parent twice (a worker result salvaged after a pool break *and*
    its serial retry) must charge the registry once, not twice.  The
    serial-retry path pre-marks its key for the same reason.
    """
    if merged is not None and job_key is not None:
        if job_key in merged:
            STATS.count("sweep.merge_deduped")
            return
        merged.add(job_key)
    for name, value in delta.get("counters", {}).items():
        STATS.count(name, value)
    for name, value in delta.get("timers", {}).items():
        STATS.timers[name] = STATS.timers.get(name, 0.0) + value
    if STATS.enabled:
        for span_dict in delta.get("spans", ()):
            STATS.graft(span_dict)
    telemetry = delta.get("telemetry")
    if telemetry:
        STATS.metrics.merge_wire(telemetry)


def _cross_check(results: Sequence[SweepResult],
                 jobs_by_key: Mapping[str, SweepJob]) -> str | None:
    """Re-synthesize the cheapest cached success and compare payloads.

    ``jobs_by_key`` maps engine-qualified identities (see
    :attr:`SweepResult.identity`) so a cached result is always checked
    against its *own* job's builder and options — never a same-key job
    that differs only in engine.
    """
    hits = [r for r in results if r.cache_hit and r.ok
            and r.identity in jobs_by_key]
    if not hits:
        return None
    probe = min(hits, key=lambda r: (r.solve_time, r._sort_key()))
    job = jobs_by_key[probe.identity]
    fresh = synthesize(job.builder(), job.params_dict, job.interconnect,
                       job.options)
    STATS.count("sweep.cross_checks")
    if fresh.to_dict() == probe.design_payload:
        return f"ok ({probe.label()})"
    STATS.count("sweep.cross_check_mismatches")
    return (f"MISMATCH at {probe.label()}: cached payload differs from "
            "fresh synthesis — clear the cache directory")


def _key_jobs(jobs: Sequence[SweepJob]) -> list[str]:
    """Cache key per job, building + fingerprinting each distinct system
    once.

    The memo is keyed by the *builder callable*, not the problem name —
    two custom jobs may share the name ``"dp"`` while building different
    systems.  The fingerprint (repr-ing every rule of every equation)
    dominates key cost, so the warm path collapses from
    O(jobs · system size) to O(builders · system size)."""
    fingerprints: dict[Callable, str] = {}
    keys: list[str] = []
    for job in jobs:
        fp = fingerprints.get(job.builder)
        if fp is None:
            fp = system_fingerprint(job.builder())
            fingerprints[job.builder] = fp
        keys.append(cache_key_from_fingerprint(fp, job.params_dict,
                                               job.interconnect,
                                               job.options))
    return keys


def _job_identity(key: str, job: SweepJob) -> str:
    """Engine-qualified identity of one job — the counterpart of
    :attr:`SweepResult.identity` computed before any result exists."""
    return f"{key}::{job.options.engine}"


def run_sweep(spec: "SweepSpec | Iterable[SweepJob]", *,
              workers: int | None = None,
              use_cache: bool = True,
              cache_dir: "str | os.PathLike | None" = None,
              cross_check: bool = True,
              progress: "ProgressSink | Iterable[ProgressSink] | None"
              = None,
              manifest: "str | os.PathLike | None" = None,
              scheduler: "SchedulerConfig | None" = None) -> SweepReport:
    """Run every job of ``spec``; never raises on per-job infeasibility.

    ``workers=None`` uses :func:`default_workers` (which honours
    ``$REPRO_WORKERS``); ``workers=0`` forces the serial in-process path
    (useful under a debugger).  A worker process that *dies* (rather than
    failing a job) breaks only itself: completed results are salvaged and
    the unfinished jobs retry serially.  Results come back sorted by
    (problem, interconnect, params) so downstream tables are byte-stable
    regardless of completion order.

    ``manifest`` names a :class:`~repro.core.manifest.SweepManifest`
    journal file: completions already recorded there are restored without
    re-executing anything, every fresh completion is appended as it lands,
    and the resulting report renders byte-identically to the uninterrupted
    run's.  ``scheduler`` overrides the
    :class:`~repro.core.scheduler.SchedulerConfig` chunking policy.

    ``progress`` takes one sink or an iterable of sinks (see
    :mod:`repro.obs.progress`): a structured event is emitted when totals
    are known, after every finished job (cache hits and manifest-restored
    jobs included) and on completion, carrying cumulative counts,
    throughput and ETA.
    """
    jobs = spec.jobs() if isinstance(spec, SweepSpec) else list(spec)
    nworkers = default_workers() if workers is None else max(0, int(workers))
    STATS.metrics.set_gauge("sweep.workers", nworkers)
    tracker = SweepProgress.create(progress, registry=STATS.metrics)
    t0 = time.perf_counter()
    cache = DesignCache(cache_dir) if use_cache else None
    cache_root = str(cache.root) if cache is not None else None
    if tracker is not None:
        tracker.start(len(jobs))

    results: list[SweepResult] = []
    pending: list[SweepJob] = []
    jobs_by_key: dict[str, SweepJob] = {}

    # Key every job up front when anything needs identities (a cache to
    # probe or a manifest to match).  With neither, builders never run in
    # the parent at all — the crash-recovery path depends on that.  The
    # cache key excludes the engine, so manifest matching and job lookup
    # go through the engine-qualified identity: two jobs differing only
    # in engine share a key but must journal (and restore) separately.
    keys: "list[str] | None" = None
    idents: "list[str] | None" = None
    if cache is not None or manifest is not None:
        with STATS.stage("sweep.keys"):
            keys = _key_jobs(jobs)
            idents = [_job_identity(key, job)
                      for key, job in zip(keys, jobs)]
            jobs_by_key.update(zip(idents, jobs))

    journal: "SweepManifest | None" = None
    restored: set[str] = set()
    if manifest is not None:
        journal = SweepManifest.open(manifest, idents)
        for result in journal.restore():
            restored.add(result.identity)
            results.append(result)
            if tracker is not None:
                tracker.job_done(ok=result.ok, cache_hit=result.cache_hit,
                                 label=result.label(), resumed=True)
        STATS.metrics.set_gauge("sweep.jobs_resumed", len(restored))

    def _finished(result: SweepResult) -> None:
        if journal is not None:
            journal.record(result)

    hits = 0
    try:
        with STATS.stage("sweep.probe"):
            for idx, job in enumerate(jobs):
                key = keys[idx] if keys is not None else None
                if idents is not None and idents[idx] in restored:
                    continue
                p0 = time.perf_counter()
                payload = cache.load(key) if cache is not None else None
                if payload is None:
                    pending.append(job)
                    continue
                hits += 1
                result = _result_from_payload(
                    job, key, payload, time.perf_counter() - p0)
                if job.verify_seeds > 0 and result.ok:
                    _verify_result(job, result.design(job.builder()),
                                   result)
                results.append(result)
                _finished(result)
                if tracker is not None:
                    tracker.job_done(ok=result.ok, cache_hit=True,
                                     label=result.label())

        with STATS.stage("sweep.solve"):
            if not pending:
                pass
            elif nworkers == 0 or len(pending) == 1:
                for job in pending:
                    result = _execute_job(job, cache_root, use_cache)
                    results.append(result)
                    _finished(result)
                    if tracker is not None:
                        tracker.job_done(ok=result.ok, cache_hit=False,
                                         label=result.label())
            else:
                results.extend(WorkStealingScheduler(
                    pending, min(nworkers, len(pending)), cache_root,
                    use_cache, tracker, config=scheduler,
                    on_result=_finished).run())
    finally:
        if journal is not None:
            journal.close()

    check = None
    if cross_check:
        with STATS.stage("sweep.cross_check"):
            check = _cross_check(results, jobs_by_key)

    results.sort(key=SweepResult._sort_key)
    if tracker is not None:
        tracker.finish()
    return SweepReport(results=results,
                       wall_time=time.perf_counter() - t0,
                       workers=nworkers,
                       cache_hits=hits,
                       cache_misses=len(pending),
                       cross_check=check)
