"""Persistent on-disk design cache.

Synthesis is deterministic: the same (system, parameters, interconnect,
bounds) always yields the same design.  That makes every solved design
cacheable forever — a warm sweep skips the schedule and space solvers
entirely and reduces to JSON loads.

**Key scheme.**  Entries are keyed by a SHA-256 over a canonical JSON
payload of four components:

1. ``system`` — a *structural fingerprint* of the recurrence system
   (:func:`system_fingerprint`): module names, dims, domain constraints,
   every equation's rules and guards, link statements, outputs and input
   names, all rendered through their deterministic ``repr``s.  Two systems
   built by different code paths but describing the same recurrences hash
   equal; any structural edit (a new dependence, a changed guard) changes
   the key.
2. ``params`` — the concrete parameter binding, sorted by name.
3. ``interconnect`` — name plus the Δ columns (the name alone is not
   trusted: a redefined pattern must miss).
4. ``bounds`` — the :class:`~repro.core.options.SynthesisOptions` values.

Keys are therefore stable across processes and machines — nothing
position- or id-dependent enters the hash — which the test suite checks by
recomputing a key in a subprocess.

Entries live under ``~/.cache/repro-designs/`` (override with the
``REPRO_DESIGN_CACHE`` environment variable or the ``root`` argument), one
``<key>.json`` per design, written atomically so concurrent sweep workers
can share a cache directory.  Failed syntheses are cached too (negative
entries): re-running a sweep does not re-discover infeasibility the hard
way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Mapping

from repro.arrays.interconnect import Interconnect
from repro.core.design import Design
from repro.core.globals import link_constraints
from repro.core.options import SynthesisOptions
from repro.ir.program import RecurrenceSystem
from repro.util.instrument import STATS

#: Typed handles into the process metrics registry.  Incrementing through
#: them still routes via ``STATS.count`` (span attribution), but the names
#: are declared once here instead of being scattered string literals.
_HITS = STATS.metrics.counter("cache.hits")
_MISSES = STATS.metrics.counter("cache.misses")
_NEGATIVE_HITS = STATS.metrics.counter("cache.negative_hits")
_STORES = STATS.metrics.counter("cache.stores")
_NEGATIVE_STORES = STATS.metrics.counter("cache.negative_stores")

#: Environment variable overriding the cache directory.
CACHE_ENV_VAR = "REPRO_DESIGN_CACHE"

#: Bump when the payload or key layout changes incompatibly.
#: v2: ``LinkRule.__repr__`` gained ``min_gap``, which changes a link's
#: timing constraint and therefore feasibility — v1 fingerprints collided
#: across systems differing only there, letting a cached failure (negative
#: entry) poison a feasible variant.
CACHE_FORMAT_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_DESIGN_CACHE`` if set, else ``~/.cache/repro-designs``."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-designs"


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def system_fingerprint(system: RecurrenceSystem) -> str:
    """SHA-256 of the system's structure (not its Python object identity).

    Every piece that influences synthesis enters: dims, domain constraints,
    rules with guards, outputs, declared inputs.  ``repr``s throughout the
    IR are value-based (sorted coefficient maps, named ops), so the digest
    is reproducible across processes.
    """
    modules = []
    for name in sorted(system.modules):
        module = system.modules[name]
        equations = []
        for var in sorted(module.equations):
            eqn = module.equations[var]
            equations.append({
                "var": var,
                "where": repr(eqn.where),
                "rules": [repr(rule) for rule in eqn.rules],
            })
        modules.append({
            "name": module.name,
            "dims": list(module.dims),
            "domain": sorted(repr(c) for c in module.domain.constraints),
            "equations": equations,
        })
    outputs = [{
        "module": out.module,
        "var": out.var,
        "domain": sorted(repr(c) for c in out.domain.constraints),
        "key": [repr(k) for k in out.key],
    } for out in system.outputs]
    desc = {
        "format": CACHE_FORMAT_VERSION,
        "name": system.name,
        "params": sorted(system.params),
        "input_names": sorted(system.input_names),
        "modules": modules,
        "outputs": outputs,
    }
    return _sha256(_canonical_json(desc))


def cache_key(system: RecurrenceSystem, params: Mapping[str, int],
              interconnect: Interconnect,
              options: SynthesisOptions | None = None) -> str:
    """Canonical SHA-256 key of one synthesis job."""
    options = options or SynthesisOptions()
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "system": system_fingerprint(system),
        "params": {k: int(v) for k, v in sorted(params.items())},
        "interconnect": {
            "name": interconnect.name,
            "columns": [list(c) for c in interconnect.columns],
        },
        "bounds": options.to_dict(),
    }
    return _sha256(_canonical_json(payload))


class DesignCache:
    """A directory of ``<key>.json`` design payloads.

    The low-level surface (:meth:`load`, :meth:`store`) moves raw payload
    dicts; the high-level surface (:meth:`get`, :meth:`put`) moves
    :class:`Design` objects, re-deriving the global constraints on load so
    a cached design verifies exactly like a fresh one.
    """

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- raw payloads --------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored payload, or ``None`` on a miss (counted in STATS).

        A corrupt entry (interrupted writer from a pre-atomic-write era,
        disk mishap) is treated as a miss, not an error.  Counters
        distinguish hits on *negative* entries (cached infeasibility) from
        design hits, so warm-vs-cold sweep behaviour is visible in
        ``--stats``.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            _MISSES.inc()
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            _MISSES.inc()
            return None
        _HITS.inc()
        if payload.get("status") == "error":
            _NEGATIVE_HITS.inc()
        return payload

    def store(self, key: str, payload: dict) -> Path:
        """Atomically write ``payload`` under ``key`` (last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        body = json.dumps({"format": CACHE_FORMAT_VERSION, "key": key,
                           **payload}, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _STORES.inc()
        if payload.get("status") == "error":
            _NEGATIVE_STORES.inc()
        return path

    # -- designs -------------------------------------------------------------

    def get(self, key: str, system: RecurrenceSystem) -> Design | None:
        """The cached design for ``key``, rebuilt against ``system``, or
        ``None`` on a miss or a negative (failure) entry."""
        payload = self.load(key)
        if payload is None or payload.get("status") != "ok":
            return None
        design = Design.from_dict(payload["design"], system)
        design.constraints = link_constraints(system, design.params)
        return design

    def put(self, key: str, design: Design, *,
            solve_time: float = 0.0) -> Path:
        """Store a solved design with its derived metrics."""
        return self.store(key, {
            "status": "ok",
            "design": design.to_dict(),
            "cells": design.cell_count,
            "completion_time": design.completion_time,
            "solve_time": solve_time,
        })

    # -- bookkeeping ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"DesignCache({str(self.root)!r}, entries={len(self)})"
