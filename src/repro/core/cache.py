"""Persistent on-disk design cache.

Synthesis is deterministic: the same (system, parameters, interconnect,
bounds) always yields the same design.  That makes every solved design
cacheable forever — a warm sweep skips the schedule and space solvers
entirely and reduces to JSON loads.

**Key scheme.**  Entries are keyed by a SHA-256 over a canonical JSON
payload of four components:

1. ``system`` — a *structural fingerprint* of the recurrence system
   (:func:`system_fingerprint`): module names, dims, domain constraints,
   every equation's rules and guards, link statements, outputs and input
   names, all rendered through their deterministic ``repr``s.  Two systems
   built by different code paths but describing the same recurrences hash
   equal; any structural edit (a new dependence, a changed guard) changes
   the key.
2. ``params`` — the concrete parameter binding, sorted by name.
3. ``interconnect`` — name plus the Δ columns (the name alone is not
   trusted: a redefined pattern must miss).
4. ``bounds`` — the :class:`~repro.core.options.SynthesisOptions` values.

Keys are therefore stable across processes and machines — nothing
position- or id-dependent enters the hash — which the test suite checks by
recomputing a key in a subprocess.

Entries live under ``~/.cache/repro-designs/`` (override with the
``REPRO_DESIGN_CACHE`` environment variable or the ``root`` argument).

**Sharded layout.**  A million-design sweep puts a million files in the
cache; one flat directory makes every create/lookup pay a directory-scan
tax and makes ``ls`` unusable.  Entries therefore fan out over the first
two key bytes — ``ab/cd/<key>.json`` — 65 536 shard directories at ~15
entries each per million designs.  Flat-layout entries written by earlier
versions are migrated transparently: a lookup that misses the shard but
finds the flat file moves it into its shard (under the shard lock) and
proceeds as a hit.  Writes stay atomic (tempfile + ``os.replace`` inside
the shard, serialised by a per-shard ``flock`` where the platform has
one), so concurrent sweep workers can share a cache directory.  Failed
syntheses are cached too (negative entries): re-running a sweep does not
re-discover infeasibility the hard way.

**Index.**  Every store appends one JSON line to ``index.jsonl`` carrying
the entry's headline metadata (status, cells, completion time, size).
``__len__``, :meth:`entries`, :meth:`pareto` and :meth:`prune` read the
index instead of statting the world; :meth:`rebuild_index` regenerates it
from the entry files when it is lost or stale.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

try:
    import fcntl
except ImportError:                                   # non-POSIX platforms
    fcntl = None

from repro.arrays.interconnect import Interconnect
from repro.core.design import Design
from repro.core.globals import link_constraints
from repro.core.options import SynthesisOptions
from repro.ir.program import RecurrenceSystem
from repro.util.instrument import STATS

#: Typed handles into the process metrics registry.  Incrementing through
#: them still routes via ``STATS.count`` (span attribution), but the names
#: are declared once here instead of being scattered string literals.
_HITS = STATS.metrics.counter("cache.hits")
_MISSES = STATS.metrics.counter("cache.misses")
_NEGATIVE_HITS = STATS.metrics.counter("cache.negative_hits")
_STORES = STATS.metrics.counter("cache.stores")
_NEGATIVE_STORES = STATS.metrics.counter("cache.negative_stores")
_MIGRATIONS = STATS.metrics.counter("cache.migrated")
_EVICTIONS = STATS.metrics.counter("cache.evictions")
_EVICTED_BYTES = STATS.metrics.counter("cache.evicted_bytes")

#: Environment variable overriding the cache directory.
CACHE_ENV_VAR = "REPRO_DESIGN_CACHE"

#: Bump when the payload or key layout changes incompatibly.
#: v2: ``LinkRule.__repr__`` gained ``min_gap``, which changes a link's
#: timing constraint and therefore feasibility — v1 fingerprints collided
#: across systems differing only there, letting a cached failure (negative
#: entry) poison a feasible variant.
CACHE_FORMAT_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_DESIGN_CACHE`` if set, else ``~/.cache/repro-designs``."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-designs"


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def system_fingerprint(system: RecurrenceSystem) -> str:
    """SHA-256 of the system's structure (not its Python object identity).

    Every piece that influences synthesis enters: dims, domain constraints,
    rules with guards, outputs, declared inputs.  ``repr``s throughout the
    IR are value-based (sorted coefficient maps, named ops), so the digest
    is reproducible across processes.
    """
    modules = []
    for name in sorted(system.modules):
        module = system.modules[name]
        equations = []
        for var in sorted(module.equations):
            eqn = module.equations[var]
            equations.append({
                "var": var,
                "where": repr(eqn.where),
                "rules": [repr(rule) for rule in eqn.rules],
            })
        modules.append({
            "name": module.name,
            "dims": list(module.dims),
            "domain": sorted(repr(c) for c in module.domain.constraints),
            "equations": equations,
        })
    outputs = [{
        "module": out.module,
        "var": out.var,
        "domain": sorted(repr(c) for c in out.domain.constraints),
        "key": [repr(k) for k in out.key],
    } for out in system.outputs]
    desc = {
        "format": CACHE_FORMAT_VERSION,
        "name": system.name,
        "params": sorted(system.params),
        "input_names": sorted(system.input_names),
        "modules": modules,
        "outputs": outputs,
    }
    return _sha256(_canonical_json(desc))


def cache_key(system: RecurrenceSystem, params: Mapping[str, int],
              interconnect: Interconnect,
              options: SynthesisOptions | None = None) -> str:
    """Canonical SHA-256 key of one synthesis job."""
    return cache_key_from_fingerprint(system_fingerprint(system), params,
                                      interconnect, options)


def cache_key_from_fingerprint(fingerprint: str, params: Mapping[str, int],
                               interconnect: Interconnect,
                               options: SynthesisOptions | None = None
                               ) -> str:
    """:func:`cache_key` over a precomputed :func:`system_fingerprint`.

    The fingerprint (repr-ing every rule of every equation) dominates key
    cost; a sweep probing hundreds of jobs of the same problem computes it
    once per problem and keys each (params, interconnect) binding from it.
    """
    options = options or SynthesisOptions()
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "system": fingerprint,
        "params": {k: int(v) for k, v in sorted(params.items())},
        "interconnect": {
            "name": interconnect.name,
            "columns": [list(c) for c in interconnect.columns],
        },
        "bounds": options.to_dict(),
    }
    return _sha256(_canonical_json(payload))


@dataclass
class PruneReport:
    """What one :meth:`DesignCache.prune` pass removed and why."""

    examined: int = 0
    removed: int = 0
    freed_bytes: int = 0
    by_reason: dict = field(default_factory=dict)   # reason -> count
    failed: int = 0                 # doomed entries that would not unlink

    def __str__(self) -> str:
        reasons = ", ".join(f"{k}={v}" for k, v in
                            sorted(self.by_reason.items())) or "none"
        tail = f", {self.failed} failed" if self.failed else ""
        return (f"pruned {self.removed}/{self.examined} entries, "
                f"freed {self.freed_bytes} bytes ({reasons}){tail}")


class DesignCache:
    """A sharded directory of ``<key>.json`` design payloads.

    The low-level surface (:meth:`load`, :meth:`store`) moves raw payload
    dicts; the high-level surface (:meth:`get`, :meth:`put`) moves
    :class:`Design` objects, re-deriving the global constraints on load so
    a cached design verifies exactly like a fresh one.
    """

    #: Name of the append-only metadata index at the cache root.
    INDEX_NAME = "index.jsonl"

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """The sharded home of ``key``: ``<root>/ab/cd/<key>.json``."""
        if len(key) < 4:
            return self.root / f"{key}.json"
        return self.root / key[:2] / key[2:4] / f"{key}.json"

    def _flat_path(self, key: str) -> Path:
        """Where the pre-shard layout kept ``key`` (migration source)."""
        return self.root / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    @contextlib.contextmanager
    def _shard_lock(self, shard: Path):
        """An advisory per-shard ``flock`` serialising writers.

        ``os.replace`` already makes individual writes atomic; the lock
        additionally serialises migrate-vs-store races on one shard.  On
        platforms without ``fcntl`` it degrades to a no-op — atomicity
        still holds, only the migration race window stays open.
        """
        if fcntl is None:
            yield
            return
        shard.mkdir(parents=True, exist_ok=True)
        with open(shard / ".lock", "a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- raw payloads --------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored payload, or ``None`` on a miss (counted in STATS).

        A corrupt entry (interrupted writer from a pre-atomic-write era,
        disk mishap) is treated as a miss, not an error.  Counters
        distinguish hits on *negative* entries (cached infeasibility) from
        design hits, so warm-vs-cold sweep behaviour is visible in
        ``--stats``.  A flat-layout entry written by an earlier version is
        migrated into its shard on first touch.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            payload = self._load_migrating(key)
            if payload is None:
                _MISSES.inc()
                return None
        except json.JSONDecodeError:
            _MISSES.inc()
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            _MISSES.inc()
            return None
        _HITS.inc()
        if payload.get("status") == "error":
            _NEGATIVE_HITS.inc()
        return payload

    def _load_migrating(self, key: str) -> dict | None:
        """Serve ``key`` from the flat legacy layout, moving it into its
        shard so the next lookup takes the fast path."""
        flat = self._flat_path(key)
        shard_path = self.path_for(key)
        if flat == shard_path:                 # degenerate short key
            return None
        try:
            with open(flat, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        with self._shard_lock(shard_path.parent):
            try:
                if not shard_path.exists():
                    os.replace(flat, shard_path)
            except OSError:
                return payload           # racing writer won; entry is live
        _MIGRATIONS.inc()
        self._index_append({"key": key,
                            "status": payload.get("status", "ok"),
                            "cells": payload.get("cells"),
                            "completion_time": payload.get(
                                "completion_time"),
                            "bytes": shard_path.stat().st_size
                            if shard_path.exists() else 0,
                            "ts": time.time()})
        return payload

    def migrate(self) -> int:
        """Move every flat-layout ``<key>.json`` into its shard; returns
        how many entries moved (index updated per entry)."""
        moved = 0
        if not self.root.is_dir():
            return 0
        for flat in sorted(self.root.glob("*.json")):
            key = flat.stem
            if len(key) < 4:
                continue
            if self._load_migrating(key) is not None:
                moved += 1
        return moved

    def store(self, key: str, payload: dict) -> Path:
        """Atomically write ``payload`` under ``key`` (last writer wins)
        and append its metadata to the index."""
        path = self.path_for(key)
        shard = path.parent
        shard.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"format": CACHE_FORMAT_VERSION, "key": key,
                           **payload}, sort_keys=True, indent=1)
        with self._shard_lock(shard):
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(body)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        _STORES.inc()
        if payload.get("status") == "error":
            _NEGATIVE_STORES.inc()
        self._index_append({"key": key,
                            "status": payload.get("status", "ok"),
                            "cells": payload.get("cells"),
                            "completion_time": payload.get(
                                "completion_time"),
                            "bytes": len(body),
                            "ts": time.time()})
        return path

    # -- the index -----------------------------------------------------------

    def _index_append(self, record: dict) -> None:
        """One JSON line, one ``write`` — POSIX appends of a line this
        size are atomic, so concurrent workers interleave whole records."""
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(line)

    def _read_index(self) -> "dict[str, dict] | None":
        """Live records by key (last writer wins, deletions applied), or
        ``None`` when no index exists yet."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return None
        live: dict[str, dict] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue                      # torn tail of a dead writer
            key = record.get("key")
            if not key:
                continue
            if record.get("deleted"):
                live.pop(key, None)
            else:
                live[key] = record
        return live

    def _iter_entry_paths(self) -> Iterator[Path]:
        """Every entry file on disk, sharded and flat layouts both."""
        if not self.root.is_dir():
            return
        yield from self.root.glob("*.json")
        yield from self.root.glob("??/??/*.json")

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the entry files (the recovery
        path for a lost or externally-mutated cache); returns the entry
        count."""
        records = []
        for path in sorted(self._iter_entry_paths()):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                stat = path.stat()
            except (OSError, json.JSONDecodeError):
                continue
            if payload.get("format") != CACHE_FORMAT_VERSION:
                continue
            records.append({"key": payload.get("key", path.stem),
                            "status": payload.get("status", "ok"),
                            "cells": payload.get("cells"),
                            "completion_time": payload.get(
                                "completion_time"),
                            "bytes": stat.st_size,
                            "ts": stat.st_mtime})
        body = "".join(json.dumps(r, sort_keys=True,
                                  separators=(",", ":")) + "\n"
                       for r in records)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(records)

    def entries(self) -> list[dict]:
        """The index's live records, key-sorted (rebuilding the index
        from disk when none exists yet)."""
        live = self._read_index()
        if live is None:
            if self.rebuild_index() == 0:
                return []
            live = self._read_index() or {}
        return [live[k] for k in sorted(live)]

    def pareto(self) -> list[dict]:
        """Index records of successful designs not dominated in
        (completion time, cells) — the cache-wide selection question,
        answered without opening a single entry file."""
        ok = [r for r in self.entries()
              if r.get("status") == "ok"
              and r.get("completion_time") is not None
              and r.get("cells") is not None]
        front = []
        seen: set[tuple] = set()
        for r in sorted(ok, key=lambda r: (r["completion_time"],
                                           r["cells"], r["key"])):
            tag = (r["completion_time"], r["cells"])
            if tag in seen:
                continue
            if any(o["completion_time"] <= r["completion_time"]
                   and o["cells"] <= r["cells"]
                   and (o["completion_time"], o["cells"]) != tag
                   for o in ok):
                continue
            seen.add(tag)
            front.append(r)
        return front

    # -- pruning -------------------------------------------------------------

    def prune(self, *, max_age_days: "float | None" = None,
              max_bytes: "int | None" = None) -> PruneReport:
        """Evict entries older than ``max_age_days``, then oldest-first
        until the cache fits ``max_bytes``; compacts the index afterwards.
        Entries still at their flat pre-shard path are evicted in place;
        an entry that cannot be unlinked at all counts in
        :attr:`PruneReport.failed`.  Evictions land in the
        ``cache.evictions`` / ``cache.evicted_bytes`` counters."""
        report = PruneReport()
        records = self.entries()
        report.examined = len(records)
        now = time.time()
        survivors = []
        doomed: list[tuple[dict, str]] = []
        for r in records:
            age_days = (now - r.get("ts", now)) / 86400.0
            if max_age_days is not None and age_days > max_age_days:
                doomed.append((r, "age"))
            else:
                survivors.append(r)
        if max_bytes is not None:
            total = sum(r.get("bytes", 0) for r in survivors)
            for r in sorted(survivors, key=lambda r: r.get("ts", 0.0)):
                if total <= max_bytes:
                    break
                doomed.append((r, "size"))
                total -= r.get("bytes", 0)
            doomed_keys = {r["key"] for r, _ in doomed}
            survivors = [r for r in survivors
                         if r["key"] not in doomed_keys]
        for r, reason in doomed:
            # An entry may still sit at its flat pre-shard path (never
            # touched since the layout change) — evict it from wherever
            # it actually lives, and surface entries that would not go.
            path = self.path_for(r["key"])
            if not path.is_file():
                flat = self._flat_path(r["key"])
                if flat.is_file():
                    path = flat
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                report.failed += 1
                continue
            report.removed += 1
            report.freed_bytes += size
            report.by_reason[reason] = report.by_reason.get(reason, 0) + 1
            _EVICTIONS.inc()
            _EVICTED_BYTES.inc(size)
        if report.removed:
            self.rebuild_index()
        return report

    # -- designs -------------------------------------------------------------

    def get(self, key: str, system: RecurrenceSystem) -> Design | None:
        """The cached design for ``key``, rebuilt against ``system``, or
        ``None`` on a miss or a negative (failure) entry."""
        payload = self.load(key)
        if payload is None or payload.get("status") != "ok":
            return None
        design = Design.from_dict(payload["design"], system)
        design.constraints = link_constraints(system, design.params)
        return design

    def put(self, key: str, design: Design, *,
            solve_time: float = 0.0) -> Path:
        """Store a solved design with its derived metrics."""
        return self.store(key, {
            "status": "ok",
            "design": design.to_dict(),
            "cells": design.cell_count,
            "completion_time": design.completion_time,
            "solve_time": solve_time,
        })

    # -- bookkeeping ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return (self.path_for(key).is_file()
                or self._flat_path(key).is_file())

    def __len__(self) -> int:
        """Entry count from the index (no directory walk); falls back to
        a one-time rebuild when the index is absent."""
        if not self.root.is_dir():
            return 0
        live = self._read_index()
        if live is None:
            return self.rebuild_index()
        return len(live)

    def clear(self) -> int:
        """Delete every entry (sharded and flat) and the index; returns
        how many entries were removed."""
        removed = 0
        for path in list(self._iter_entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.index_path.unlink()
        except OSError:
            pass
        return removed

    def __repr__(self) -> str:
        return f"DesignCache({str(self.root)!r}, entries={len(self)})"
