"""Step 2 of the Section III procedure: restructuring the high-level spec
into a system of mutually dependent canonic-form recurrences.

Given the coarse timing function and the chain decomposition, each chain
becomes one recurrence module over ``(i^s, i_n)``:

* one **carrier** variable per argument pipelines the operand value
  ``c(i^s - d^s_j)`` through the chain's domain (rules, in first-match
  order: propagate locally; take it from the *other* chain's carrier when
  the predecessor point belongs to the other chain — the A1/A4 pattern;
  take the finished result from the combine module — the A2/A3 pattern;
  read the host seed);
* one **accumulator** variable folds ``combine`` over ``body`` along the
  chain (the chain head applies ``body`` alone);
* a **combine** module joins the chain tails (statement A5) and carries the
  final ``c`` values.

The construction is generic over the spec's dimensionality, reduction
bounds, argument structure and operations; applied to recurrence (8) it
reproduces — by derivation, not by table lookup — exactly the hand-written
system of Section IV (see ``tests/core/test_restructure.py``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.chains.decompose import ChainSpec, symbolic_chains
from repro.core.coarse import CoarseTiming, coarse_timing
from repro.ir.affine import AffineExpr, QuasiAffineExpr, var
from repro.ir.indexset import Polyhedron, ge, le
from repro.ir.ops import IDENTITY, compose_accumulate
from repro.ir.predicates import Predicate, TRUE, at_least, at_most
from repro.ir.program import (
    HighLevelSpec,
    Module,
    OutputSpec,
    RecurrenceSystem,
)
from repro.ir.statements import ComputeRule, Equation, InputRule, LinkRule
from repro.ir.variables import ExternalRef, Ref

_CARRIER_NAMES = "abuvxyz"


def _substitute_constraints(constraints, binding) -> list[AffineExpr]:
    return [e.substitute(binding) for e in constraints]


def _conjunction(exprs: Sequence[AffineExpr]) -> Predicate:
    pred = TRUE
    for e in exprs:
        if e.is_constant():
            if e.const_term < 0:
                raise ValueError(f"guard is unsatisfiable: {e} >= 0")
            continue
        pred = pred & at_least(e, 0)
    return pred


class RestructureError(Exception):
    """The spec's shape is outside what the restructurer supports."""


def _chain_domain(spec: HighLevelSpec, chain: ChainSpec) -> Polyhedron:
    """Module domain: spec domain lifted with the chain's k-range."""
    k = var(spec.reduction_index)
    constraints = list(spec.domain.constraints)
    if chain.order == "desc":
        constraints.append(ge(k, spec.k_lower))
        first = chain.first
        if isinstance(first, QuasiAffineExpr):
            # k <= floor(N/q)  <=>  q*k <= N.
            constraints.append(le(k * first.divisor, first.numerator))
        else:
            constraints.append(le(k, first))
    else:
        constraints.append(le(k, spec.k_upper))
        first = chain.first
        if isinstance(first, QuasiAffineExpr):
            # k >= floor(N/q)  <=>  q*k >= N - q + 1.
            constraints.append(ge(k * first.divisor,
                                  first.numerator - first.divisor + 1))
        else:
            constraints.append(ge(k, first))
    dims = spec.dims + (spec.reduction_index,)
    return Polyhedron(dims, constraints, spec.params)


def _carrier_dep(spec: HighLevelSpec, coarse, arg_index: int) -> tuple[int, ...]:
    """Propagation dependence of a carrier: one step along the replaced
    coordinate, in the direction of increasing coarse time."""
    t = spec.args[arg_index].replaced_coord
    coeff = dict(zip(coarse.dims, coarse.coeffs))[spec.dims[t]]
    if coeff == 0:
        raise RestructureError(
            f"coarse time is flat along {spec.dims[t]}; cannot orient the "
            f"carrier of argument {arg_index}")
    d = [0] * (len(spec.dims) + 1)
    d[t] = 1 if coeff > 0 else -1
    return tuple(d)


def _shift_binding(dims: Sequence[str], d: Sequence[int]) -> dict[str, AffineExpr]:
    """Binding mapping each dim x to ``x - d`` (the predecessor point)."""
    return {name: var(name) - delta
            for name, delta in zip(dims, d) if delta != 0}


def _operand_source_exprs(spec: HighLevelSpec, arg_index: int
                          ) -> list[AffineExpr]:
    """The index ``ρ_j(p)`` of the operand value carried for argument j,
    as expressions over the module dims."""
    arg = spec.args[arg_index]
    out: list[AffineExpr] = []
    for pos, dim in enumerate(spec.dims):
        if pos == arg.replaced_coord:
            out.append(var(spec.reduction_index))
        else:
            out.append(var(dim) - arg.offsets[pos])
    return out


def _carrier_name(arg_index: int, chain_index: int) -> str:
    return _CARRIER_NAMES[arg_index] + "p" * (chain_index + 1)


def _acc_name(spec: HighLevelSpec, chain_index: int) -> str:
    return spec.target + "p" * (chain_index + 1)


def _carrier_equation(spec: HighLevelSpec, coarse, chains: list[ChainSpec],
                      chain_index: int, arg_index: int,
                      module_names: list[str],
                      chain_domains: list[Polyhedron]) -> Equation:
    dims = spec.dims + (spec.reduction_index,)
    name = _carrier_name(arg_index, chain_index)
    d = _carrier_dep(spec, coarse, arg_index)
    pred_binding = _shift_binding(dims, d)
    own = chain_domains[chain_index]
    rules = []
    # 1 — interior propagation: the predecessor point is in our own domain.
    interior_guard = _conjunction(
        _substitute_constraints(own.constraints, pred_binding))
    pred_index = tuple(var(n) - delta for n, delta in zip(dims, d))
    rules.append(ComputeRule(IDENTITY, (Ref(name, pred_index),),
                             guard=interior_guard))
    # 2 — hand-over from the other chain's carrier (A1/A4 pattern).
    if len(chains) == 2:
        other = 1 - chain_index
        other_guard = _conjunction(_substitute_constraints(
            chain_domains[other].constraints, pred_binding))
        other_name = _carrier_name(arg_index, other)
        rules.append(LinkRule(
            ExternalRef(module_names[other], other_name, pred_index),
            guard=other_guard,
            label=f"{module_names[chain_index]}.{name}<-{module_names[other]}"))
    # 3 — finished result from the combine module (A2/A3 pattern).
    src_exprs = _operand_source_exprs(spec, arg_index)
    comb_binding = dict(zip(spec.dims, src_exprs))
    comb_guard = _conjunction(_substitute_constraints(
        spec.domain.constraints, comb_binding))
    rules.append(LinkRule(
        ExternalRef("comb", spec.target, tuple(src_exprs)),
        guard=comb_guard,
        label=f"{module_names[chain_index]}.{name}<-comb"))
    # 4 — host seed.
    init_guard = _conjunction(_substitute_constraints(
        spec.init_domain.constraints, comb_binding))
    rules.append(InputRule(spec.init_input, tuple(src_exprs),
                           guard=init_guard))
    return Equation(name, tuple(rules))


def _accumulator_equation(spec: HighLevelSpec, chain_index: int,
                          chain_domains: list[Polyhedron],
                          order: str) -> Equation:
    dims = spec.dims + (spec.reduction_index,)
    name = _acc_name(spec, chain_index)
    own = chain_domains[chain_index]
    # Accumulation reads the previous chain element: k+1 on a descending
    # chain, k-1 on an ascending one.
    step = 1 if order == "desc" else -1
    prev_binding = {spec.reduction_index: var(spec.reduction_index) + step}
    interior_guard = _conjunction(
        _substitute_constraints(own.constraints, prev_binding))
    carriers = tuple(
        Ref(_carrier_name(a, chain_index),
            tuple(var(n) for n in dims))
        for a in range(len(spec.args)))
    prev_ref = Ref(name, tuple(
        var(n) + (step if n == spec.reduction_index else 0) for n in dims))
    rules = (
        ComputeRule(compose_accumulate(spec.combine, spec.body),
                    (prev_ref,) + carriers, guard=interior_guard),
        ComputeRule(spec.body, carriers, guard=TRUE),
    )
    return Equation(name, rules)


def _combine_module(spec: HighLevelSpec, chains: list[ChainSpec],
                    module_names: list[str]) -> Module:
    dims = spec.dims
    equations: list[Equation] = []
    nonempty_preds: list[Predicate] = []
    for ci, chain in enumerate(chains):
        last = spec.k_lower if chain.order == "desc" else spec.k_upper
        tail_index = tuple(var(n) for n in dims) + (last,)
        if isinstance(chain.first, QuasiAffineExpr):
            # The chain is non-empty iff its head lies inside the reduction
            # range.  ``chain.first`` is already the head (the ascending
            # chain's numerator carries the +q shift), so:
            N, q = chain.first.numerator, chain.first.divisor
            if chain.order == "desc":
                # floor(N/q) >= k_lower  <=>  N >= q * k_lower.
                nonempty = at_least(N, spec.k_lower * q)
            else:
                # floor(N/q) <= k_upper  <=>  N <= q * k_upper + q - 1.
                nonempty = at_most(N, spec.k_upper * q + q - 1)
        else:
            nonempty = at_least(spec.k_upper - spec.k_lower, 0)
        nonempty_preds.append(nonempty)
        equations.append(Equation(
            f"end{ci}",
            (LinkRule(ExternalRef(module_names[ci], _acc_name(spec, ci),
                                  tail_index),
                      guard=TRUE, label="A5", min_gap=0),),
            where=nonempty))
    c_rules = []
    if len(chains) == 2:
        c_rules.append(ComputeRule(
            spec.combine, (Ref("end0", tuple(var(n) for n in dims)),
                           Ref("end1", tuple(var(n) for n in dims))),
            guard=nonempty_preds[0] & nonempty_preds[1]))
        c_rules.append(ComputeRule(
            IDENTITY, (Ref("end0", tuple(var(n) for n in dims)),),
            guard=nonempty_preds[0]))
        c_rules.append(ComputeRule(
            IDENTITY, (Ref("end1", tuple(var(n) for n in dims)),),
            guard=TRUE))
    else:
        c_rules.append(ComputeRule(
            IDENTITY, (Ref("end0", tuple(var(n) for n in dims)),),
            guard=TRUE))
    equations.append(Equation(spec.target, tuple(c_rules)))
    return Module("comb", dims, spec.domain, equations)


def restructure(spec: HighLevelSpec, coarse: CoarseTiming | None = None,
                params: Mapping[str, int] | None = None,
                bound: int = 3) -> RecurrenceSystem:
    """Derive the system of mutually dependent recurrences from a spec.

    Either pass a precomputed :class:`CoarseTiming` or concrete ``params``
    from which one is derived.
    """
    if coarse is None:
        if params is None:
            raise ValueError("need either a CoarseTiming or params")
        coarse = coarse_timing(spec, params, bound=bound)
    schedule = coarse.schedule
    chains = symbolic_chains(spec, schedule)
    if len(chains) > 2:
        raise RestructureError("more than two chains are not supported")
    module_names = [f"m{ci + 1}" for ci in range(len(chains))]
    chain_domains = [_chain_domain(spec, c) for c in chains]
    modules: list[Module] = []
    for ci, chain in enumerate(chains):
        equations: list[Equation] = []
        for a in range(len(spec.args)):
            equations.append(_carrier_equation(
                spec, schedule, chains, ci, a, module_names,
                chain_domains))
        equations.append(
            _accumulator_equation(spec, ci, chain_domains, chain.order))
        modules.append(Module(module_names[ci],
                              spec.dims + (spec.reduction_index,),
                              chain_domains[ci], equations))
    modules.append(_combine_module(spec, chains, module_names))
    outputs = [OutputSpec("comb", spec.target, spec.domain,
                          tuple(var(n) for n in spec.dims))]
    return RecurrenceSystem(
        f"{spec.name}-restructured", modules, outputs,
        input_names=(spec.init_input,), params=spec.params)
