"""End-to-end mapping of a (possibly multi-module) recurrence system onto a
VLSI array — Sections II.B and V of the paper in one call.

Since the pass-pipeline redesign this module is a thin entry point: the
actual lowering lives in :mod:`repro.rewrite.pipeline` as named passes
(``decompose-chains``, ``fuse-accumulators``, ``schedule``, ``allocate``,
``lower-microcode``), each traced as a ``pass.<name>`` span.  The stages
are unchanged from the historical one-shot implementation:

1. extract per-module constant dependence matrices (D, or D_1/D_2);
2. enumerate the global constraints from the link statements (A1–A5);
3. jointly solve for linear time functions (λ, μ, σ) — optimal makespan;
4. jointly solve for space maps (S', S'', S) subject to flow realisability,
   full-rank conflict-freedom and the adjacency constraints (10) — minimal
   processor count;
5. compile-check each space candidate's placement and routing on a
   value-free trace — link *bandwidth* is outside the solvers' model, so a
   solver-feasible candidate can still saturate a physical channel — and
   reject any that cannot be lowered;
6. package everything as a :class:`~repro.core.design.Design`.

Escalation: if no solution exists with homogeneous schedules / zero space
offsets, the solvers retry with offsets — "the design procedure is repeated"
(Section II.B), automated.

Callers needing a custom lowering pass ``pipeline=`` (built from
:func:`repro.rewrite.default_pipeline` via ``with_pass``/``without_pass``,
e.g. to insert the opt-in ``cse`` pass) or drive
:func:`repro.rewrite.run_pipeline` directly for access to intermediate
state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.arrays.interconnect import Interconnect
from repro.core.design import Design
from repro.core.options import _UNSET, SynthesisOptions, resolve_options
from repro.ir.program import HighLevelSpec, RecurrenceSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rewrite.passes import PassPipeline


def synthesize(source: "RecurrenceSystem | HighLevelSpec",
               params: Mapping[str, int],
               interconnect: Interconnect,
               options: SynthesisOptions | None = None, *,
               pipeline: "PassPipeline | None" = None,
               time_bound=_UNSET,
               space_bound=_UNSET,
               schedule_offsets=_UNSET,
               space_offsets=_UNSET) -> Design:
    """Synthesize a design for ``source`` on ``interconnect``.

    ``source`` is a canonic :class:`RecurrenceSystem`, or a
    :class:`HighLevelSpec` — the pipeline's ``decompose-chains`` pass then
    performs the Section III restructuring first (what
    :func:`repro.core.restructure.restructure` does standalone).

    Search bounds come from ``options`` (a :class:`SynthesisOptions`); the
    individual ``time_bound``/``space_bound``/``schedule_offsets``/
    ``space_offsets`` kwargs are retired and raise :class:`TypeError` with
    a migration hint.  ``pipeline`` overrides the default pass pipeline;
    it must still produce a design (end in ``lower-microcode``).
    """
    opts = resolve_options(options, time_bound, space_bound,
                           schedule_offsets, space_offsets)
    # Imported here, not at module top: repro.rewrite.pipeline imports the
    # restructurer through the repro.core package, which imports us.
    from repro.rewrite.pipeline import run_pipeline

    state = run_pipeline(source, params, interconnect, opts,
                         pipeline=pipeline)
    if state.design is None:
        names = pipeline.names if pipeline is not None else ()
        raise ValueError(
            f"pipeline {list(names)} did not produce a design; custom "
            "pipelines passed to synthesize() must end with the "
            "'lower-microcode' pass (use repro.rewrite.run_pipeline for "
            "partial lowerings)")
    return state.design
