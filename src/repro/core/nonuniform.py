"""End-to-end mapping of a (possibly multi-module) recurrence system onto a
VLSI array — Sections II.B and V of the paper in one call.

The pipeline:

1. extract per-module constant dependence matrices (D, or D_1/D_2);
2. enumerate the global constraints from the link statements (A1–A5);
3. jointly solve for linear time functions (λ, μ, σ) — optimal makespan;
4. jointly solve for space maps (S', S'', S) subject to flow realisability,
   full-rank conflict-freedom and the adjacency constraints (10) — minimal
   processor count;
5. compile-check each space candidate's placement and routing on a
   value-free trace — link *bandwidth* is outside the solvers' model, so a
   solver-feasible candidate can still saturate a physical channel — and
   reject any that cannot be lowered;
6. package everything as a :class:`~repro.core.design.Design`.

Escalation: if no solution exists with homogeneous schedules / zero space
offsets, the solvers retry with offsets — "the design procedure is repeated"
(Section II.B), automated.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.arrays.interconnect import Interconnect
from repro.core.design import Design
from repro.core.globals import link_constraints
from repro.core.options import _UNSET, SynthesisOptions, resolve_options
from repro.deps.extract import system_dependence_matrices
from repro.ir.evaluate import structural_trace
from repro.ir.program import RecurrenceSystem
from repro.machine.errors import MachineError
from repro.machine.microcode import compile_design
from repro.schedule.multimodule import (
    ModuleSchedulingProblem,
    normalise_start,
    solve_multimodule,
)
from repro.schedule.solver import NoScheduleExists
from repro.space.multimodule import (
    ModuleSpaceProblem,
    NoSpaceMapExists,
    solve_multimodule_space,
)
from repro.util.instrument import STATS


def synthesize(system: RecurrenceSystem, params: Mapping[str, int],
               interconnect: Interconnect,
               options: SynthesisOptions | None = None, *,
               time_bound=_UNSET,
               space_bound=_UNSET,
               schedule_offsets=_UNSET,
               space_offsets=_UNSET) -> Design:
    """Synthesize a design for ``system`` on ``interconnect``.

    Search bounds come from ``options`` (a :class:`SynthesisOptions`); the
    individual ``time_bound``/``space_bound``/``schedule_offsets``/
    ``space_offsets`` kwargs are a deprecated shim kept for older callers.
    ``space_offsets=None`` tries translation-free space maps first and
    escalates to offsets in ``[-1, 1]`` only if needed.
    """
    opts = resolve_options(options, time_bound, space_bound,
                           schedule_offsets, space_offsets)
    time_bound = opts.time_bound
    space_bound = opts.space_bound
    schedule_offsets = opts.schedule_offsets
    space_offsets = opts.space_offsets
    params = dict(params)
    deps = system_dependence_matrices(system)
    constraints = link_constraints(system, params)

    points = {}
    problems = []
    with STATS.stage("synthesize.enumerate"):
        for name, module in system.modules.items():
            arr = module.domain.points_array(params)
            points[name] = arr
            problems.append(ModuleSchedulingProblem(name, module.dims,
                                                    deps[name], arr))

    with STATS.stage("synthesize.schedule"):
        try:
            time_solution = solve_multimodule(problems, constraints,
                                              bound=time_bound,
                                              offsets=schedule_offsets)
        except NoScheduleExists:
            if tuple(schedule_offsets) == (0,):
                time_solution = solve_multimodule(
                    problems, constraints, bound=time_bound,
                    offsets=range(-time_bound, time_bound + 1))
            else:
                raise
    schedules = normalise_start(time_solution.schedules, problems, start=0)

    decomposer = interconnect.decomposer()

    def offsets_for(name: str, plan: str) -> Sequence[int]:
        if space_offsets is not None:
            return space_offsets
        if plan == "plain":
            return (0,)
        # "translated" plan: allow small offsets for low-dimensional modules
        # (combine statements) where a translation can fold their cells onto
        # another module's region — the Section VI design maps A5 to
        # cell (i+1, i).  High-dimensional modules keep offset 0: a common
        # translation never reduces their own cell count.
        module = system.modules[name]
        if len(module.dims) <= interconnect.label_dim:
            return (-1, 0, 1)
        return (0,)

    plans = ["plain"] if space_offsets is not None else ["plain", "translated"]
    best = None
    last_error: NoSpaceMapExists | None = None

    check_trace = None

    def lowering_failure(candidate) -> NoSpaceMapExists | None:
        """Physical feasibility of a candidate beyond the solvers' model.

        The space solver enforces adjacency and conflict-freedom but not
        link *bandwidth*: a minimal-cells solution can still need one
        physical channel twice in the same cycle.  Compile the candidate's
        placement and routing over a value-free trace and reject any that
        cannot be lowered."""
        nonlocal check_trace
        if check_trace is None:
            check_trace = structural_trace(system, params)
        try:
            compile_design(check_trace, schedules, candidate.maps, decomposer)
        except MachineError as exc:
            return NoSpaceMapExists(
                f"space solution does not lower: {type(exc).__name__}: {exc}")
        return None

    with STATS.stage("synthesize.space"):
        for plan in plans:
            space_problems = [
                ModuleSpaceProblem(name, system.modules[name].dims, deps[name],
                                   points[name], schedules[name],
                                   bound=space_bound,
                                   offsets=offsets_for(name, plan))
                for name in system.modules]
            try:
                candidate = solve_multimodule_space(
                    space_problems, constraints, decomposer,
                    interconnect.label_dim)
            except NoSpaceMapExists as exc:
                last_error = exc
                continue
            failure = lowering_failure(candidate)
            if failure is not None:
                last_error = failure
                continue
            if best is None or candidate.total_cells < best.total_cells:
                best = candidate
        if best is None:
            # Final escalation: offsets everywhere.
            space_problems = [
                ModuleSpaceProblem(name, system.modules[name].dims, deps[name],
                                   points[name], schedules[name],
                                   bound=space_bound, offsets=(-1, 0, 1))
                for name in system.modules]
            try:
                best = solve_multimodule_space(
                    space_problems, constraints, decomposer,
                    interconnect.label_dim)
            except NoSpaceMapExists as exc:
                error = last_error if last_error is not None else exc
                raise error from exc
            failure = lowering_failure(best)
            if failure is not None:
                raise failure
    space_solution = best

    return Design(system=system, params=params, interconnect=interconnect,
                  schedules=schedules, space_maps=space_solution.maps,
                  constraints=constraints)
