"""Synthesis options: one frozen value object instead of loose kwargs.

:func:`repro.core.nonuniform.synthesize` historically took four keyword
arguments (``time_bound``, ``space_bound``, ``schedule_offsets``,
``space_offsets``).  The batch engine needs the same knobs as a hashable,
serialisable value — they are part of the design-cache key — so they are
consolidated here.  The old kwargs went through one release of
``DeprecationWarning`` and are now rejected with a :class:`TypeError`
carrying the migration hint (see :func:`resolve_options`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.engines import Engine, coerce_engine


#: Sentinel distinguishing "not passed" from a meaningful ``None``
#: (``space_offsets=None`` means "escalate only if needed").
_UNSET = object()


@dataclass(frozen=True)
class SynthesisOptions:
    """Bounds and offset ranges of the synthesis search.

    ``time_bound`` / ``space_bound`` bound the schedule and allocation
    coefficient magnitudes; ``schedule_offsets`` is the range of per-module
    schedule constants tried before escalation; ``space_offsets=None`` tries
    translation-free space maps first and escalates to offsets in ``[-1, 1]``
    only if needed.

    ``engine`` selects the execution strategy downstream consumers
    (verification, sweep cross-checks) use to run the design's machine:
    ``"compiled"`` lowers microcode to integer-indexed form once and caches
    the artifacts on the design; ``"interpreted"`` is the cycle-by-cycle
    oracle; ``"vector"`` executes the lowered table as level-grouped
    ndarray kernels (and batches multi-seed verification into one pass);
    ``"native"`` compiles those kernels to a cached per-design C kernel
    and degrades to the vector paths when no C toolchain is available.
    It does not influence *which* design is synthesized, so it is
    deliberately **not** part of :meth:`to_dict` (and therefore not part of
    the design-cache key).
    """

    time_bound: int = 3
    space_bound: int = 1
    schedule_offsets: tuple[int, ...] = (0,)
    space_offsets: tuple[int, ...] | None = None
    engine: Engine | str = "compiled"

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule_offsets",
                           tuple(int(o) for o in self.schedule_offsets))
        if self.space_offsets is not None:
            object.__setattr__(self, "space_offsets",
                               tuple(int(o) for o in self.space_offsets))
        if self.time_bound < 1 or self.space_bound < 0:
            raise ValueError(
                f"bounds out of range: time_bound={self.time_bound}, "
                f"space_bound={self.space_bound}")
        # Engine members are str subclasses; store the canonical string so
        # equality/hash match options built from plain strings.
        object.__setattr__(self, "engine", coerce_engine(self.engine))

    def to_dict(self) -> dict:
        """JSON-safe canonical form (part of the design-cache key).

        Excludes ``engine``: execution strategy does not affect the
        synthesized design, so two options differing only in engine share
        cache entries."""
        return {
            "time_bound": self.time_bound,
            "space_bound": self.space_bound,
            "schedule_offsets": list(self.schedule_offsets),
            "space_offsets": (None if self.space_offsets is None
                              else list(self.space_offsets)),
        }

    @staticmethod
    def from_dict(data: dict) -> "SynthesisOptions":
        return SynthesisOptions(
            time_bound=data["time_bound"],
            space_bound=data["space_bound"],
            schedule_offsets=tuple(data["schedule_offsets"]),
            space_offsets=(None if data["space_offsets"] is None
                           else tuple(data["space_offsets"])))


def resolve_options(options: SynthesisOptions | None,
                    time_bound: object = _UNSET,
                    space_bound: object = _UNSET,
                    schedule_offsets: object = _UNSET,
                    space_offsets: object = _UNSET) -> SynthesisOptions:
    """Reject the legacy loose kwargs with a migration hint.

    The ``time_bound``/``space_bound``/``schedule_offsets``/``space_offsets``
    kwargs of :func:`~repro.core.nonuniform.synthesize` spent one release
    as a :class:`DeprecationWarning` shim; they now raise :class:`TypeError`
    naming the replacement so stragglers get an actionable error instead of
    a silently narrowing surface.
    """
    legacy = {name: value for name, value in [
        ("time_bound", time_bound),
        ("space_bound", space_bound),
        ("schedule_offsets", schedule_offsets),
        ("space_offsets", space_offsets),
    ] if value is not _UNSET}
    if legacy:
        kwargs = ", ".join(f"{name}={value!r}"
                           for name, value in sorted(legacy.items()))
        raise TypeError(
            f"synthesize() no longer accepts the legacy kwargs "
            f"{sorted(legacy)}; pass options=SynthesisOptions({kwargs}) "
            "instead")
    return options if options is not None else SynthesisOptions()
