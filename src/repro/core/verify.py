"""Independent verification of a synthesized design.

A design passes when *both* of these agree:

1. **Symbolic checks** — condition (1) per module, condition (2)
   conflict-freedom over the enumerated domains, the global timing gaps of
   every link instance, and flow realisability of every dependence;
2. **Physical execution** — the design compiles to microcode (placement +
   routing raise on any causality/locality violation) and the cycle-accurate
   machine, fed only host inputs at the boundary, reproduces the reference
   evaluator's results bit for bit.

The checks are deliberately independent of the solvers: they re-derive
everything from the system and the (T, S) assignments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.cache import system_fingerprint
from repro.core.design import Design
from repro.deps.extract import system_dependence_matrices
from repro.ir.evaluate import (
    build_execution_plan,
    execute_plan,
    trace_execution,
)
from repro.ir.vector import execute_program, lower_plan
from repro.machine.compiled import lower
from repro.machine.engines import ENGINES as _ENGINES
from repro.machine.engines import Engine, coerce_engine
from repro.machine.errors import CapacityError
from repro.machine.microcode import compile_design
from repro.machine.native import nativize
from repro.machine.simulator import MachineStats, run
from repro.machine.vector import vectorize
from repro.space.allocation import conflict_free, flows_realisable
from repro.util.instrument import STATS

ENGINES = _ENGINES  # historical name; the registry lives in machine.engines


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_design`."""

    schedule_valid: bool = True
    conflict_free: bool = True
    global_gaps_ok: bool = True
    flows_ok: bool = True
    machine_matches_reference: bool = True
    failures: list[str] = field(default_factory=list)
    machine_stats: MachineStats | None = None
    seeds_checked: int = 1

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "OK" if self.ok else "FAILED: " + "; ".join(self.failures)
        return f"VerificationReport({status})"


def _symbolic_checks(design: Design, report: VerificationReport,
                     decomposer) -> None:
    """Conditions (1)–(3) and the global gaps — value-independent."""
    deps = system_dependence_matrices(design.system)
    for name in design.system.modules:
        sched = design.schedules[name]
        smap = design.space_maps[name]
        if not sched.satisfies(deps[name]):
            report.schedule_valid = False
            report.failures.append(
                f"module {name}: T violates condition (1) on "
                f"{sched.violated(deps[name])}")
        pts = design.module_points(name)
        if not conflict_free(sched, smap, pts):
            report.conflict_free = False
            report.failures.append(
                f"module {name}: two computations share (time, cell)")
        if len(deps[name]) and not flows_realisable(
                deps[name], sched, smap, decomposer):
            report.flows_ok = False
            report.failures.append(
                f"module {name}: some dependence flow is not realisable")

    for gc in design.constraints:
        dst_t = design.schedules[gc.dst_module].times(gc.dst_points)
        src_t = design.schedules[gc.src_module].times(gc.src_points)
        if not gc.timing_ok(dst_t, src_t):
            report.global_gaps_ok = False
            report.failures.append(
                f"global constraint {gc.name}: gap below {gc.min_gap}")


def _annotate_machine(stats: MachineStats) -> None:
    """Attach the machine's headline numbers to the active tracer span so a
    recorded run carries them without any caller plumbing."""
    STATS.annotate(cycles=stats.cycles, cells=stats.cells_used,
                   operations=stats.operations, hops=stats.hops,
                   utilization=round(stats.utilization, 3))


def _check_results(report: VerificationReport, machine_results: Mapping,
                   reference_results: Mapping, prefix: str) -> None:
    if machine_results != reference_results:
        report.machine_matches_reference = False
        diffs = [k for k in reference_results
                 if machine_results.get(k) != reference_results[k]]
        report.failures.append(
            f"{prefix}machine results differ from reference at {diffs[:5]}")


def _verify_looped(design: Design, report: VerificationReport, decomposer,
                   cache, input_sets, prefixes, strict_capacity: bool,
                   engine: str) -> None:
    """One reference + machine value pass per input set (the compiled and
    interpreted engines)."""
    for prefix, inputs in zip(prefixes, input_sets):
        with STATS.stage("verify.reference"):
            if cache is not None:
                plan = cache.get("plan")
                if plan is None:
                    plan = cache["plan"] = build_execution_plan(
                        design.system, design.params)
                trace = execute_plan(plan, inputs)
            else:
                trace = trace_execution(design.system, design.params, inputs)
        try:
            if cache is not None:
                with STATS.stage("verify.compile"):
                    lowered = cache.get("machine")
                    if lowered is None:
                        mc = compile_design(trace, design.schedules,
                                            design.space_maps, decomposer)
                        lowered = cache["machine"] = lower(mc, trace)
                with STATS.stage("verify.machine"):
                    machine = lowered.execute(inputs, strict=strict_capacity)
                    _annotate_machine(machine.stats)
            else:
                with STATS.stage("verify.compile"):
                    mc = compile_design(trace, design.schedules,
                                        design.space_maps, decomposer)
                with STATS.stage("verify.machine"):
                    machine = run(mc, trace, inputs, strict=strict_capacity,
                                  engine=engine)
                    _annotate_machine(machine.stats)
        except Exception as exc:  # machine errors are design failures
            report.machine_matches_reference = False
            report.failures.append(
                f"{prefix}machine: {type(exc).__name__}: {exc}")
            return
        if report.machine_stats is None:
            report.machine_stats = machine.stats
        _check_results(report, machine.results, trace.results, prefix)


def design_token(design: Design) -> str:
    """Stable content identity of a design for artifact caching.

    Canonical JSON over the *structural fingerprint* of the recurrence
    system (:func:`repro.core.cache.system_fingerprint` — two same-named
    systems with different equations must not collide) plus the design's
    own serialisation.  The native engine keys its compiled shared
    objects on this, which is what lets a warm ``verify_design(...,
    engine="native")`` skip both codegen and the C compiler.
    """
    return json.dumps(
        {"system": system_fingerprint(design.system),
         "design": design.to_dict()},
        sort_keys=True, separators=(",", ":"))


def _verify_batched(design: Design, report: VerificationReport, decomposer,
                    cache, input_sets, prefixes,
                    strict_capacity: bool, engine: str) -> None:
    """All input sets through one batched value pass, reference and
    machine alike (the vector and native engines); per-seed mismatches
    are reported with their prefix.

    Only the output columns are compared — no per-seed trace or result
    dict is materialized, so the whole batch costs two kernel passes plus
    one array comparison.  ``engine="native"`` runs the machine pass
    through the design-keyed compiled C kernel
    (:func:`repro.machine.native.nativize`) and degrades to the vector
    pass wherever the native kernel cannot run."""
    if not input_sets:
        return
    with STATS.stage("verify.reference"):
        plan = cache.get("plan")
        if plan is None:
            plan = cache["plan"] = build_execution_plan(
                design.system, design.params)
        vplan = cache.get("vplan")
        if vplan is None:
            vplan = cache["vplan"] = lower_plan(plan)
        ref_matrix = execute_program(vplan, input_sets)
    try:
        with STATS.stage("verify.compile"):
            slot = "nmachine" if engine == "native" else "vmachine"
            vmachine = cache.get(slot)
            if vmachine is None:
                lowered = cache.get("machine")
                if lowered is None:
                    trace = execute_plan(plan, input_sets[0])
                    mc = compile_design(trace, design.schedules,
                                        design.space_maps, decomposer)
                    lowered = cache["machine"] = lower(mc, trace)
                if engine == "native":
                    vmachine = cache[slot] = nativize(
                        lowered, cache_token=design_token(design))
                else:
                    vmachine = cache[slot] = vectorize(lowered)
        with STATS.stage("verify.machine"):
            compiled = vmachine.compiled
            if strict_capacity and compiled.strict_error is not None:
                raise CapacityError(compiled.strict_error)
            mach_matrix = vmachine.execute_batch(input_sets)
            stats = compiled.copy_stats()
            _annotate_machine(stats)
    except Exception as exc:  # machine errors are design failures
        report.machine_matches_reference = False
        report.failures.append(
            f"{prefixes[0]}machine: {type(exc).__name__}: {exc}")
        return
    report.machine_stats = stats
    mach_by_key = dict(compiled.outputs)
    pairs = [(host_key, nid, mach_by_key[host_key])
             for host_key, nid in plan.outputs]
    eq = (ref_matrix[:, [nid for _, nid, _ in pairs]]
          == mach_matrix[:, [vid for _, _, vid in pairs]])
    for s, prefix in enumerate(prefixes):
        if bool(np.all(eq[s])):
            continue
        report.machine_matches_reference = False
        diffs = [host_key
                 for (host_key, _, _), ok in zip(pairs, eq[s]) if not ok]
        report.failures.append(
            f"{prefix}machine results differ from reference at {diffs[:5]}")


def verify_design(design: Design, inputs,
                  strict_capacity: bool = True,
                  engine: "Engine | str" = "compiled",
                  seeds=None) -> VerificationReport:
    """Run all symbolic and physical checks; never raises on a *design*
    failure (the report carries it), only on infrastructure errors.

    ``engine="compiled"`` (default) evaluates the reference trace through a
    precomputed execution plan and runs the machine through the lowered
    integer-indexed program; every value-independent artifact (the plan, the
    microcode, the lowered machine, the symbolic-check outcome) is cached on
    the design, so repeated verification — sweeps cross-checking many input
    seeds — only redoes the value passes.  ``engine="interpreted"`` is the
    from-scratch oracle: recursive-free reference evaluation plus the
    cycle-by-cycle simulator, nothing cached.  ``engine="vector"``
    additionally lowers the cached plan and machine table to level-grouped
    ndarray kernels (:mod:`repro.ir.vector`), so each value pass is a
    handful of array operations instead of one Python iteration per node.
    ``engine="native"`` compiles those kernel groups to a per-design C
    kernel (:mod:`repro.machine.native`) keyed by :func:`design_token` in
    a persistent shared-object cache — a warm verification skips both
    codegen and the C compiler — and degrades to the vector paths when no
    toolchain is present or inputs leave exact int64 range.

    ``seeds`` turns one verification into a multi-seed cross-check: pass a
    sequence of seeds and make ``inputs`` a factory ``seed -> input
    mapping``.  Every seed's machine results are compared to its own
    reference run; failures are prefixed with the offending seed.  The
    vector engine runs *all* seeds through a single batched kernel pass on
    ``(seeds, nodes)`` arrays — multi-seed verification at roughly the cost
    of one execution; the other engines loop.
    """
    engine = coerce_engine(engine)
    report = VerificationReport()
    decomposer = design.interconnect.decomposer()
    cache = design._exec_cache if engine != "interpreted" else None

    with STATS.stage("verify.symbolic"):
        if cache is not None and "symbolic" in cache:
            flags, failures = cache["symbolic"]
            (report.schedule_valid, report.conflict_free,
             report.global_gaps_ok, report.flows_ok) = flags
            report.failures.extend(failures)
        else:
            _symbolic_checks(design, report, decomposer)
            if cache is not None:
                cache["symbolic"] = (
                    (report.schedule_valid, report.conflict_free,
                     report.global_gaps_ok, report.flows_ok),
                    list(report.failures))

    # Physical execution against the reference evaluator.
    if seeds is None:
        input_sets = [inputs]
        prefixes = [""]
    else:
        if not callable(inputs):
            raise TypeError(
                "with seeds=..., 'inputs' must be a factory callable "
                "mapping a seed to an input binding")
        seeds = list(seeds)
        if not seeds:
            raise ValueError(
                "seeds=[] would check nothing and report ok; pass seeds=None "
                "for a single-input verification or a non-empty sequence")
        input_sets = [inputs(s) for s in seeds]
        prefixes = [f"seed {s}: " for s in seeds]
        report.seeds_checked = len(seeds)

    if engine in ("vector", "native"):
        _verify_batched(design, report, decomposer, cache, input_sets,
                        prefixes, strict_capacity, engine)
    else:
        _verify_looped(design, report, decomposer, cache, input_sets,
                       prefixes, strict_capacity, engine)
    return report
