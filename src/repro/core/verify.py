"""Independent verification of a synthesized design.

A design passes when *both* of these agree:

1. **Symbolic checks** — condition (1) per module, condition (2)
   conflict-freedom over the enumerated domains, the global timing gaps of
   every link instance, and flow realisability of every dependence;
2. **Physical execution** — the design compiles to microcode (placement +
   routing raise on any causality/locality violation) and the cycle-accurate
   machine, fed only host inputs at the boundary, reproduces the reference
   evaluator's results bit for bit.

The checks are deliberately independent of the solvers: they re-derive
everything from the system and the (T, S) assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.design import Design
from repro.deps.extract import system_dependence_matrices
from repro.ir.evaluate import trace_execution
from repro.machine.microcode import compile_design
from repro.machine.simulator import MachineStats, run
from repro.space.allocation import conflict_free, flows_realisable


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_design`."""

    schedule_valid: bool = True
    conflict_free: bool = True
    global_gaps_ok: bool = True
    flows_ok: bool = True
    machine_matches_reference: bool = True
    failures: list[str] = field(default_factory=list)
    machine_stats: MachineStats | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "OK" if self.ok else "FAILED: " + "; ".join(self.failures)
        return f"VerificationReport({status})"


def verify_design(design: Design, inputs: Mapping[str, Callable],
                  strict_capacity: bool = True) -> VerificationReport:
    """Run all symbolic and physical checks; never raises on a *design*
    failure (the report carries it), only on infrastructure errors."""
    report = VerificationReport()
    deps = system_dependence_matrices(design.system)
    decomposer = design.interconnect.decomposer()

    for name in design.system.modules:
        sched = design.schedules[name]
        smap = design.space_maps[name]
        if not sched.satisfies(deps[name]):
            report.schedule_valid = False
            report.failures.append(
                f"module {name}: T violates condition (1) on "
                f"{sched.violated(deps[name])}")
        pts = design.module_points(name)
        if not conflict_free(sched, smap, pts):
            report.conflict_free = False
            report.failures.append(
                f"module {name}: two computations share (time, cell)")
        if len(deps[name]) and not flows_realisable(
                deps[name], sched, smap, decomposer):
            report.flows_ok = False
            report.failures.append(
                f"module {name}: some dependence flow is not realisable")

    for gc in design.constraints:
        dst_t = design.schedules[gc.dst_module].times(gc.dst_points)
        src_t = design.schedules[gc.src_module].times(gc.src_points)
        if not gc.timing_ok(dst_t, src_t):
            report.global_gaps_ok = False
            report.failures.append(
                f"global constraint {gc.name}: gap below {gc.min_gap}")

    # Physical execution against the reference evaluator.
    trace = trace_execution(design.system, design.params, inputs)
    try:
        mc = compile_design(trace, design.schedules, design.space_maps,
                            decomposer)
        machine = run(mc, trace, inputs, strict=strict_capacity)
    except Exception as exc:  # machine errors are design failures
        report.machine_matches_reference = False
        report.failures.append(f"machine: {type(exc).__name__}: {exc}")
        return report
    report.machine_stats = machine.stats
    if machine.results != trace.results:
        report.machine_matches_reference = False
        diffs = [k for k in trace.results
                 if machine.results.get(k) != trace.results[k]]
        report.failures.append(
            f"machine results differ from reference at {diffs[:5]}")
    return report
