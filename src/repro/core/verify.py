"""Independent verification of a synthesized design.

A design passes when *both* of these agree:

1. **Symbolic checks** — condition (1) per module, condition (2)
   conflict-freedom over the enumerated domains, the global timing gaps of
   every link instance, and flow realisability of every dependence;
2. **Physical execution** — the design compiles to microcode (placement +
   routing raise on any causality/locality violation) and the cycle-accurate
   machine, fed only host inputs at the boundary, reproduces the reference
   evaluator's results bit for bit.

The checks are deliberately independent of the solvers: they re-derive
everything from the system and the (T, S) assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.design import Design
from repro.deps.extract import system_dependence_matrices
from repro.ir.evaluate import (
    build_execution_plan,
    execute_plan,
    trace_execution,
)
from repro.machine.compiled import lower
from repro.machine.microcode import compile_design
from repro.machine.simulator import MachineStats, run
from repro.space.allocation import conflict_free, flows_realisable
from repro.util.instrument import STATS


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_design`."""

    schedule_valid: bool = True
    conflict_free: bool = True
    global_gaps_ok: bool = True
    flows_ok: bool = True
    machine_matches_reference: bool = True
    failures: list[str] = field(default_factory=list)
    machine_stats: MachineStats | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "OK" if self.ok else "FAILED: " + "; ".join(self.failures)
        return f"VerificationReport({status})"


def _symbolic_checks(design: Design, report: VerificationReport,
                     decomposer) -> None:
    """Conditions (1)–(3) and the global gaps — value-independent."""
    deps = system_dependence_matrices(design.system)
    for name in design.system.modules:
        sched = design.schedules[name]
        smap = design.space_maps[name]
        if not sched.satisfies(deps[name]):
            report.schedule_valid = False
            report.failures.append(
                f"module {name}: T violates condition (1) on "
                f"{sched.violated(deps[name])}")
        pts = design.module_points(name)
        if not conflict_free(sched, smap, pts):
            report.conflict_free = False
            report.failures.append(
                f"module {name}: two computations share (time, cell)")
        if len(deps[name]) and not flows_realisable(
                deps[name], sched, smap, decomposer):
            report.flows_ok = False
            report.failures.append(
                f"module {name}: some dependence flow is not realisable")

    for gc in design.constraints:
        dst_t = design.schedules[gc.dst_module].times(gc.dst_points)
        src_t = design.schedules[gc.src_module].times(gc.src_points)
        if not gc.timing_ok(dst_t, src_t):
            report.global_gaps_ok = False
            report.failures.append(
                f"global constraint {gc.name}: gap below {gc.min_gap}")


def _annotate_machine(stats: MachineStats) -> None:
    """Attach the machine's headline numbers to the active tracer span so a
    recorded run carries them without any caller plumbing."""
    STATS.annotate(cycles=stats.cycles, cells=stats.cells_used,
                   operations=stats.operations, hops=stats.hops,
                   utilization=round(stats.utilization, 3))


def verify_design(design: Design, inputs: Mapping[str, Callable],
                  strict_capacity: bool = True,
                  engine: str = "compiled") -> VerificationReport:
    """Run all symbolic and physical checks; never raises on a *design*
    failure (the report carries it), only on infrastructure errors.

    ``engine="compiled"`` (default) evaluates the reference trace through a
    precomputed execution plan and runs the machine through the lowered
    integer-indexed program; every value-independent artifact (the plan, the
    microcode, the lowered machine, the symbolic-check outcome) is cached on
    the design, so repeated verification — sweeps cross-checking many input
    seeds — only redoes the value passes.  ``engine="interpreted"`` is the
    from-scratch oracle: recursive-free reference evaluation plus the
    cycle-by-cycle simulator, nothing cached.
    """
    if engine not in ("compiled", "interpreted"):
        raise ValueError(f"unknown engine {engine!r} "
                         "(expected 'compiled' or 'interpreted')")
    report = VerificationReport()
    decomposer = design.interconnect.decomposer()
    cache = design._exec_cache if engine == "compiled" else None

    with STATS.stage("verify.symbolic"):
        if cache is not None and "symbolic" in cache:
            flags, failures = cache["symbolic"]
            (report.schedule_valid, report.conflict_free,
             report.global_gaps_ok, report.flows_ok) = flags
            report.failures.extend(failures)
        else:
            _symbolic_checks(design, report, decomposer)
            if cache is not None:
                cache["symbolic"] = (
                    (report.schedule_valid, report.conflict_free,
                     report.global_gaps_ok, report.flows_ok),
                    list(report.failures))

    # Physical execution against the reference evaluator.
    with STATS.stage("verify.reference"):
        if cache is not None:
            plan = cache.get("plan")
            if plan is None:
                plan = cache["plan"] = build_execution_plan(
                    design.system, design.params)
            trace = execute_plan(plan, inputs)
        else:
            trace = trace_execution(design.system, design.params, inputs)
    try:
        if cache is not None:
            with STATS.stage("verify.compile"):
                lowered = cache.get("machine")
                if lowered is None:
                    mc = compile_design(trace, design.schedules,
                                        design.space_maps, decomposer)
                    lowered = cache["machine"] = lower(mc, trace)
            with STATS.stage("verify.machine"):
                machine = lowered.execute(inputs, strict=strict_capacity)
                _annotate_machine(machine.stats)
        else:
            with STATS.stage("verify.compile"):
                mc = compile_design(trace, design.schedules,
                                    design.space_maps, decomposer)
            with STATS.stage("verify.machine"):
                machine = run(mc, trace, inputs, strict=strict_capacity,
                              engine=engine)
                _annotate_machine(machine.stats)
    except Exception as exc:  # machine errors are design failures
        report.machine_matches_reference = False
        report.failures.append(f"machine: {type(exc).__name__}: {exc}")
        return report
    report.machine_stats = machine.stats
    if machine.results != trace.results:
        report.machine_matches_reference = False
        diffs = [k for k in trace.results
                 if machine.results.get(k) != trace.results[k]]
        report.failures.append(
            f"machine results differ from reference at {diffs[:5]}")
    return report
