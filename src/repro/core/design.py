"""The synthesized design: schedules + space maps + interconnect for a
recurrence system, with the derived quantities the paper reports — cell
count, completion time, and per-variable data flows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.arrays.dataflow import Flow, variable_flows
from repro.arrays.interconnect import Interconnect
from repro.arrays.model import ArrayRegion, VLSIArray
from repro.deps.extract import system_dependence_matrices
from repro.ir.program import RecurrenceSystem
from repro.schedule.constraints import GlobalConstraint
from repro.schedule.linear import LinearSchedule
from repro.space.allocation import SpaceMap, cells_used


@dataclass
class Design:
    """A complete mapping of a system onto a VLSI array.

    All derived quantities are exact and computed from the enumerated module
    domains for the design's parameter binding.
    """

    system: RecurrenceSystem
    params: dict[str, int]
    interconnect: Interconnect
    schedules: dict[str, LinearSchedule]
    space_maps: dict[str, SpaceMap]
    constraints: list[GlobalConstraint] = field(default_factory=list)

    _points_cache: dict[str, np.ndarray] = field(default_factory=dict,
                                                 repr=False)
    #: value-independent verification artifacts (execution plan, microcode,
    #: lowered machine, symbolic-check outcome) keyed by stage name — filled
    #: lazily by :func:`repro.core.verify.verify_design`'s compiled engine.
    _exec_cache: dict[str, object] = field(default_factory=dict, repr=False)

    def module_points(self, name: str) -> np.ndarray:
        if name not in self._points_cache:
            module = self.system.modules[name]
            pts = list(module.domain.points(self.params))
            self._points_cache[name] = np.array(
                pts, dtype=np.int64).reshape(len(pts), len(module.dims))
        return self._points_cache[name]

    def time(self, module: str, point) -> int:
        return self.schedules[module].time(point)

    def cell(self, module: str, point) -> tuple[int, ...]:
        return self.space_maps[module].cell(point)

    def region(self) -> ArrayRegion:
        """All cells any module's computations occupy."""
        cells: set[tuple[int, ...]] = set()
        for name in self.system.modules:
            pts = self.module_points(name)
            if pts.shape[0]:
                cells |= cells_used(self.space_maps[name], pts)
        return ArrayRegion(frozenset(cells))

    def array(self) -> VLSIArray:
        return VLSIArray(self.interconnect, self.region())

    @property
    def cell_count(self) -> int:
        return self.region().count

    def time_range(self) -> tuple[int, int]:
        """(first, last) execution cycle over all modules."""
        lo = None
        hi = None
        for name in self.system.modules:
            pts = self.module_points(name)
            if pts.shape[0] == 0:
                continue
            t = self.schedules[name].times(pts)
            lo = int(t.min()) if lo is None else min(lo, int(t.min()))
            hi = int(t.max()) if hi is None else max(hi, int(t.max()))
        if lo is None:
            raise ValueError("design has no computations")
        return lo, hi

    @property
    def completion_time(self) -> int:
        """The paper's total execution time: max T - min T."""
        lo, hi = self.time_range()
        return hi - lo

    def flows(self) -> dict[str, dict[str, Flow]]:
        """Per module, the data-flow classification of each variable."""
        deps = system_dependence_matrices(self.system)
        out: dict[str, dict[str, Flow]] = {}
        for name in self.system.modules:
            out[name] = variable_flows(
                deps[name], self.schedules[name], self.space_maps[name])
        return out

    def to_dict(self) -> dict:
        """JSON-serialisable description of the design (transformations,
        interconnect and parameters; the system itself is code and travels
        separately — see :meth:`from_dict`)."""
        return {
            "system": self.system.name,
            "params": dict(self.params),
            "interconnect": {
                "name": self.interconnect.name,
                "columns": [list(c) for c in self.interconnect.columns],
            },
            "schedules": {
                name: {"dims": list(s.dims), "coeffs": list(s.coeffs),
                       "offset": s.offset}
                for name, s in self.schedules.items()},
            "space_maps": {
                name: {"dims": list(m.dims),
                       "matrix": [list(r) for r in m.matrix],
                       "offset": list(m.offset)}
                for name, m in self.space_maps.items()},
        }

    @staticmethod
    def from_dict(data: dict, system: RecurrenceSystem) -> "Design":
        """Rebuild a design from :meth:`to_dict` output plus the system.

        Raises ``ValueError`` when the payload was produced for a different
        system (module names must match).
        """
        if data["system"] != system.name:
            raise ValueError(
                f"payload is for system {data['system']!r}, got {system.name!r}")
        if set(data["schedules"]) != set(system.modules):
            raise ValueError("module set mismatch between payload and system")
        ic = data["interconnect"]
        interconnect = Interconnect(
            ic["name"], tuple(tuple(c) for c in ic["columns"]))
        schedules = {
            name: LinearSchedule(tuple(s["dims"]), tuple(s["coeffs"]),
                                 s["offset"])
            for name, s in data["schedules"].items()}
        space_maps = {
            name: SpaceMap(tuple(m["dims"]),
                           tuple(tuple(r) for r in m["matrix"]),
                           tuple(m["offset"]))
            for name, m in data["space_maps"].items()}
        return Design(system=system, params=dict(data["params"]),
                      interconnect=interconnect, schedules=schedules,
                      space_maps=space_maps)

    def summary(self) -> str:
        """Human-readable design card."""
        lines = [f"Design of {self.system.name!r} on {self.interconnect.name}"]
        lines.append(f"  params: {self.params}")
        for name in self.system.modules:
            lines.append(f"  module {name}: T={self.schedules[name].as_expr()}"
                         f"  S={self.space_maps[name]}")
        lines.append(f"  cells: {self.cell_count}")
        lo, hi = self.time_range()
        lines.append(f"  time: [{lo}, {hi}]  (completion {hi - lo})")
        for mod, fl in self.flows().items():
            for var, flow in fl.items():
                lines.append(f"  flow {mod}::{var}: {flow.describe()}")
        return "\n".join(lines)
