"""Design-space exploration (the paper's Section I motivation: "the
possibility of automatically generating a number of viable algorithms ...
enables the selection of an optimal algorithm among a wider set of
candidates").

For a single-module system, enumerate every valid (T, S) pair within
coefficient bounds, package each as an :class:`ExploredDesign` with its
completion time, processor count and per-variable flows, and rank by the
chosen criterion.  The convolution benchmarks use this to regenerate
Tables 1 and 2: which named designs (W1/W2/R2) arise from which recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.arrays.dataflow import Flow, variable_flows
from repro.arrays.interconnect import Interconnect
from repro.core.design import Design
from repro.deps.extract import module_dependence_matrix
from repro.ir.program import RecurrenceSystem
from repro.schedule.linear import LinearSchedule
from repro.core.options import SynthesisOptions
from repro.schedule.solver import valid_candidates
from repro.space.allocation import cells_used, enumerate_space_maps


@dataclass(frozen=True)
class ExploredDesign:
    """One point of the design space."""

    design: Design
    makespan: int
    cells: int
    flows: dict[str, Flow]

    def signature(self) -> tuple:
        """Hashable movement signature: (variable, direction, speed)."""
        return tuple(sorted(
            (var, f.direction, f.speed) for var, f in self.flows.items()))


def explore_uniform(system: RecurrenceSystem, params: Mapping[str, int],
                    interconnect: Interconnect,
                    time_bound: int = 2, space_bound: int = 1,
                    options: SynthesisOptions | None = None
                    ) -> list[ExploredDesign]:
    """Enumerate all designs of a single-module system, sorted by
    (completion time, #cells, movement signature).

    An ``options`` object overrides the individual bound arguments.
    """
    if options is not None:
        time_bound = options.time_bound
        space_bound = options.space_bound
    if len(system.modules) != 1:
        raise ValueError("explore_uniform handles single-module systems")
    (name, module), = system.modules.items()
    deps = module_dependence_matrix(module)
    pts = module.domain.points_array(params)
    decomposer = interconnect.decomposer()

    # All candidate schedules and their makespans in two matrix ops.
    candidates = valid_candidates(deps, len(module.dims), time_bound)
    if pts.shape[0] and candidates.shape[0]:
        all_times = candidates @ pts.T
        spans = all_times.max(axis=1) - all_times.min(axis=1)
    else:
        spans = np.zeros(candidates.shape[0], dtype=np.int64)

    results: list[ExploredDesign] = []
    seen: set[tuple] = set()
    for row, makespan in zip(candidates, spans.tolist()):
        coeffs = tuple(int(c) for c in row)
        schedule = LinearSchedule(module.dims, coeffs)
        for smap in enumerate_space_maps(
                module.dims, interconnect.label_dim, deps, schedule,
                decomposer, pts, bound=space_bound):
            design = Design(system=system, params=dict(params),
                            interconnect=interconnect,
                            schedules={name: schedule},
                            space_maps={name: smap})
            flows = variable_flows(deps, schedule, smap)
            explored = ExploredDesign(
                design=design, makespan=makespan,
                cells=len(cells_used(smap, pts)), flows=flows)
            key = (coeffs, explored.signature())
            if key in seen:
                continue
            seen.add(key)
            results.append(explored)
    results.sort(key=lambda e: (e.makespan, e.cells, e.signature()))
    return results


def explore_interconnects(system: RecurrenceSystem,
                          params: Mapping[str, int],
                          interconnects: Sequence[Interconnect],
                          options: SynthesisOptions | None = None,
                          **synthesize_kwargs
                          ) -> list[tuple[Interconnect, "Design | None"]]:
    """Synthesize one design per interconnection pattern (Section V:
    "different interconnection patterns may result in different classes of
    designs"); infeasible patterns yield ``None``.

    Results are sorted by processor count (feasible first), the paper's
    Section VI criterion.
    """
    from repro.core.nonuniform import synthesize
    from repro.schedule.solver import NoScheduleExists
    from repro.space.multimodule import NoSpaceMapExists

    results: list[tuple[Interconnect, Design | None]] = []
    for ic in interconnects:
        try:
            design = synthesize(system, params, ic, options,
                                **synthesize_kwargs)
        except (NoScheduleExists, NoSpaceMapExists):
            design = None
        results.append((ic, design))
    results.sort(key=lambda pair: (pair[1] is None,
                                   pair[1].cell_count if pair[1] else 0,
                                   pair[0].name))
    return results


def pareto_front(designs: list[ExploredDesign]) -> list[ExploredDesign]:
    """Designs not dominated in (makespan, cells) — the paper's T/P
    optimality trade-off."""
    front: list[ExploredDesign] = []
    for d in designs:
        if not any(o.makespan <= d.makespan and o.cells <= d.cells
                   and (o.makespan, o.cells) != (d.makespan, d.cells)
                   for o in designs):
            front.append(d)
    unique: list[ExploredDesign] = []
    seen: set[tuple[int, int]] = set()
    for d in front:
        tag = (d.makespan, d.cells)
        if tag not in seen:
            seen.add(tag)
            unique.append(d)
    return unique
