"""Uniform designs (Section II.B): mapping a single canonic-form recurrence.

A single-module system has no global constraints, so the pipeline reduces to
condition (1) for ``T`` and conditions (2)/(3) for ``S`` — this is the
classic transformational method of [Moldovan, Quinton, Miranker–Winkler] that
the paper builds on, and the path that produces the convolution designs of
Tables 1 and 2."""

from __future__ import annotations

from typing import Mapping

from repro.arrays.interconnect import Interconnect
from repro.core.design import Design
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.ir.program import RecurrenceSystem


def synthesize_uniform(system: RecurrenceSystem, params: Mapping[str, int],
                       interconnect: Interconnect,
                       time_bound: int = 3,
                       space_bound: int = 1) -> Design:
    """Synthesize a single-module (canonic form) system.

    Raises ``ValueError`` when the system has several modules — use
    :func:`repro.core.nonuniform.synthesize` for those.
    """
    if len(system.modules) != 1:
        raise ValueError(
            f"system {system.name} has {len(system.modules)} modules; "
            f"synthesize_uniform handles exactly one")
    return synthesize(system, params, interconnect,
                      SynthesisOptions(time_bound=time_bound,
                                       space_bound=space_bound))
