"""Derivation of global constraints from the link statements of a system.

Section V derives the inequalities::

    λ(i, j, (i+j)/2) > μ(i, j-1, (i+j)/2)            (from A1)
    λ(i, j, i+1)     > σ(i+1, j, j)                  (from A2)
    ...
    σ(i, j, j) >= max[λ(i, j, i+1), μ(i, j, j-1)]    (from A5)

by inspecting the inter-module statements.  We compute the same constraints
*extensionally*: every link rule is enumerated over its guarded domain, and
each (destination point, source point) pair becomes an instance of a
:class:`GlobalConstraint`.  The enumeration is exact for the given parameter
values, handles quasi-affine index maps (the ``(i+j)/2`` boundaries) without
special cases, and feeds both the timing solver (gap >= min_gap) and the
space solver (link distance <= gap).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.ir.program import RecurrenceSystem
from repro.schedule.constraints import GlobalConstraint


def link_constraints(system: RecurrenceSystem,
                     params: Mapping[str, int]) -> list[GlobalConstraint]:
    """One :class:`GlobalConstraint` per link rule, instances enumerated.

    Constraints are named by the rule's label (A1..A5) when present,
    otherwise ``dst_module.dst_var[rule_index]``.
    """
    constraints: list[GlobalConstraint] = []
    domains = {name: list(m.domain.points(params))
               for name, m in system.modules.items()}
    for module_name, module in system.modules.items():
        for eqn in module.equations.values():
            for rule_idx, rule in enumerate(eqn.rules):
                if not hasattr(rule, "source"):
                    continue
                dst_pts: list[tuple[int, ...]] = []
                src_pts: list[tuple[int, ...]] = []
                for p in domains[module_name]:
                    binding = {**params, **dict(zip(module.dims, p))}
                    if not eqn.defined_at(binding):
                        continue
                    # First-match semantics: the rule constrains only the
                    # points where it actually fires.
                    if eqn.select(binding) is not rule:
                        continue
                    dst_pts.append(p)
                    src_pts.append(rule.source.evaluate(binding))
                if not dst_pts:
                    continue
                name = rule.label or f"{module_name}.{eqn.var}[{rule_idx}]"
                constraints.append(GlobalConstraint(
                    name=name,
                    dst_module=module_name,
                    src_module=rule.source.module,
                    dst_points=np.array(dst_pts, dtype=np.int64),
                    src_points=np.array(src_pts, dtype=np.int64),
                    min_gap=rule.min_gap))
    return constraints
