"""Adaptive chunking work-stealing scheduler for batch sweeps.

The PR-2 pool was one-shot submit-all: every pending job became one
pickled task up front, results streamed back through ``as_completed``.
That shape has two scaling cliffs.  Per-job dispatch overhead (pickle a
:class:`~repro.core.batch.SweepJob`, a process round-trip, a stats-delta
merge) dwarfs the solve time of small jobs, and a static job→future
assignment cannot rebalance when one worker draws the slow tail of the
grid — the sweep ends when the unluckiest worker does.

This scheduler replaces it with the shape "Systolic Computing on GPUs"
argues for — *group homogeneous computations, execute dense*:

* **homogeneous chunks** — jobs are grouped by (problem, engine) class;
  a chunk only ever contains one class, so a worker executing it stays on
  one code path with warm per-problem state;
* **adaptive sizing** — chunk size targets
  :attr:`SchedulerConfig.target_chunk_s` of work using the p50 of the
  ``sweep.job_s.<class>`` latency histogram in the process telemetry
  registry.  The histogram is fed live as chunks complete (and persists
  across sweeps in-process), so early chunks are small probes and later
  chunks amortise dispatch overhead over many jobs;
* **per-worker deques, steal-on-idle** — each worker owns a deque of job
  indices (whole classes dealt longest-processing-time-first).  A worker
  takes its next chunk from its own deque's *head*; when empty it steals
  from the *tail* of the most-loaded deque (``sweep.steals``), so the
  slow tail of a sweep spreads over every idle worker instead of
  serialising on one;
* **crash salvage** — a broken pool (segfault, OOM kill) loses only the
  chunks in flight: completed futures are salvaged and every undispatched
  or lost job retries on the in-process serial path, stats deduplicated
  by (job key, engine) throughout.

The parent-side cache-probe fast path (warm jobs resolved before any
worker round-trip) lives in :func:`repro.core.batch.run_sweep`; by the
time jobs reach this scheduler they are all cache misses.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.util.instrument import STATS

if TYPE_CHECKING:                                       # pragma: no cover
    from repro.core.batch import SweepJob, SweepResult
    from repro.obs.progress import SweepProgress

_CHUNKS = STATS.metrics.counter("sweep.chunks")
_STEALS = STATS.metrics.counter("sweep.steals")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the chunking policy.

    ``target_chunk_s`` is the work each dispatched chunk should carry:
    large enough to amortise the pickle/round-trip/merge overhead, small
    enough that stealing still has tail work to rebalance.  With no
    latency telemetry yet, jobs are assumed to cost ``default_job_s``
    (deliberately high, so cold sweeps start with small probe chunks).
    """

    target_chunk_s: float = 0.25
    min_chunk: int = 1
    max_chunk: int = 64
    default_job_s: float = 0.25


def job_class(job: "SweepJob") -> str:
    """The homogeneity class of one job: same problem, same engine."""
    return f"{job.problem}/{job.options.engine}"


class ChunkPlanner:
    """Latency-driven chunk sizing over the telemetry histograms."""

    def __init__(self, config: "SchedulerConfig | None" = None,
                 registry=None) -> None:
        self.config = config or SchedulerConfig()
        self.registry = registry if registry is not None else STATS.metrics

    def _histogram_name(self, cls: str) -> str:
        return f"sweep.job_s.{cls}"

    def observe(self, cls: str, seconds: float) -> None:
        """Feed one completed job's wall time into the class histogram."""
        self.registry.observe(self._histogram_name(cls), seconds)

    def estimated_job_s(self, cls: str) -> float:
        hist = self.registry.histograms.get(self._histogram_name(cls))
        if hist is None or not hist.count:
            return self.config.default_job_s
        p50 = hist.percentile(50)
        return max(p50 if p50 else 0.0, 1e-6)

    def chunk_size(self, cls: str) -> int:
        cfg = self.config
        size = int(cfg.target_chunk_s / self.estimated_job_s(cls))
        return max(cfg.min_chunk, min(cfg.max_chunk, size))


def _execute_chunk(jobs: "list[SweepJob]", cache_root: "str | None",
                   use_cache: bool,
                   tracing: bool = False) -> "list[SweepResult]":
    """Worker-side entry: run one homogeneous chunk job by job.

    Each job keeps its own stats delta (the per-job registry
    reset/snapshot protocol of :func:`repro.core.batch._execute_job`), so
    chunked execution merges into the parent exactly like per-job
    execution did.
    """
    from repro.core.batch import _execute_job

    return [_execute_job(job, cache_root, use_cache, tracing,
                         in_worker=True) for job in jobs]


class WorkStealingScheduler:
    """Parent-mediated work stealing over a process pool.

    The deques live in the parent (workers are plain stateless functions),
    which keeps stealing free of cross-process synchronisation: the parent
    is the only mover, each worker always has at most one chunk in flight,
    and "idle" is precisely "your future completed and your deque is
    empty".
    """

    def __init__(self, jobs: "Sequence[SweepJob]", nworkers: int,
                 cache_root: "str | None", use_cache: bool,
                 tracker: "SweepProgress | None" = None,
                 config: "SchedulerConfig | None" = None,
                 on_result: "Callable[[SweepResult], None] | None" = None
                 ) -> None:
        self.jobs = list(jobs)
        self.nworkers = max(1, min(int(nworkers), len(self.jobs)))
        self.cache_root = cache_root
        self.use_cache = use_cache
        self.tracker = tracker
        self.planner = ChunkPlanner(config)
        self.on_result = on_result
        self._by_index: dict[int, "SweepResult"] = {}
        self._merged: set[str] = set()

    # -- deque construction --------------------------------------------------

    def _deal_deques(self) -> "list[deque[int]]":
        """Group job indices by class, deal whole classes to the worker
        with the least estimated load (LPT), largest class first."""
        classes: dict[str, list[int]] = {}
        for idx, job in enumerate(self.jobs):
            classes.setdefault(job_class(job), []).append(idx)
        deques: list[deque[int]] = [deque() for _ in range(self.nworkers)]
        loads = [0.0] * self.nworkers
        est = {cls: self.planner.estimated_job_s(cls) for cls in classes}
        order = sorted(classes,
                       key=lambda c: (-len(classes[c]) * est[c], c))
        for cls in order:
            w = min(range(self.nworkers), key=lambda i: (loads[i], i))
            deques[w].extend(classes[cls])
            loads[w] += len(classes[cls]) * est[cls]
        return deques

    def _next_chunk(self, w: int,
                    deques: "list[deque[int]]") -> "list[int]":
        """The next homogeneous chunk for worker ``w``: from its own
        deque's head, else stolen from the most-loaded deque's tail."""
        own = deques[w]
        if own:
            return self._cut(own, from_head=True)
        victim = max(range(len(deques)),
                     key=lambda i: (len(deques[i]), -i))
        if not deques[victim]:
            return []
        _STEALS.inc()
        return self._cut(deques[victim], from_head=False)

    def _cut(self, dq: "deque[int]", *, from_head: bool) -> "list[int]":
        """Pop up to one chunk of the end's class, preserving homogeneity."""
        peek = dq[0] if from_head else dq[-1]
        cls = job_class(self.jobs[peek])
        limit = self.planner.chunk_size(cls)
        chunk: list[int] = []
        while dq and len(chunk) < limit:
            idx = dq[0] if from_head else dq[-1]
            if job_class(self.jobs[idx]) != cls:
                break
            chunk.append(dq.popleft() if from_head else dq.pop())
        if not from_head:
            chunk.reverse()
        return chunk

    # -- result plumbing -----------------------------------------------------

    def _stats_key(self, idx: int, result: "SweepResult") -> str:
        # The cache key deliberately excludes the engine (it does not
        # change the synthesized design), so two jobs differing only in
        # engine share it; the *stats* dedup key must keep them distinct.
        # Same engine-qualified shape as SweepResult.identity, derived
        # from the job so a result with a blank engine cannot collide.
        return f"{result.key}::{self.jobs[idx].options.engine}"

    def _accept(self, idx: int, result: "SweepResult", *,
                premerged: bool = False) -> None:
        from repro.core.batch import _merge_stats

        self._by_index[idx] = result
        if premerged:
            self._merged.add(self._stats_key(idx, result))
        else:
            _merge_stats(result.stats,
                         job_key=self._stats_key(idx, result),
                         merged=self._merged)
        self.planner.observe(job_class(self.jobs[idx]), result.wall_time)
        if self.tracker is not None:
            self.tracker.job_done(ok=result.ok, cache_hit=result.cache_hit,
                                  label=result.label())
        if self.on_result is not None:
            self.on_result(result)

    # -- the loop ------------------------------------------------------------

    def run(self) -> "list[SweepResult]":
        deques = self._deal_deques()
        in_flight: dict = {}                 # future -> list of indices
        try:
            with ProcessPoolExecutor(max_workers=self.nworkers) as pool:
                def dispatch(w: int) -> None:
                    chunk = self._next_chunk(w, deques)
                    if not chunk:
                        return
                    _CHUNKS.inc()
                    fut = pool.submit(
                        _execute_chunk, [self.jobs[i] for i in chunk],
                        self.cache_root, self.use_cache, STATS.enabled)
                    in_flight[fut] = (w, chunk)

                for w in range(self.nworkers):
                    dispatch(w)
                while in_flight:
                    done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                    for fut in done:
                        w, chunk = in_flight[fut]
                        # .result() may raise BrokenProcessPool — the
                        # future must stay in ``in_flight`` until its
                        # chunk is accepted, so salvage can retry it.
                        results = fut.result()
                        del in_flight[fut]
                        for idx, result in zip(chunk, results):
                            self._accept(idx, result)
                        dispatch(w)
        except BrokenProcessPool:
            self._salvage_and_retry(in_flight, deques)
        return [self._by_index[i] for i in sorted(self._by_index)]

    def _salvage_and_retry(self, in_flight: dict,
                           deques: "list[deque[int]]") -> None:
        """A worker died.  Keep every result that made it back, then run
        the lost and undispatched jobs serially in-process."""
        from repro.core.batch import _execute_job

        retry: list[int] = []
        for fut, (_, chunk) in in_flight.items():
            results = None
            if fut.done() and not fut.cancelled() \
                    and fut.exception() is None:
                results = fut.result()
            for pos, idx in enumerate(chunk):
                if results is not None and pos < len(results):
                    self._accept(idx, results[pos])
                else:
                    retry.append(idx)
        for dq in deques:
            retry.extend(dq)
            dq.clear()
        retry = [idx for idx in retry if idx not in self._by_index]
        STATS.count("sweep.worker_retries", len(retry))
        for idx in sorted(retry):
            # Serial fallback accrues stats directly into the caller's
            # registry; pre-mark the key so a salvaged duplicate delta
            # for the same job can never merge on top.
            self._accept(idx, _execute_job(self.jobs[idx], self.cache_root,
                                           self.use_cache),
                         premerged=True)
