"""Step 1 of the Section III procedure: the coarse timing function.

From the high-level spec's non-constant dependencies we keep only the
constant subset ``D^c`` (intersection of the expanded per-point sets) and
solve condition (7) for an optimal linear ``T : I^s -> Z``.  ``T`` is a lower
bound for any actual timing function and — crucially — depends only on the
problem's *implicit* dependencies, before any execution order is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.deps.nonconstant import constant_dependence_set
from repro.deps.vectors import DependenceMatrix
from repro.ir.program import HighLevelSpec
from repro.schedule.linear import LinearSchedule
from repro.schedule.solver import ScheduleSolution, optimal_schedule


@dataclass(frozen=True)
class CoarseTiming:
    """The derived coarse schedule plus the evidence it came from."""

    spec: HighLevelSpec
    constant_deps: DependenceMatrix
    solution: ScheduleSolution

    @property
    def schedule(self) -> LinearSchedule:
        return self.solution.schedule


def coarse_timing(spec: HighLevelSpec, params: Mapping[str, int],
                  bound: int = 3) -> CoarseTiming:
    """Derive the coarse timing function of a high-level spec.

    ``params`` supplies concrete sizes for the makespan objective (the
    winning coefficient vector is size-independent for the paper's systems;
    tests check stability across sizes).
    """
    deps = constant_dependence_set(spec, params)
    if len(deps) == 0:
        raise ValueError(
            f"spec {spec.name}: the constant dependence set D^c is empty; "
            f"the two-step procedure does not apply")
    solution = optimal_schedule(deps, spec.domain, params, bound=bound)
    return CoarseTiming(spec, deps, solution)
