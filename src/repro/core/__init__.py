"""The paper's contribution: the two-step refinement procedure (coarse
timing + chain-based restructuring) and the multi-module time/space mapping
pipeline, packaged as designs with verification and exploration."""

from repro.core.coarse import CoarseTiming, coarse_timing
from repro.core.design import Design
from repro.core.explore import (
    ExploredDesign,
    explore_interconnects,
    explore_uniform,
    pareto_front,
)
from repro.core.globals import link_constraints
from repro.core.nonuniform import synthesize
from repro.core.restructure import RestructureError, restructure
from repro.core.uniform import synthesize_uniform
from repro.core.verify import VerificationReport, verify_design

__all__ = [
    "CoarseTiming",
    "Design",
    "ExploredDesign",
    "RestructureError",
    "VerificationReport",
    "coarse_timing",
    "explore_interconnects",
    "explore_uniform",
    "link_constraints",
    "pareto_front",
    "restructure",
    "synthesize",
    "synthesize_uniform",
    "verify_design",
]
