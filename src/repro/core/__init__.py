"""The paper's contribution: the two-step refinement procedure (coarse
timing + chain-based restructuring) and the multi-module time/space mapping
pipeline, packaged as designs with verification, exploration, batch sweeps
and a persistent design cache."""

from repro.core.batch import (
    PROBLEM_BUILDERS,
    SweepJob,
    SweepReport,
    SweepResult,
    SweepSpec,
    default_workers,
    run_sweep,
)
from repro.core.cache import (
    DesignCache,
    PruneReport,
    cache_key,
    cache_key_from_fingerprint,
    system_fingerprint,
)
from repro.core.manifest import ManifestError, SweepManifest, read_manifest
from repro.core.scheduler import SchedulerConfig, WorkStealingScheduler
from repro.core.coarse import CoarseTiming, coarse_timing
from repro.core.design import Design
from repro.core.errors import (
    NoScheduleExists,
    NoSpaceMapExists,
    SynthesisError,
)
from repro.core.explore import (
    ExploredDesign,
    explore_interconnects,
    explore_uniform,
    pareto_front,
)
from repro.core.globals import link_constraints
from repro.core.nonuniform import synthesize
from repro.core.options import SynthesisOptions
from repro.core.restructure import RestructureError, restructure
from repro.core.uniform import synthesize_uniform
from repro.core.verify import VerificationReport, verify_design

__all__ = [
    "CoarseTiming",
    "Design",
    "DesignCache",
    "ExploredDesign",
    "ManifestError",
    "NoScheduleExists",
    "NoSpaceMapExists",
    "PROBLEM_BUILDERS",
    "PruneReport",
    "RestructureError",
    "SchedulerConfig",
    "SweepJob",
    "SweepManifest",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "SynthesisError",
    "SynthesisOptions",
    "VerificationReport",
    "WorkStealingScheduler",
    "cache_key",
    "cache_key_from_fingerprint",
    "coarse_timing",
    "default_workers",
    "explore_interconnects",
    "explore_uniform",
    "link_constraints",
    "pareto_front",
    "read_manifest",
    "restructure",
    "run_sweep",
    "synthesize",
    "synthesize_uniform",
    "system_fingerprint",
    "verify_design",
]
