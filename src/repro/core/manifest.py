"""Resumable sweep manifests: a JSONL journal that survives ``kill -9``.

A million-design sweep takes hours; losing it to a reboot, an OOM kill or
a fat-fingered ^C means re-paying every completed job.  The manifest is
the sweep's write-ahead journal: one *header* line identifying the job
set, then one *done* line per completed job carrying the full
:class:`~repro.core.batch.SweepResult` payload.  Jobs are journaled by
their **engine-qualified identity** (``<cache key>::<engine>``, see
:attr:`~repro.core.batch.SweepResult.identity`): the cache key excludes
the engine, so two jobs differing only in engine share a key — each must
get its own done-record or resuming would silently drop one of them.  ``run_sweep(...,
manifest=path)`` opens the journal before executing anything and appends
as results land, fsync'ing in batches (``fsync_every``), so the file on
disk is never more than a batch behind reality.

Resuming is the same call: if the file already holds done-records for the
same job set, those jobs are *restored* from the journal — not probed,
not re-executed — and only the remainder runs.  The restored results are
byte-for-byte the recorded ones, so a resumed sweep's report tables
render identically to the uninterrupted run's.

Safety properties:

* the header pins a SHA-256 over the sorted job keys — resuming a
  manifest against a *different* sweep raises :class:`ManifestError`
  instead of silently mixing results;
* a torn final line (the writer died mid-append) is ignored, everything
  before it is kept — appends are single ``write`` calls of one line;
* done-records for keys not in the current job set also raise, catching
  a stale file path reused for a new sweep shape.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.util.instrument import STATS

if TYPE_CHECKING:                                       # pragma: no cover
    from repro.core.batch import SweepResult

#: Bump when the journal layout changes incompatibly.
#: v2: done-records are keyed by engine-qualified job identity
#: (``<cache key>::<engine>``) instead of the bare cache key.
MANIFEST_VERSION = 2

#: Default completion-records-per-fsync.  Batching amortises the sync
#: cost at ~no durability loss: a crash forfeits at most a batch of
#: cheap-to-redo jobs, never the whole sweep.
DEFAULT_FSYNC_EVERY = 16

_RESTORED = STATS.metrics.counter("sweep.manifest_restored")
_RECORDED = STATS.metrics.counter("sweep.manifest_recorded")


class ManifestError(ValueError):
    """The manifest on disk does not belong to the requested sweep."""


def jobs_fingerprint(keys: Iterable[str]) -> str:
    """Order-independent SHA-256 identity of a sweep's job-identity set
    (``run_sweep`` passes engine-qualified identities, not cache keys)."""
    digest = hashlib.sha256()
    for key in sorted(keys):
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


class SweepManifest:
    """The journal behind ``run_sweep(..., manifest=...)``.

    Lifecycle: :meth:`open` parses-or-creates the file and exposes
    :attr:`completed` (job identity → recorded result payload); the sweep calls
    :meth:`record` per finished job and :meth:`close` at the end.  The
    file handle stays open for the sweep's duration — appends are one
    ``write`` each, fsync'd every ``fsync_every`` records and on close.
    """

    def __init__(self, path: "str | os.PathLike",
                 fsync_every: int = DEFAULT_FSYNC_EVERY) -> None:
        self.path = Path(path)
        self.fsync_every = max(1, int(fsync_every))
        self.completed: dict[str, dict] = {}
        self.total = 0
        self._fingerprint: "str | None" = None
        self._fh = None
        self._since_fsync = 0

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(cls, path: "str | os.PathLike", job_keys: Iterable[str],
             fsync_every: int = DEFAULT_FSYNC_EVERY) -> "SweepManifest":
        """Create the journal for ``job_keys`` (engine-qualified job
        identities), or resume the existing one (validating that it
        journals the same job set)."""
        manifest = cls(path, fsync_every=fsync_every)
        keys = list(job_keys)
        manifest.total = len(keys)
        manifest._fingerprint = jobs_fingerprint(keys)
        existing = manifest._parse_existing(set(keys))
        manifest.path.parent.mkdir(parents=True, exist_ok=True)
        manifest._fh = open(manifest.path, "a", encoding="utf-8")
        if not existing:
            manifest._append({"kind": "header",
                              "version": MANIFEST_VERSION,
                              "fingerprint": manifest._fingerprint,
                              "total": manifest.total})
            manifest._fsync()
        return manifest

    def _parse_existing(self, valid_keys: set[str]) -> bool:
        """Load a pre-existing journal; ``False`` when absent or empty."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return False
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue            # torn tail: the writer died mid-append
        if not records:
            return False
        header = records[0]
        if header.get("kind") != "header":
            raise ManifestError(
                f"{self.path}: not a sweep manifest (bad header)")
        if header.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"{self.path}: manifest version "
                f"{header.get('version')!r} is not the supported "
                f"version {MANIFEST_VERSION} — start a fresh manifest "
                f"file")
        if header.get("fingerprint") != self._fingerprint:
            raise ManifestError(
                f"{self.path}: manifest belongs to a different sweep "
                f"(job-set fingerprint mismatch) — use a fresh manifest "
                f"file per sweep spec")
        for record in records[1:]:
            if record.get("kind") != "done":
                continue
            key = record.get("key")
            if key not in valid_keys:
                raise ManifestError(
                    f"{self.path}: completion record for unknown job key "
                    f"{key!r}")
            self.completed[key] = record["result"]
        return True

    # -- journaling ----------------------------------------------------------

    def record(self, result: "SweepResult") -> None:
        """Journal one finished job (idempotent per job identity)."""
        ident = result.identity
        if ident in self.completed:
            return
        payload = result.to_dict()
        self.completed[ident] = payload
        self._append({"kind": "done", "key": ident,
                      "result": payload})
        _RECORDED.inc()
        self._since_fsync += 1
        if self._since_fsync >= self.fsync_every:
            self._fsync()

    def restore(self) -> "list[SweepResult]":
        """The journaled results, rebuilt as :class:`SweepResult`\\ s."""
        from repro.core.batch import SweepResult

        restored = [SweepResult.from_dict(payload)
                    for payload in self.completed.values()]
        _RESTORED.inc(len(restored))
        return restored

    def _append(self, record: Mapping) -> None:
        if self._fh is None:
            raise ValueError(f"{self.path}: manifest is not open")
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def _fsync(self) -> None:
        if self._fh is not None:
            os.fsync(self._fh.fileno())
            self._since_fsync = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fsync()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SweepManifest({str(self.path)!r}, "
                f"{len(self.completed)}/{self.total} done)")


def read_manifest(path: "str | os.PathLike") -> dict:
    """Post-mortem view of a manifest file: header fields plus the
    completed keys — what a monitor (or a human with a dead sweep) needs
    to size the remaining work.  Tolerates a torn final line."""
    header: dict = {}
    completed: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("kind") == "header" and not header:
                header = record
            elif record.get("kind") == "done":
                completed.append(record.get("key"))
    return {"version": header.get("version"),
            "fingerprint": header.get("fingerprint"),
            "total": header.get("total", 0),
            "completed": completed}
