"""Per-cell action tables — the annotations of the paper's figures.

"All cells are identical.  However, the action of a cell varies from time
to time.  It does computation relative to module 1 or module 2 depending on
the values of indices i, j, and k." (Section VI)

:func:`cell_actions` computes, for each cell of a design, the timetable of
module computations it performs; :func:`render_cell_actions` prints one
cell's table in the style of the figure annotations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.core.design import Design

Cell = tuple[int, ...]


def cell_actions(design: Design) -> dict[Cell, list[tuple[int, str, tuple[int, ...]]]]:
    """``{cell: [(cycle, module, index_point), ...]}`` sorted by cycle.

    A cell with entries from several modules at the same cycle performs a
    *compound* action that cycle — the non-uniform behaviour the paper's
    figures illustrate.
    """
    table: dict[Cell, list[tuple[int, str, tuple[int, ...]]]] = defaultdict(list)
    for name in design.system.modules:
        pts = design.module_points(name)
        if pts.shape[0] == 0:
            continue
        times = design.schedules[name].times(pts)
        cells = design.space_maps[name].cells(pts)
        for point, t, cell in zip(pts, times, cells):
            table[tuple(int(v) for v in cell)].append(
                (int(t), name, tuple(int(v) for v in point)))
    for actions in table.values():
        actions.sort()
    return dict(table)


def action_profile(design: Design) -> dict[str, int]:
    """Summary counters: how non-uniform is the design?

    * ``cells`` — total cells;
    * ``multi_module_cells`` — cells executing more than one module;
    * ``compound_cycles`` — (cell, cycle) slots running several modules at
      once;
    * ``max_actions_per_cycle`` — the widest compound action.
    """
    table = cell_actions(design)
    multi = 0
    compound = 0
    widest = 0
    for actions in table.values():
        modules = {m for _, m, _ in actions}
        if len(modules) > 1:
            multi += 1
        per_cycle: dict[int, int] = defaultdict(int)
        for t, _, _ in actions:
            per_cycle[t] += 1
        for count in per_cycle.values():
            widest = max(widest, count)
            if count > 1:
                compound += 1
    return {
        "cells": len(table),
        "multi_module_cells": multi,
        "compound_cycles": compound,
        "max_actions_per_cycle": widest,
    }


def render_cell_actions(design: Design, cell: Cell,
                        max_rows: int = 30) -> str:
    """One cell's timetable, figure-annotation style."""
    table = cell_actions(design)
    actions = table.get(tuple(cell))
    if not actions:
        return f"cell {tuple(cell)}: idle"
    lines = [f"cell {tuple(cell)}:"]
    by_cycle: dict[int, list[str]] = defaultdict(list)
    for t, module, point in actions:
        by_cycle[t].append(f"{module}{point}")
    for t in sorted(by_cycle)[:max_rows]:
        lines.append(f"  t={t:>3}: " + "  +  ".join(by_cycle[t]))
    if len(by_cycle) > max_rows:
        lines.append(f"  ... ({len(by_cycle) - max_rows} more cycles)")
    return "\n".join(lines)
