"""ASCII rendering of array layouts in the style of the paper's figures."""

from __future__ import annotations

from collections import defaultdict

from repro.core.design import Design


def _tag(name: str) -> str:
    """Short per-module marker: 'm1' -> '1', 'comb' -> 'c'."""
    return name[-1] if name[:-1] and name[-1].isdigit() else name[0]


def render_array(design: Design, mark_modules: bool = True) -> str:
    """Draw the occupied cells of a (1-D or 2-D) design.

    2-D: x grows rightwards, y grows upwards (matching the paper's figures).
    Each cell shows the initials of the modules computing there — in figure 1
    every cell runs both chains; in figure 2 the chains overlap on shared
    cells but the region is the smaller staircase.
    """
    region = design.region()
    if region.count == 0:
        return "(empty array)"
    owners: dict[tuple[int, ...], set[str]] = defaultdict(set)
    for name in design.system.modules:
        pts = design.module_points(name)
        smap = design.space_maps[name]
        if pts.shape[0] == 0:
            continue
        for cell in smap.cells(pts):
            owners[tuple(int(v) for v in cell)].add(name)

    if region.label_dim == 1:
        (x_lo, x_hi), = region.bounding_box()
        cells = []
        for x in range(x_lo, x_hi + 1):
            if (x,) in region:
                tag = "".join(sorted(_tag(m) for m in owners[(x,)])) \
                    if mark_modules else "#"
                cells.append(f"[{tag:^3}]")
            else:
                cells.append("     ")
        ruler = "  ".join(f"{x:^3}" for x in range(x_lo, x_hi + 1))
        return " ".join(cells) + "\n " + ruler

    (x_lo, x_hi), (y_lo, y_hi) = region.bounding_box()
    lines = []
    for y in range(y_hi, y_lo - 1, -1):
        row = [f"{y:>3} "]
        for x in range(x_lo, x_hi + 1):
            if (x, y) in region:
                tag = "".join(sorted({_tag(m) for m in owners[(x, y)]})) \
                    if mark_modules else "#"
                row.append(f"[{tag:^4}]")
            else:
                row.append("      ")
        lines.append("".join(row))
    footer = "    " + "".join(f"{x:^6}" for x in range(x_lo, x_hi + 1))
    lines.append(footer)
    return "\n".join(lines)


def render_gantt(design: Design, module: str, max_rows: int = 24) -> str:
    """Cell-occupancy timeline of one module: one row per cell, one column
    per cycle; '*' marks a computation."""
    pts = design.module_points(module)
    sched = design.schedules[module]
    smap = design.space_maps[module]
    if pts.shape[0] == 0:
        return "(empty module)"
    times = sched.times(pts)
    cells = smap.cells(pts)
    t_lo, t_hi = int(times.min()), int(times.max())
    by_cell: dict[tuple[int, ...], set[int]] = defaultdict(set)
    for t, cell in zip(times, cells):
        by_cell[tuple(int(v) for v in cell)].add(int(t))
    lines = [f"module {module}: cycles {t_lo}..{t_hi}"]
    for cell in sorted(by_cell)[:max_rows]:
        marks = "".join("*" if t in by_cell[cell] else "."
                        for t in range(t_lo, t_hi + 1))
        lines.append(f"  {str(cell):>10} {marks}")
    if len(by_cell) > max_rows:
        lines.append(f"  ... ({len(by_cell) - max_rows} more cells)")
    return "\n".join(lines)
