"""Aggregate analytics over persisted run records: ``repro report``.

A sweep campaign leaves hundreds of :class:`~repro.obs.metrics.RunRecord`
files behind (one per CLI invocation, each carrying per-job wall times,
flat counters and the merged telemetry registry).  This module turns one
or more of those stores into the operator's questions:

* **latency** — engine × problem wall-time tables (count, p50, p95, max),
  built from the per-job samples ``repro sweep`` stashes in
  ``extra["jobs"]`` and the single-design samples of
  ``synthesize``/``trace`` runs (``extra["workload"]``);
* **cache** — hit/miss/negative-rate tables per cache family (design
  cache, native artifact cache, point-set cache), summed over every
  record's counters;
* **stages** — latency distributions of the traced stages, by merging the
  registry histograms shipped in ``extra["telemetry"]`` (the same
  associative merge the sweep workers use, so a report over N records
  equals one record over the union of their runs);
* **delta** — the same latency table diffed against a *baseline*: either
  a second record store (directory) or a ``BENCH_<name>.json`` trajectory
  file from the benchmark harness, in which case the newest entry is
  diffed against the entry before it.

Everything renders through :func:`repro.report.tables.format_grid`, the
house table style, and everything has a JSON-ready dict form for
``repro report --json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.obs.metrics import RunRecord, list_run_records, load_run_record
from repro.obs.telemetry import Histogram, percentile
from repro.report.tables import format_grid

#: Counter-name prefixes of each cache family shown by the cache table:
#: ``(family, hits name, misses name, negative-hits name)``.
CACHE_FAMILIES: tuple[tuple[str, str, str, str], ...] = (
    ("design", "cache.hits", "cache.misses", "cache.negative_hits"),
    ("native", "native.cache_hits", "native.cache_misses",
     "native.negative_hits"),
    ("points", "points.cache_hit", "points.cache_miss", ""),
)


def load_records(sources: Iterable["str | os.PathLike"],
                 ) -> list[RunRecord]:
    """Load every readable record of ``sources`` (directories of records,
    or individual record files).  Unreadable files are skipped — a store
    being written to while the report runs must not kill the report."""
    records: list[RunRecord] = []
    for source in sources:
        path = Path(source)
        paths = list_run_records(path) if path.is_dir() else [path]
        for p in paths:
            try:
                records.append(load_run_record(p))
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                continue
    return records


# -- latency -------------------------------------------------------------------

def job_samples(records: Sequence[RunRecord],
                ) -> dict[tuple[str, str], list[float]]:
    """Wall-time samples in seconds, grouped by ``(engine, problem)``.

    A sweep record contributes one sample per job (``extra["jobs"]``); a
    ``synthesize``/``trace`` record contributes its own wall time under
    the workload it declared (``extra["workload"]``).
    """
    groups: dict[tuple[str, str], list[float]] = {}
    for rec in records:
        jobs = rec.extra.get("jobs")
        if jobs:
            for job in jobs:
                key = (str(job.get("engine", "?")),
                       str(job.get("problem", "?")))
                groups.setdefault(key, []).append(
                    float(job.get("wall_time", 0.0)))
            continue
        workload = rec.extra.get("workload")
        if workload:
            key = (str(workload.get("engine", "?")),
                   str(workload.get("problem", "?")))
            groups.setdefault(key, []).append(float(rec.wall_time))
    return groups


def _ms(value: "float | None") -> str:
    return f"{value * 1000:.1f}" if value is not None else "-"


def latency_dict(records: Sequence[RunRecord]) -> list[dict]:
    out = []
    for (engine, problem), samples in sorted(job_samples(records).items()):
        samples = sorted(samples)
        out.append({
            "engine": engine, "problem": problem, "count": len(samples),
            "p50_s": percentile(samples, 50),
            "p95_s": percentile(samples, 95),
            "max_s": samples[-1] if samples else None,
        })
    return out


def latency_table(records: Sequence[RunRecord], title: str = "") -> str:
    """The engine × problem wall-time table (count / p50 / p95 / max)."""
    entries = latency_dict(records)
    if not entries:
        body = "(no latency samples in these records)"
        return f"{title}\n{body}" if title else body
    rows = [[e["engine"], e["problem"], str(e["count"]), _ms(e["p50_s"]),
             _ms(e["p95_s"]), _ms(e["max_s"])] for e in entries]
    table = format_grid(
        ["engine", "problem", "jobs", "p50 ms", "p95 ms", "max ms"], rows)
    return f"{title}\n{table}" if title else table


# -- caches --------------------------------------------------------------------

def summed_counters(records: Sequence[RunRecord]) -> dict[str, int]:
    """Every record's flat counters, summed."""
    totals: dict[str, int] = {}
    for rec in records:
        for name, value in rec.stats.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


def cache_dict(records: Sequence[RunRecord]) -> list[dict]:
    totals = summed_counters(records)
    out = []
    for family, hits_name, misses_name, negative_name in CACHE_FAMILIES:
        hits = totals.get(hits_name, 0)
        misses = totals.get(misses_name, 0)
        if hits == 0 and misses == 0:
            continue
        looked = hits + misses
        out.append({
            "family": family, "hits": hits, "misses": misses,
            "negative_hits": totals.get(negative_name, 0),
            "hit_rate": hits / looked if looked else None,
        })
    return out


def cache_table(records: Sequence[RunRecord], title: str = "") -> str:
    """Hit/miss/negative totals and hit-rate per cache family."""
    entries = cache_dict(records)
    if not entries:
        body = "(no cache activity in these records)"
        return f"{title}\n{body}" if title else body
    rows = [[e["family"], str(e["hits"]), str(e["misses"]),
             str(e["negative_hits"]),
             f"{e['hit_rate']:.0%}" if e["hit_rate"] is not None else "-"]
            for e in entries]
    table = format_grid(
        ["cache", "hits", "misses", "negative", "hit rate"], rows)
    return f"{title}\n{table}" if title else table


# -- stages (merged telemetry histograms) --------------------------------------

def merged_histograms(records: Sequence[RunRecord],
                      ) -> dict[str, Histogram]:
    """All records' telemetry histograms, merged per stage name.

    Uses the same associative wire merge the sweep workers use, so the
    result is independent of record order.
    """
    merged: dict[str, Histogram] = {}
    for rec in records:
        telemetry = rec.extra.get("telemetry") or {}
        for name, wire in telemetry.get("histograms", {}).items():
            hist = merged.get(name)
            if hist is None:
                merged[name] = Histogram.from_wire(name, wire)
            else:
                hist.merge_wire(wire)
    return merged


def stage_dict(records: Sequence[RunRecord]) -> list[dict]:
    out = []
    for name, hist in sorted(merged_histograms(records).items()):
        summary = hist.summary()
        out.append({"stage": name, **summary})
    return out


def stage_table(records: Sequence[RunRecord], title: str = "") -> str:
    """Latency distribution per traced stage, from merged histograms."""
    entries = stage_dict(records)
    if not entries:
        body = "(no telemetry histograms in these records)"
        return f"{title}\n{body}" if title else body
    rows = [[e["stage"], str(e["count"]), _ms(e.get("mean")),
             _ms(e.get("p50")), _ms(e.get("p95")), _ms(e.get("max"))]
            for e in entries]
    table = format_grid(
        ["stage", "n", "mean ms", "p50 ms", "p95 ms", "max ms"], rows)
    return f"{title}\n{table}" if title else table


# -- deltas --------------------------------------------------------------------

def _pct(current: float, base: float) -> str:
    if base == 0:
        return "-"
    delta = (current - base) / base * 100.0
    return f"{delta:+.1f}%"


def delta_records_dict(records: Sequence[RunRecord],
                       baseline: Sequence[RunRecord]) -> list[dict]:
    current = {(e["engine"], e["problem"]): e
               for e in latency_dict(records)}
    base = {(e["engine"], e["problem"]): e
            for e in latency_dict(baseline)}
    out = []
    for key in sorted(set(current) | set(base)):
        cur, ref = current.get(key), base.get(key)
        out.append({
            "engine": key[0], "problem": key[1],
            "p50_s": cur["p50_s"] if cur else None,
            "baseline_p50_s": ref["p50_s"] if ref else None,
        })
    return out


def delta_records_table(records: Sequence[RunRecord],
                        baseline: Sequence[RunRecord],
                        title: str = "") -> str:
    """Current vs. baseline record-set p50 per engine × problem."""
    entries = delta_records_dict(records, baseline)
    if not entries:
        body = "(nothing to compare)"
        return f"{title}\n{body}" if title else body
    rows = []
    for e in entries:
        cur, ref = e["p50_s"], e["baseline_p50_s"]
        delta = _pct(cur, ref) if cur is not None and ref is not None \
            else "-"
        rows.append([e["engine"], e["problem"], _ms(cur), _ms(ref), delta])
    table = format_grid(
        ["engine", "problem", "p50 ms", "baseline p50 ms", "delta"], rows)
    return f"{title}\n{table}" if title else table


def bench_delta_dict(path: "str | os.PathLike") -> list[dict]:
    """Newest vs. previous entry of one ``BENCH_<name>.json`` trajectory.

    Only numeric metrics are compared; context keys (git sha, timestamp,
    workload sizes that did not change) pass through unchanged.
    """
    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    if not isinstance(entries, list) or not entries:
        return []
    newest = entries[-1]
    previous = entries[-2] if len(entries) > 1 else {}
    out = []
    for name in sorted(newest):
        value = newest[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        base = previous.get(name)
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            base = None
        out.append({"metric": name, "value": value, "previous": base})
    return out


def bench_delta_table(path: "str | os.PathLike", title: str = "") -> str:
    entries = bench_delta_dict(path)
    if not entries:
        body = f"(no entries in {Path(path).name})"
        return f"{title}\n{body}" if title else body
    rows = []
    for e in entries:
        base = e["previous"]
        rows.append([
            e["metric"], f"{e['value']:g}",
            f"{base:g}" if base is not None else "-",
            _pct(e["value"], base) if base is not None else "-",
        ])
    table = format_grid(["metric", "newest", "previous", "delta"], rows)
    return f"{title}\n{table}" if title else table


# -- the whole report ----------------------------------------------------------

def report_dict(records: Sequence[RunRecord],
                baseline: "str | os.PathLike | None" = None) -> dict:
    """The JSON form of :func:`render_report` (``repro report --json``)."""
    out: dict = {
        "records": len(records),
        "latency": latency_dict(records),
        "caches": cache_dict(records),
        "stages": stage_dict(records),
    }
    if baseline is not None:
        path = Path(baseline)
        if path.is_dir():
            out["delta"] = delta_records_dict(records, load_records([path]))
        else:
            out["bench_delta"] = bench_delta_dict(path)
    return out


def render_report(records: Sequence[RunRecord],
                  baseline: "str | os.PathLike | None" = None) -> str:
    """The full ``repro report`` text: latency, caches, stages, delta."""
    blocks = [
        f"report over {len(records)} run record(s)",
        latency_table(records, "latency by engine x problem"),
        cache_table(records, "cache effectiveness"),
        stage_table(records, "stage latency (merged telemetry)"),
    ]
    if baseline is not None:
        path = Path(baseline)
        if path.is_dir():
            blocks.append(delta_records_table(
                records, load_records([path]),
                f"delta vs baseline records ({path})"))
        else:
            blocks.append(bench_delta_table(
                path, f"trajectory delta ({path})"))
    return "\n\n".join(blocks)
