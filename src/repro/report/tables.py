"""Rendering of design tables in the style of the paper's Tables 1 and 2."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.arrays.dataflow import Flow
from repro.core.design import Design
from repro.core.explore import ExploredDesign


def format_grid(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII grid.

    The house table style — every table in this package and the
    analytics layer (:mod:`repro.report.analytics`) goes through here.
    """
    widths = [len(h) for h in headers]
    for row in rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [sep, fmt(headers), sep]
    lines.extend(fmt(row) for row in rows)
    lines.append(sep)
    return "\n".join(lines)


#: Historical private alias; new code uses :func:`format_grid`.
_format_grid = format_grid


def flow_table(flows: Mapping[str, Flow], title: str = "") -> str:
    """One design's variable movements as a table row set."""
    rows = [[var, f.describe(), str(f.dependence)]
            for var, f in sorted(flows.items())]
    table = _format_grid(["variable", "movement", "dependence"], rows)
    return f"{title}\n{table}" if title else table


def design_table(entries: Sequence[tuple[str, ExploredDesign]],
                 title: str = "") -> str:
    """The paper's Table 1/2 format: one named design per row, with the
    movement of each stream."""
    if not entries:
        return f"{title}\n(no designs)"
    variables = sorted(next(iter(entries))[1].flows)
    headers = ["Design", "T", "makespan", "cells"] + [
        f"{v} stream" for v in variables]
    rows = []
    for name, d in entries:
        sched = next(iter(d.design.schedules.values()))
        rows.append([name, str(sched.as_expr()), str(d.makespan),
                     str(d.cells)] +
                    [d.flows[v].describe() for v in variables])
    table = _format_grid(headers, rows)
    return f"{title}\n{table}" if title else table


def _params_cell(params: Mapping[str, int]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(params.items()))


def sweep_table(results: Sequence, title: str = "") -> str:
    """One row per sweep job (duck-typed over
    :class:`repro.core.batch.SweepResult`), infeasible jobs included.

    Deliberately excludes wall times and cache provenance so a warm re-run
    renders byte-identically to the cold run that populated the cache.
    """
    if not results:
        return f"{title}\n(no jobs)" if title else "(no jobs)"
    rows = []
    for r in results:
        rows.append([
            r.problem, _params_cell(r.params), r.interconnect,
            str(r.completion_time) if r.ok else "-",
            str(r.cells) if r.ok else "-",
            "ok" if r.ok else (r.error_type or "failed"),
        ])
    table = _format_grid(
        ["problem", "params", "interconnect", "completion", "cells",
         "status"], rows)
    return f"{title}\n{table}" if title else table


def sweep_pareto_table(front: Sequence, title: str = "") -> str:
    """The Pareto front of a sweep — completion time vs. cell count, with
    the job that achieved each non-dominated point."""
    if not front:
        return f"{title}\n(no feasible designs)" if title \
            else "(no feasible designs)"
    rows = [[str(r.completion_time), str(r.cells), r.problem,
             _params_cell(r.params), r.interconnect] for r in front]
    table = _format_grid(
        ["completion", "cells", "problem", "params", "interconnect"], rows)
    return f"{title}\n{table}" if title else table


def module_table(design: Design, title: str = "") -> str:
    """Per-module schedule/space summary of a multi-module design."""
    rows = []
    for name in design.system.modules:
        rows.append([name,
                     str(design.schedules[name].as_expr()),
                     repr(design.space_maps[name])])
    table = _format_grid(["module", "time function", "space map"], rows)
    body = f"{title}\n{table}" if title else table
    lo, hi = design.time_range()
    return (f"{body}\ncells: {design.cell_count}   "
            f"time: [{lo}, {hi}]   completion: {hi - lo}")


def cell_utilization_table(utilization: Mapping, title: str = "",
                           limit: int | None = None) -> str:
    """Per-cell occupancy summary (from :func:`repro.machine.analysis.
    cell_utilization`) — the non-uniformity of a design, one cell per row.

    ``limit`` keeps only the ``limit`` busiest cells (by operation count)
    and notes how many were elided — large arrays stay readable.
    """
    cells = sorted(utilization.values(),
                   key=lambda u: (-u.operations, u.cell))
    elided = 0
    if limit is not None and len(cells) > limit:
        elided = len(cells) - limit
        cells = cells[:limit]
    rows = [[str(u.cell), str(u.operations), str(u.hops_in),
             str(u.hops_out), str(u.injections),
             f"[{u.first_active}, {u.last_active}]",
             f"{u.occupancy:.0%}"] for u in cells]
    table = _format_grid(
        ["cell", "ops", "hops in", "hops out", "inject", "active",
         "occupancy"], rows)
    if elided:
        table += f"\n({elided} quieter cell(s) elided)"
    return f"{title}\n{table}" if title else table
