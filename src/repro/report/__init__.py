"""Reporting: design tables (Tables 1/2 style) and ASCII array figures
(Figures 1/2 style)."""

from repro.report.actions import action_profile, cell_actions, render_cell_actions
from repro.report.figures import render_array, render_gantt
from repro.report.tables import (
    cell_utilization_table,
    design_table,
    flow_table,
    module_table,
    sweep_pareto_table,
    sweep_table,
)

__all__ = [
    "action_profile",
    "cell_actions",
    "cell_utilization_table",
    "design_table",
    "flow_table",
    "module_table",
    "render_array",
    "render_cell_actions",
    "render_gantt",
    "sweep_pareto_table",
    "sweep_table",
]
