"""Reporting: design tables (Tables 1/2 style), ASCII array figures
(Figures 1/2 style), and run-record analytics (``repro report``)."""

from repro.report.actions import action_profile, cell_actions, render_cell_actions
from repro.report.analytics import (
    bench_delta_table,
    cache_table,
    delta_records_table,
    latency_table,
    load_records,
    merged_histograms,
    render_report,
    report_dict,
    stage_table,
)
from repro.report.figures import render_array, render_gantt
from repro.report.tables import (
    cell_utilization_table,
    design_table,
    flow_table,
    format_grid,
    module_table,
    sweep_pareto_table,
    sweep_table,
)

__all__ = [
    "action_profile",
    "bench_delta_table",
    "cache_table",
    "cell_actions",
    "cell_utilization_table",
    "delta_records_table",
    "design_table",
    "flow_table",
    "format_grid",
    "latency_table",
    "load_records",
    "merged_histograms",
    "module_table",
    "render_array",
    "render_cell_actions",
    "render_gantt",
    "render_report",
    "report_dict",
    "stage_table",
    "sweep_pareto_table",
    "sweep_table",
]
