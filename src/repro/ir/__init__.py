"""Intermediate representation: affine expressions, integer index sets,
recurrence modules and systems, and a reference evaluator.

This is the substrate the paper assumes as its "algorithmic model"
(Section II.A): structured sets of computations written as recurrence
relations or nested loops over integer index sets, with input/output/
assignment/conditional-assignment statements.
"""

from repro.ir.affine import AffineExpr, QuasiAffineExpr, const, var, vars_
from repro.ir.evaluate import (
    CyclicDependence,
    Event,
    ExecutionPlan,
    SystemTrace,
    ValueKey,
    build_execution_plan,
    execute_plan,
    run_system,
    trace_execution,
)
from repro.ir.vector import (
    VectorProgram,
    execute_plan_batch,
    execute_plan_vector,
    lower_plan,
)
from repro.ir.indexset import Polyhedron, eq, ge, gt, le, lt
from repro.ir.ops import ADD, IDENTITY, MAC, MAX, MIN, MIN_PLUS, MUL, Op, make_op
from repro.ir.predicates import (
    Predicate,
    TRUE,
    at_least,
    at_most,
    equals,
    even,
    greater,
    less,
    odd,
)
from repro.ir.program import (
    ArgSpec,
    HighLevelSpec,
    Module,
    OutputSpec,
    RecurrenceSystem,
)
from repro.ir.statements import ComputeRule, Equation, InputRule, LinkRule
from repro.ir.validation import ValidationError, check_canonic, check_system
from repro.ir.variables import ArrayVar, ExternalRef, Ref

__all__ = [
    "ADD", "IDENTITY", "MAC", "MAX", "MIN", "MIN_PLUS", "MUL",
    "AffineExpr", "ArgSpec", "ArrayVar", "ComputeRule", "CyclicDependence",
    "Equation", "Event", "ExecutionPlan", "ExternalRef", "HighLevelSpec",
    "InputRule", "LinkRule", "Module", "Op", "OutputSpec", "Polyhedron",
    "Predicate", "QuasiAffineExpr", "Ref", "RecurrenceSystem", "SystemTrace",
    "TRUE", "ValidationError", "ValueKey", "VectorProgram", "at_least",
    "at_most", "build_execution_plan", "check_canonic", "check_system",
    "const", "eq", "equals", "even", "execute_plan", "execute_plan_batch",
    "execute_plan_vector", "ge", "greater", "gt", "le", "less", "lower_plan",
    "lt", "make_op", "odd", "run_system", "trace_execution", "var", "vars_",
]
